//! Litmus explorer: parse a litmus test (from a file or the built-in
//! sample), enumerate it under a chosen model, and print outcomes,
//! condition verdicts and optionally DOT graphs of every execution.
//!
//! Usage:
//!   cargo run --example litmus_explorer -- [FILE.litmus] [MODEL] [--dot]
//!
//! MODEL is one of: sc, naive-tso, tso, pso, weak, weak-spec (default: weak).

use std::env;
use std::fs;
use std::process::ExitCode;

use samm::core::dot::{render, DotOptions};
use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::litmus::parser;

const SAMPLE: &str = "\
test: MP
init: x = 0, flag = 0

thread P0:
  store x, 42
  fence
  store flag, 1

thread P1:
  r0 = load flag
  fence
  r1 = load x

forbid: P1:r0 = 1 & P1:r1 = 0
";

fn policy_by_name(name: &str) -> Option<Policy> {
    Some(match name {
        "sc" => Policy::sequential_consistency(),
        "naive-tso" => Policy::naive_tso(),
        "tso" => Policy::tso(),
        "pso" => Policy::pso(),
        "weak" => Policy::weak(),
        "weak-spec" => Policy::weak().with_alias_speculation(true),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let want_dot = args.iter().any(|a| a == "--dot");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let source = match positional.first() {
        Some(path) => match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            println!("(no file given; using the built-in MP sample)\n");
            SAMPLE.to_owned()
        }
    };
    let policy = match positional.get(1) {
        Some(name) => match policy_by_name(name) {
            Some(p) => p,
            None => {
                eprintln!("unknown model `{name}` (try: sc, naive-tso, tso, pso, weak, weak-spec)");
                return ExitCode::FAILURE;
            }
        },
        None => Policy::weak(),
    };

    let test = match parser::parse(&source) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match test.compile() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("=== {} under {} ===", compiled.name, policy.name());
    let result = match enumerate(&compiled.program, &policy, &EnumConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("enumeration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} behaviours explored, {} distinct executions, {} outcomes, {} forks rolled back\n",
        result.stats.explored,
        result.stats.distinct_executions,
        result.outcomes.len(),
        result.stats.rolled_back,
    );
    println!("outcomes:");
    for outcome in &result.outcomes {
        println!("  {outcome}");
    }
    for cond in &compiled.conditions {
        let observable = cond.observable_in(&result.outcomes);
        println!(
            "\ncondition `{}` ({}) is {}",
            cond.text,
            cond.kind,
            if observable {
                "observable"
            } else {
                "not observable"
            }
        );
    }
    if want_dot {
        for (i, exec) in result.executions.iter().enumerate() {
            let dot = render(
                exec,
                &DotOptions {
                    title: format!("{} execution {}", compiled.name, i),
                    loads_and_stores_only: true,
                    ..DotOptions::default()
                },
            );
            println!("\n// ---- execution {i} ----\n{dot}");
        }
    }
    ExitCode::SUCCESS
}
