//! Experimenting with custom memory models (paper section 8: "it is easy
//! to experiment with a broad range of memory models simply by changing
//! the requirements for instruction reordering").
//!
//! Builds a hypothetical model — SC with *only* same-address load→load
//! ordering dropped ("SC-minus-CoRR") — and locates it in the bracketing
//! chain by running the classic suite.
//!
//! Run with: `cargo run --release --example custom_model`

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::{Constraint, OpClass, Policy};
use samm::litmus::catalog;

fn main() {
    // Start from SC and relax exactly one entry: later loads may pass
    // earlier loads (any address).
    let table = Policy::sequential_consistency().table().with_entry(
        OpClass::Load,
        OpClass::Load,
        Constraint::Free,
    );
    let custom = Policy::custom("SC-minus-LL", table);

    println!("=== a custom model: SC with load->load dropped ===\n");
    println!("{custom}");

    let config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };

    println!(
        "\n{:<12} {:>6} {:>12} {:>6} {:>6}",
        "test", "SC", "SC-minus-LL", "TSO", "Weak"
    );
    for entry in catalog::all() {
        let count = |p: &Policy| {
            enumerate(&entry.test.program, p, &config)
                .expect("enumeration succeeds")
                .outcomes
                .len()
        };
        let sc = count(&Policy::sequential_consistency());
        let cu = count(&custom);
        let tso = count(&Policy::tso());
        let weak = count(&Policy::weak());
        println!(
            "{:<12} {:>6} {:>12} {:>6} {:>6}{}",
            entry.test.name,
            sc,
            cu,
            tso,
            weak,
            if cu > sc {
                "   <- relaxation visible"
            } else {
                ""
            }
        );
    }

    // Sanity: the custom model sits between SC and Weak on every program.
    for entry in catalog::all() {
        let sc = enumerate(
            &entry.test.program,
            &Policy::sequential_consistency(),
            &config,
        )
        .unwrap()
        .outcomes;
        let cu = enumerate(&entry.test.program, &custom, &config)
            .unwrap()
            .outcomes;
        let weak = enumerate(&entry.test.program, &Policy::weak(), &config)
            .unwrap()
            .outcomes;
        assert!(
            sc.is_subset(&cu),
            "{}: SC ⊆ custom violated",
            entry.test.name
        );
        assert!(
            cu.is_subset(&weak),
            "{}: custom ⊆ Weak violated",
            entry.test.name
        );
    }
    println!("\nSC ⊆ SC-minus-LL ⊆ Weak holds on the whole catalog ✔");
    println!("(note how CoRR and IRIW light up: they are exactly the load->load tests)");
}
