//! The Figure 8/9 case study: address-aliasing speculation introduces new
//! program behaviours (paper section 5).
//!
//! Enumerates the pointer program of Figure 8 with speculation off and on,
//! prints the outcome sets and their difference, and emits a DOT rendering
//! of the new speculative execution.
//!
//! Run with: `cargo run --example speculation_study`

use samm::core::dot::{render, DotOptions};
use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::core::speculation;
use samm::litmus::catalog;

fn main() {
    let entry = catalog::fig8();
    println!("=== {} ===", entry.test.name);
    println!("{}\n", entry.description);

    let report = speculation::compare(&entry.test.program, &Policy::weak(), &EnumConfig::default())
        .expect("enumeration succeeds");

    println!(
        "non-speculative: {} executions, {} outcomes",
        report.base.stats.distinct_executions,
        report.base.outcomes.len()
    );
    println!(
        "speculative:     {} executions, {} outcomes, {} forks rolled back",
        report.speculative.stats.distinct_executions,
        report.speculative.outcomes.len(),
        report.rollbacks()
    );
    assert!(
        report.base_is_subset(),
        "speculation must not lose behaviours"
    );

    let new = report.new_outcomes();
    println!(
        "\nbehaviours only possible with speculation ({}):",
        new.len()
    );
    for outcome in &new {
        println!("  {outcome}");
    }

    // Render the new speculative execution (the paper's Figure 9, right).
    let cond = &entry.test.conditions[0]; // L3 = 2, L6 = &z, L8 = 2
    let spec_result = enumerate(
        &entry.test.program,
        &Policy::weak().with_alias_speculation(true),
        &EnumConfig::default(),
    )
    .expect("enumeration succeeds");
    if let Some(exec) = spec_result
        .executions
        .iter()
        .find(|b| cond.matches(&b.outcome()))
    {
        let dot = render(
            exec,
            &DotOptions {
                title: "Figure 9 (right): new speculative behaviour".to_owned(),
                loads_and_stores_only: true,
                ..DotOptions::default()
            },
        );
        println!("\nDOT of the new behaviour (render with `dot -Tpng`):\n{dot}");
    }
}
