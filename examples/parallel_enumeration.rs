//! Serial vs work-stealing parallel enumeration, measured.
//!
//! Enumerates frontier-heavy workloads (store-buffering rings and the
//! largest catalog figures) with the serial engine and with
//! [`enumerate_parallel`] at increasing worker counts, printing
//! wall-clock times, speedups, and the work-stealing counters — the
//! quickstart for `samm_core::parallel`.
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use std::time::{Duration, Instant};

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::parallel::enumerate_parallel;
use samm::core::policy::Policy;
use samm::litmus::catalog;
use samm::litmus::rand_prog::sb_chain;

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

fn sweep(label: &str, program: &samm::core::instr::Program, policy: &Policy) {
    let serial_config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };
    let (serial, serial_time) =
        time(|| enumerate(program, policy, &serial_config).expect("serial enumeration succeeds"));
    println!(
        "\n{label} under {}: {} outcomes, {} executions, {} behaviours explored",
        policy.name(),
        serial.outcomes.len(),
        serial.stats.distinct_executions,
        serial.stats.explored,
    );
    println!(
        "  {:>8}  {:>10}  {:>8}  {:>8} {:>10} {:>8}",
        "workers", "wall", "speedup", "steals", "contention", "idle"
    );
    println!("  {:>8}  {:>10.3?}  {:>7.2}x", "serial", serial_time, 1.0);
    for workers in [2, 4, 8] {
        let config = EnumConfig {
            parallelism: workers,
            keep_executions: false,
            ..EnumConfig::default()
        };
        let (par, par_time) = time(|| {
            enumerate_parallel(program, policy, &config).expect("parallel enumeration succeeds")
        });
        assert_eq!(par.outcomes, serial.outcomes, "engines must agree");
        assert_eq!(
            par.stats.distinct_executions,
            serial.stats.distinct_executions
        );
        println!(
            "  {:>8}  {:>10.3?}  {:>7.2}x  {:>8} {:>10} {:>8}",
            workers,
            par_time,
            serial_time.as_secs_f64() / par_time.as_secs_f64(),
            par.stats.steals,
            par.stats.shard_contention,
            par.stats.idle_wakeups,
        );
    }
}

fn main() {
    println!("samm parallel enumeration — serial vs work-stealing workers");
    sweep("sb_chain(4)", &sb_chain(4), &Policy::weak());
    sweep("sb_chain(5)", &sb_chain(5), &Policy::weak());
    let iriw = catalog::iriw();
    sweep("IRIW", &iriw.test.program, &Policy::weak());
    let fig7 = catalog::fig7();
    sweep("fig7", &fig7.test.program, &Policy::weak());
}
