//! Fence synthesis: where do the barriers go?
//!
//! The paper's section 8 calls for prescriptive tooling on top of the
//! descriptive enumeration. This example mechanically repairs every
//! weak-model-broken catalog test: for each forbidden condition that the
//! weak model can observe, it searches for the minimum set of fence
//! insertions that forbids it again — and reports the placements.
//!
//! Run with: `cargo run --release --example fence_synthesis`

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::litmus::{catalog, fences, CondKind};

fn main() {
    let policy = Policy::weak();
    let config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };

    println!("=== minimal fence placements repairing the weak model ===\n");
    for entry in catalog::all() {
        for cond in &entry.test.conditions {
            if cond.kind != CondKind::Forbidden {
                continue;
            }
            let outcomes = enumerate(&entry.test.program, &policy, &config)
                .expect("enumeration succeeds")
                .outcomes;
            if !cond.observable_in(&outcomes) {
                continue; // already safe under the weak model
            }
            match fences::synthesize_fences(&entry.test.program, cond, &policy, 3, &config)
                .expect("enumeration succeeds")
            {
                Some(fix) => {
                    let spots: Vec<String> = fix
                        .placements
                        .iter()
                        .map(|&(t, pos)| format!("T{t} before op {pos}"))
                        .collect();
                    println!(
                        "{:<12} `{}`: {} fence(s) — {}",
                        entry.test.name,
                        cond.text,
                        fix.placements.len(),
                        if spots.is_empty() {
                            "none needed".to_owned()
                        } else {
                            spots.join(", ")
                        }
                    );
                }
                None => {
                    println!(
                        "{:<12} `{}`: NOT repairable by fences (a data race, not an ordering bug)",
                        entry.test.name, cond.text
                    );
                }
            }
        }
    }
    println!("\n(each fix is verified by re-enumeration: the condition is unobservable after)");
}
