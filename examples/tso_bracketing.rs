//! Model bracketing across the whole catalog (paper section 6): prints,
//! for every litmus test, the number of distinct outcomes under each model
//! and whether each condition is observable — the `SC ⊆ TSO ⊆ PSO ⊆ Weak`
//! chain made visible, with naive TSO shown as the odd one out.
//!
//! Run with: `cargo run --release --example tso_bracketing`

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::litmus::{catalog, ModelSel};

fn main() {
    let config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };
    let models = ModelSel::ALL;

    println!(
        "{:<12} {}",
        "test",
        models
            .iter()
            .map(|m| format!("{:>10}", m.name()))
            .collect::<String>()
    );
    println!("{}", "-".repeat(12 + 10 * models.len()));

    for entry in catalog::all() {
        let mut cells = Vec::new();
        let mut sets = Vec::new();
        for model in models {
            let outcomes = enumerate(&entry.test.program, &model.policy(), &config)
                .expect("enumeration succeeds")
                .outcomes;
            cells.push(format!("{:>10}", outcomes.len()));
            sets.push((model, outcomes));
        }
        println!("{:<12} {}", entry.test.name, cells.concat());

        // Per-condition observability row.
        for cond in &entry.test.conditions {
            let marks: String = sets
                .iter()
                .map(|(_, outcomes)| {
                    format!(
                        "{:>10}",
                        if cond.observable_in(outcomes) {
                            "yes"
                        } else {
                            "no"
                        }
                    )
                })
                .collect();
            println!("  {:<10} {}", truncate(&cond.text, 10), marks);
        }
    }

    println!("\ncolumns are distinct-outcome counts; yes/no rows show condition observability");
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}..", &s[..n.saturating_sub(2)])
    }
}
