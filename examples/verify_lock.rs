//! Verifying a locking algorithm by exhaustive enumeration — the paper's
//! section 8 use case: "it can also be used by programmers to guarantee
//! that a program actually behaves as expected (for example, to check that
//! a locking algorithm meets its specification)."
//!
//! Two threads race a test-and-set lock (one CAS attempt each); the winner
//! increments a shared counter and releases with a fenced store.
//!
//! The twist: the *naive* lock — with no fence between the acquire and the
//! critical section — is **broken under the weak model**, and enumeration
//! finds the bug: Figure 1 lets loads speculate past branches
//! (`Branch → Load` is unconstrained), so the critical-section load can
//! read the counter *before* the CAS acquires the lock. Adding an acquire
//! fence repairs it. This is exactly the programmers-finding-bugs workflow
//! the paper advertises.
//!
//! Run with: `cargo run --release --example verify_lock`

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::outcome::Outcome;
use samm::litmus::{CompiledLitmus, LitmusBuilder, ModelSel};

fn lock_test(name: &str, acquire_fence: bool) -> CompiledLitmus {
    let body = move |t: &mut samm::litmus::builder::ThreadBuilder| {
        t.cas("r_acq", "lock", 0, 1).branch_nz("r_acq", "lost");
        if acquire_fence {
            t.fence();
        }
        t.load("r_old", "counter")
            .binop(
                "r_new",
                samm::core::instr::BinOp::Add,
                samm::litmus::ast::SymOperand::reg("r_old"),
                1.into(),
            )
            .store_reg("counter", "r_new")
            .fence()
            .store("lock", 0)
            .label("lost");
    };
    LitmusBuilder::new(name)
        .thread("P0", body)
        .thread("P1", body)
        .build()
        .expect("compiles")
}

/// The broken shape: both threads entered the critical section and both
/// read the initial counter — a lost update.
fn lost_update(test: &CompiledLitmus, o: &Outcome) -> bool {
    let acq = |t: usize| o.reg(t, test.reg(t, "r_acq")).raw();
    let old = |t: usize| o.reg(t, test.reg(t, "r_old")).raw();
    acq(0) == 0 && acq(1) == 0 && old(0) == 0 && old(1) == 0
}

fn check(test: &CompiledLitmus) {
    println!("--- {} ---", test.name);
    for model in ModelSel::ALL {
        let result = enumerate(
            &test.program,
            &model.policy(),
            &EnumConfig {
                keep_executions: false,
                ..EnumConfig::default()
            },
        )
        .expect("enumeration succeeds");
        let broken = result.outcomes.any(|o| lost_update(test, o));
        println!(
            "  {:9}: {:2} behaviours — {}",
            model.name(),
            result.outcomes.len(),
            if broken {
                "LOST UPDATE possible (lock broken)"
            } else {
                "mutual exclusion + visibility hold"
            }
        );
    }
    println!();
}

fn main() {
    println!("=== verifying a test-and-set lock by enumeration ===\n");

    let naive = lock_test("ts-lock (no acquire fence)", false);
    check(&naive);
    println!(
        "the naive lock is broken under the weak model: Figure 1 lets the\n\
         critical-section load speculate past the acquire branch, reading\n\
         the counter before the lock is held.\n"
    );

    let fixed = lock_test("ts-lock (acquire fence)", true);
    check(&fixed);

    // Machine-checked conclusions.
    for model in ModelSel::ALL {
        let cfg = EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        };
        let fixed_outcomes = enumerate(&fixed.program, &model.policy(), &cfg)
            .unwrap()
            .outcomes;
        assert!(
            !fixed_outcomes.any(|o| lost_update(&fixed, o)),
            "{}: the fenced lock must be correct",
            model.name()
        );
    }
    let weak_naive = enumerate(
        &naive.program,
        &ModelSel::Weak.policy(),
        &EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        },
    )
    .unwrap()
    .outcomes;
    assert!(
        weak_naive.any(|o| lost_update(&naive, o)),
        "the naive lock must be (detectably) broken under the weak model"
    );
    println!("the fenced lock meets its specification under every model ✔");
}
