//! Cache coherence as a conservative approximation of Store Atomicity
//! (paper section 4.2).
//!
//! Runs the message-passing litmus test through the MSI directory
//! simulator under many randomized schedules, checks every observed trace
//! against the Store Atomicity rules, and confirms each outcome is
//! sequentially consistent.
//!
//! Run with: `cargo run --example coherence_demo`

use samm::coherence::{check_trace, CoherentSystem, SystemConfig};
use samm::litmus::catalog;
use samm::oper;

fn main() {
    let entry = catalog::mp();
    println!("=== MSI directory protocol on {} ===", entry.test.name);
    println!("{}\n", entry.description);

    let program = &entry.test.program;
    let sc = oper::enumerate_sc(program, 1_000_000).expect("SC enumeration");
    println!("SC allows {} outcomes:", sc.len());
    for o in &sc {
        println!("  {o}");
    }

    let mut outcomes_seen = std::collections::BTreeSet::new();
    let mut total_messages = 0usize;
    let mut total_invalidations = 0usize;
    let mut total_atomicity_edges = 0usize;
    let seeds = 200u64;

    for seed in 0..seeds {
        let run = CoherentSystem::new(
            program,
            SystemConfig {
                seed,
                ..SystemConfig::default()
            },
        )
        .run()
        .expect("protocol run completes");

        let report = check_trace(&run.trace, |a| program.initial_value(a));
        assert!(
            report.consistent,
            "seed {seed}: protocol produced a Store Atomicity violation!"
        );
        assert!(
            sc.contains(&run.outcome),
            "seed {seed}: non-SC outcome {} — coherence is broken",
            run.outcome
        );
        outcomes_seen.insert(run.outcome.to_string());
        total_messages += run.stats.messages;
        total_invalidations += run.stats.invalidations;
        total_atomicity_edges += report.atomicity_edges;
    }

    println!("\nran {seeds} randomized schedules:");
    println!("  outcomes observed : {}", outcomes_seen.len());
    for o in &outcomes_seen {
        println!("    {o}");
    }
    println!(
        "  avg messages/run  : {:.1}",
        total_messages as f64 / seeds as f64
    );
    println!(
        "  avg invalidations : {:.2}",
        total_invalidations as f64 / seeds as f64
    );
    println!(
        "  avg Store Atomicity edges the checker had to add: {:.2}",
        total_atomicity_edges as f64 / seeds as f64
    );
    println!("\nevery trace satisfied Store Atomicity; every outcome was SC ✔");
}
