//! The well-synchronized programming discipline (paper section 8):
//! "a program is well synchronized if for every load of a
//! non-synchronization variable there is exactly one eligible store which
//! can provide its value according to Store Atomicity."
//!
//! Checks a guarded (branching) message-passing program and its unguarded,
//! racy counterpart, and shows a CAS-protected critical section passing
//! the discipline.
//!
//! Run with: `cargo run --example well_synchronized`

use std::collections::BTreeSet;

use samm::core::enumerate::EnumConfig;
use samm::core::policy::Policy;
use samm::core::sync::check_well_synchronized;
use samm::litmus::LitmusBuilder;

fn main() {
    let config = EnumConfig::default();
    let policy = Policy::weak();

    // 1. Guarded message passing: the consumer reads data only after the
    //    flag is observed set.
    let guarded = LitmusBuilder::new("guarded-MP")
        .thread("producer", |t| {
            t.store("data", 42).fence().store("flag", 1);
        })
        .thread("consumer", |t| {
            t.load("r0", "flag")
                .binop(
                    "r1",
                    samm::core::instr::BinOp::Eq,
                    samm::litmus::ast::SymOperand::reg("r0"),
                    0.into(),
                )
                .branch_nz("r1", "skip")
                .fence()
                .load("r2", "data")
                .label("skip");
        })
        .build()
        .expect("compiles");
    let flag = guarded.addr("flag");
    let sync_vars: BTreeSet<_> = [flag].into_iter().collect();
    let report =
        check_well_synchronized(&guarded.program, &policy, &config, &sync_vars).expect("runs");
    println!(
        "guarded MP (flag declared a sync variable): well synchronized = {}",
        report.is_well_synchronized()
    );

    // 2. The unguarded version races on the data load.
    let racy = LitmusBuilder::new("racy-MP")
        .thread("producer", |t| {
            t.store("data", 42).fence().store("flag", 1);
        })
        .thread("consumer", |t| {
            t.load("r0", "flag").fence().load("r2", "data");
        })
        .build()
        .expect("compiles");
    let flag = racy.addr("flag");
    let sync_vars: BTreeSet<_> = [flag].into_iter().collect();
    let report =
        check_well_synchronized(&racy.program, &policy, &config, &sync_vars).expect("runs");
    println!(
        "unguarded MP: well synchronized = {} (racy load sites: {:?})",
        report.is_well_synchronized(),
        report.racy_loads
    );

    // 3. CAS-guarded single writer: only the CAS winner touches the data.
    let cas_guard = LitmusBuilder::new("cas-guard")
        .thread("P0", |t| {
            t.cas("r0", "lock", 0, 1)
                .branch_nz("r0", "lost")
                .store("data", 1)
                .label("lost");
        })
        .thread("P1", |t| {
            t.cas("r0", "lock", 0, 1)
                .branch_nz("r0", "lost")
                .store("data", 2)
                .label("lost");
        })
        .build()
        .expect("compiles");
    let lock = cas_guard.addr("lock");
    let sync_vars: BTreeSet<_> = [lock].into_iter().collect();
    let report =
        check_well_synchronized(&cas_guard.program, &policy, &config, &sync_vars).expect("runs");
    println!(
        "CAS-guarded writers (no reader): well synchronized = {}",
        report.is_well_synchronized()
    );
    println!(
        "\nper-load maximum candidate counts: {:?}",
        report.max_candidates
    );
}
