//! Quickstart: define a litmus test, enumerate its behaviours under three
//! memory models, and print the outcome sets.
//!
//! Run with: `cargo run --example quickstart`

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::litmus::LitmusBuilder;

fn main() {
    // Store buffering (Dekker's pattern): can both threads miss each
    // other's store?
    let test = LitmusBuilder::new("SB")
        .thread("P0", |t| {
            t.store("x", 1).load("r0", "y");
        })
        .thread("P1", |t| {
            t.store("y", 1).load("r0", "x");
        })
        .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .build()
        .expect("test compiles");

    println!("=== {} ===", test.name);
    println!("condition under test: {}\n", test.conditions[0]);

    for policy in [
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::weak(),
    ] {
        let result = enumerate(&test.program, &policy, &EnumConfig::default())
            .expect("enumeration succeeds");
        let observable = test.conditions[0].observable_in(&result.outcomes);
        println!(
            "{:6} {} distinct executions, {} outcomes, condition is {}",
            policy.name(),
            result.stats.distinct_executions,
            result.outcomes.len(),
            if observable { "ALLOWED" } else { "FORBIDDEN" }
        );
        for outcome in &result.outcomes {
            println!("         {outcome}");
        }
        println!();
    }

    // The weak model's reordering axioms, as in the paper's Figure 1.
    println!("{}", Policy::weak());
}
