//! # samm — Store Atomicity Memory Models
//!
//! Umbrella crate for the reproduction of *"Memory Model = Instruction
//! Reordering + Store Atomicity"* (Arvind & Maessen, ISCA 2006). It
//! re-exports the workspace crates:
//!
//! * [`core`] ([`samm_core`]) — the execution-graph framework: reordering
//!   axioms, Store Atomicity, behaviour enumeration, speculation, TSO;
//! * [`litmus`] ([`samm_litmus`]) — litmus-test programs, parser, catalog
//!   (classic tests + every figure of the paper), expectation harness;
//! * [`analyze`] ([`samm_analyze`]) — static race detector, DRF-SC
//!   certifier (short-circuits weak-model enumeration to one SC run) and
//!   the `samm-lint` policy-axiom/litmus linter;
//! * [`oper`] ([`samm_oper`]) — operational reference models: interleaving
//!   SC and store-buffer TSO/PSO machines;
//! * [`coherence`] ([`samm_coherence`]) — a MESI directory protocol
//!   simulator checked against Store Atomicity (paper section 4.2).
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points.

pub use samm_analyze as analyze;
pub use samm_coherence as coherence;
pub use samm_core as core;
pub use samm_litmus as litmus;
pub use samm_oper as oper;

pub use samm_core::{
    enumerate, Behavior, EnumConfig, EnumResult, Outcome, OutcomeSet, Policy, Program,
};
