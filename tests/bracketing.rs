//! Model bracketing (paper section 6): "We can bracket TSO on either side
//! by models which treat every thread the same way", and more generally
//! the outcome-set inclusion chain
//!
//! ```text
//! SC ⊆ TSO ⊆ PSO ⊆ Weak ⊆ Weak+spec
//! ```
//!
//! must hold on every program. Naive TSO sits strictly *inside* real TSO
//! on bypass-dependent programs (Figure 11 center) — it is not part of the
//! chain.

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::outcome::OutcomeSet;
use samm::litmus::catalog;
use samm::litmus::rand_prog::{corpus, RandConfig};
use samm::litmus::ModelSel;

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn chain_outcomes(program: &samm::core::instr::Program) -> Vec<(ModelSel, OutcomeSet)> {
    ModelSel::CHAIN
        .iter()
        .map(|&model| {
            let outcomes = enumerate(program, &model.policy(), &config())
                .unwrap_or_else(|e| panic!("{}: {e}", model.name()))
                .outcomes;
            (model, outcomes)
        })
        .collect()
}

fn assert_chain(program: &samm::core::instr::Program, label: &str) {
    let sets = chain_outcomes(program);
    for pair in sets.windows(2) {
        let (weaker_model, stronger_set) = (&pair[1].0, &pair[0].1);
        assert!(
            stronger_set.is_subset(&pair[1].1),
            "{label}: {} outcomes must include {} outcomes",
            weaker_model.name(),
            pair[0].0.name(),
        );
    }
}

#[test]
fn catalog_respects_the_inclusion_chain() {
    for entry in catalog::all() {
        assert_chain(&entry.test.program, &entry.test.name);
    }
}

#[test]
fn random_programs_respect_the_inclusion_chain() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.2,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: 0.15,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0xBEEF, 40, &cfg).iter().enumerate() {
        assert_chain(prog, &format!("random #{i}"));
    }
}

#[test]
fn naive_tso_is_contained_in_tso_everywhere() {
    for entry in catalog::all() {
        let naive = enumerate(&entry.test.program, &ModelSel::NaiveTso.policy(), &config())
            .unwrap()
            .outcomes;
        let tso = enumerate(&entry.test.program, &ModelSel::Tso.policy(), &config())
            .unwrap()
            .outcomes;
        assert!(
            naive.is_subset(&tso),
            "{}: naive TSO must only remove behaviours",
            entry.test.name
        );
    }
}

#[test]
fn strict_inclusions_are_witnessed_somewhere() {
    // Each adjacent pair of the chain must be *strictly* separated by some
    // catalog program — the models are genuinely different.
    let mut separated = vec![false; ModelSel::CHAIN.len() - 1];
    for entry in catalog::all() {
        let sets = chain_outcomes(&entry.test.program);
        for (i, pair) in sets.windows(2).enumerate() {
            if pair[0].1 != pair[1].1 {
                separated[i] = true;
            }
        }
    }
    for (i, sep) in separated.iter().enumerate() {
        assert!(
            sep,
            "no catalog program separates {} from {}",
            ModelSel::CHAIN[i].name(),
            ModelSel::CHAIN[i + 1].name()
        );
    }
}
