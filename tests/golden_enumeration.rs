//! Golden enumeration regression: hard-coded outcome and
//! distinct-execution counts for every paper figure and every atomics
//! test of the catalog, across the full model chain, checked under BOTH
//! the serial enumerator and the work-stealing parallel one.
//!
//! These counts are the repository's measured ground truth (they also
//! back `EXPERIMENTS.md`); any enumeration change that shifts them must
//! update this table deliberately. The parallel engine must reproduce
//! them *exactly* — same outcome sets, same deterministic statistics —
//! at any worker count.

use samm::core::enumerate::{enumerate, EnumConfig, EnumResult};
use samm::core::parallel::enumerate_parallel;
use samm::litmus::{catalog, CatalogEntry, ModelSel};

/// `(test name, model, |outcomes|, distinct executions)` for every
/// paper figure (3, 4, 5, 7, 8, 10) and every atomics test.
const GOLDEN: &[(&str, ModelSel, usize, usize)] = &[
    ("fig3", ModelSel::Sc, 3, 3),
    ("fig3", ModelSel::Tso, 3, 3),
    ("fig3", ModelSel::Pso, 3, 3),
    ("fig3", ModelSel::Weak, 3, 3),
    ("fig3", ModelSel::WeakSpec, 3, 3),
    ("fig4", ModelSel::Sc, 5, 5),
    ("fig4", ModelSel::Tso, 5, 5),
    ("fig4", ModelSel::Pso, 5, 5),
    ("fig4", ModelSel::Weak, 5, 5),
    ("fig4", ModelSel::WeakSpec, 5, 5),
    ("fig5", ModelSel::Sc, 19, 19),
    ("fig5", ModelSel::Tso, 19, 19),
    ("fig5", ModelSel::Pso, 19, 19),
    ("fig5", ModelSel::Weak, 24, 24),
    ("fig5", ModelSel::WeakSpec, 24, 24),
    ("fig7", ModelSel::Sc, 5, 5),
    ("fig7", ModelSel::Tso, 5, 5),
    ("fig7", ModelSel::Pso, 5, 5),
    ("fig7", ModelSel::Weak, 5, 5),
    ("fig7", ModelSel::WeakSpec, 5, 5),
    ("fig8", ModelSel::Sc, 12, 12),
    ("fig8", ModelSel::Tso, 12, 12),
    ("fig8", ModelSel::Pso, 12, 12),
    ("fig8", ModelSel::Weak, 12, 12),
    ("fig8", ModelSel::WeakSpec, 15, 15),
    ("fig10", ModelSel::Sc, 7, 7),
    ("fig10", ModelSel::Tso, 15, 15),
    ("fig10", ModelSel::Pso, 27, 27),
    ("fig10", ModelSel::Weak, 27, 27),
    ("fig10", ModelSel::WeakSpec, 27, 27),
    ("CAS-mutex", ModelSel::Sc, 2, 2),
    ("CAS-mutex", ModelSel::Tso, 2, 2),
    ("CAS-mutex", ModelSel::Pso, 2, 2),
    ("CAS-mutex", ModelSel::Weak, 2, 2),
    ("CAS-mutex", ModelSel::WeakSpec, 2, 2),
    ("FAA-incr", ModelSel::Sc, 2, 2),
    ("FAA-incr", ModelSel::Tso, 2, 2),
    ("FAA-incr", ModelSel::Pso, 2, 2),
    ("FAA-incr", ModelSel::Weak, 2, 2),
    ("FAA-incr", ModelSel::WeakSpec, 2, 2),
    ("broken-incr", ModelSel::Sc, 3, 3),
    ("broken-incr", ModelSel::Tso, 3, 3),
    ("broken-incr", ModelSel::Pso, 3, 3),
    ("broken-incr", ModelSel::Weak, 3, 3),
    ("broken-incr", ModelSel::WeakSpec, 3, 3),
    ("SB+swap", ModelSel::Sc, 3, 3),
    ("SB+swap", ModelSel::Tso, 3, 3),
    ("SB+swap", ModelSel::Pso, 3, 3),
    ("SB+swap", ModelSel::Weak, 4, 4),
    ("SB+swap", ModelSel::WeakSpec, 4, 4),
];

fn entries() -> Vec<CatalogEntry> {
    let mut out = catalog::paper_figures();
    out.extend([
        catalog::cas_mutex(),
        catalog::atomic_increment(),
        catalog::broken_increment(),
        catalog::swap_sb(),
    ]);
    out
}

fn entry_by_name(name: &str) -> CatalogEntry {
    entries()
        .into_iter()
        .find(|e| e.test.name == name)
        .unwrap_or_else(|| panic!("no catalog entry named {name}"))
}

fn check_against_golden(label: &str, run: impl Fn(&CatalogEntry, ModelSel) -> EnumResult) {
    for &(name, model, outcomes, executions) in GOLDEN {
        let result = run(&entry_by_name(name), model);
        assert_eq!(
            result.outcomes.len(),
            outcomes,
            "{label}: {name} under {} outcome count drifted",
            model.name()
        );
        assert_eq!(
            result.stats.distinct_executions,
            executions,
            "{label}: {name} under {} execution count drifted",
            model.name()
        );
    }
}

#[test]
fn serial_counts_match_golden() {
    check_against_golden("serial", |entry, model| {
        enumerate(&entry.test.program, &model.policy(), &EnumConfig::default())
            .expect("enumeration succeeds")
    });
}

#[test]
fn parallel_counts_match_golden() {
    let config = EnumConfig {
        parallelism: 4,
        ..EnumConfig::default()
    };
    check_against_golden("parallel", |entry, model| {
        enumerate_parallel(&entry.test.program, &model.policy(), &config)
            .expect("enumeration succeeds")
    });
}

/// The engines agree not just on counts but on the outcome *sets* and
/// the full deterministic statistics, for every golden entry and model.
#[test]
fn engines_agree_on_sets_and_deterministic_stats() {
    let parallel_config = EnumConfig {
        parallelism: 4,
        ..EnumConfig::default()
    };
    for entry in entries() {
        for model in [
            ModelSel::Sc,
            ModelSel::Tso,
            ModelSel::Pso,
            ModelSel::Weak,
            ModelSel::WeakSpec,
        ] {
            let serial = enumerate(&entry.test.program, &model.policy(), &EnumConfig::default())
                .expect("serial enumeration succeeds");
            let parallel =
                enumerate_parallel(&entry.test.program, &model.policy(), &parallel_config)
                    .expect("parallel enumeration succeeds");
            let name = &entry.test.name;
            assert_eq!(
                serial.outcomes,
                parallel.outcomes,
                "{name} under {}: outcome sets differ",
                model.name()
            );
            assert_eq!(serial.stats.explored, parallel.stats.explored, "{name}");
            assert_eq!(serial.stats.forks, parallel.stats.forks, "{name}");
            assert_eq!(serial.stats.deduped, parallel.stats.deduped, "{name}");
            assert_eq!(
                serial.stats.rolled_back, parallel.stats.rolled_back,
                "{name}"
            );
            assert_eq!(
                serial.stats.distinct_executions, parallel.stats.distinct_executions,
                "{name}"
            );
            assert_eq!(
                serial.stats.max_graph_nodes, parallel.stats.max_graph_nodes,
                "{name}"
            );
        }
    }
}
