//! The central theorem of the paper, tested: "A memory model with Store
//! Atomicity is serializable; there is a unique global interleaving of all
//! operations which respects the reordering rules."
//!
//! For every execution the enumerator produces under a store-atomic model,
//! a serialization witness must exist, validate against the three
//! conditions of section 3.1, and replay to the same load values. For TSO
//! executions that use the bypass, no serialization exists — memory
//! atomicity is genuinely violated (Figure 10).

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::core::serialize;
use samm::litmus::catalog;
use samm::litmus::rand_prog::{corpus, RandConfig};

fn atomic_policies() -> Vec<Policy> {
    vec![
        Policy::sequential_consistency(),
        Policy::naive_tso(),
        Policy::pso(), // bypass executions are filtered below
        Policy::weak(),
        Policy::weak().with_alias_speculation(true),
    ]
}

fn check_all_serializable(program: &samm::core::instr::Program, label: &str) {
    for policy in atomic_policies() {
        let result = enumerate(program, &policy, &EnumConfig::default())
            .unwrap_or_else(|e| panic!("{label}/{}: {e}", policy.name()));
        for (i, exec) in result.executions.iter().enumerate() {
            let uses_bypass = exec.graph().iter().any(|(_, n)| n.is_bypass_source());
            if uses_bypass {
                continue;
            }
            let order = serialize::find_serialization(exec).unwrap_or_else(|| {
                panic!(
                    "{label}/{}: execution {i} has no serialization",
                    policy.name()
                )
            });
            serialize::validate_serialization(exec, &order).unwrap_or_else(|e| {
                panic!(
                    "{label}/{}: witness for execution {i} invalid: {e}",
                    policy.name()
                )
            });
        }
    }
}

#[test]
fn catalog_executions_are_serializable() {
    for entry in catalog::all() {
        check_all_serializable(&entry.test.program, &entry.test.name);
    }
}

#[test]
fn random_program_executions_are_serializable() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.15,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: 0.2,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0x5EED, 30, &cfg).iter().enumerate() {
        check_all_serializable(prog, &format!("random #{i}"));
    }
}

#[test]
fn figure_10_bypass_executions_are_not_serializable() {
    let entry = catalog::fig10();
    let result = enumerate(&entry.test.program, &Policy::tso(), &EnumConfig::default()).unwrap();
    let cond = &entry.test.conditions[0];
    let mut found_violation = false;
    for exec in &result.executions {
        if cond.matches(&exec.outcome()) {
            found_violation = true;
            assert!(
                !serialize::is_serializable(exec),
                "the Figure 10 execution must violate memory atomicity"
            );
        }
    }
    assert!(
        found_violation,
        "Figure 10 execution must be enumerated under TSO"
    );
}

/// Every TSO execution of every catalog program has a *TSO witness* —
/// a memory order with the store-forwarding exception — even when it has
/// no strict serialization (Figure 10).
#[test]
fn every_tso_execution_has_a_tso_witness() {
    for entry in catalog::all() {
        let result = enumerate(
            &entry.test.program,
            &samm::core::policy::Policy::tso(),
            &EnumConfig::default(),
        )
        .unwrap();
        for (i, exec) in result.executions.iter().enumerate() {
            assert!(
                serialize::is_tso_serializable(exec),
                "{}: TSO execution {i} ({}) has no TSO witness",
                entry.test.name,
                exec.outcome()
            );
        }
    }
}

/// Minimality sanity check: the number of serializations of an execution
/// is at least one, and the paper's "one graph represents many
/// interleavings" claim is visible — across executions of SB, total
/// serializations exceed execution count.
#[test]
fn graphs_compress_many_serializations() {
    let entry = catalog::sb();
    let result = enumerate(&entry.test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
    let mut total_serializations = 0usize;
    for exec in &result.executions {
        let orders = serialize::serializations(exec, 10_000);
        assert!(!orders.is_empty());
        for o in &orders {
            serialize::validate_serialization(exec, o).unwrap();
        }
        total_serializations += orders.len();
    }
    assert!(
        total_serializations > result.executions.len(),
        "expected compression: {} executions vs {} serializations",
        result.executions.len(),
        total_serializations
    );
}
