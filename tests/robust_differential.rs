//! Differential fortress for the delay-set robustness certifier: every
//! static verdict checked against the pruned-enumeration oracle.
//!
//! Three layers:
//!
//! 1. **Catalog sweep** — every catalog entry under the full store-atomic
//!    chain (± speculation). A `Robust` verdict must coincide with
//!    outcome-set equality against SC (zero unsound claims — this is the
//!    soundness acceptance test), every reported critical cycle must
//!    re-check and, when the dynamic layer confirms it, realize a
//!    concrete witness outcome in the weak-minus-SC difference.
//! 2. **Random corpus** — a seeded corpus of generated programs across
//!    the same generator shapes as `pruned_differential.rs` (default 100,
//!    CI raises to 500 via `SAMM_DIFF_CORPUS`), asserting the same
//!    soundness contract; the seed is fixed so failures reproduce
//!    byte-for-byte.
//! 3. **Synthesis cross-validation** — cycle-guided fence synthesis
//!    ([`samm::analyze::synthesize_with_robust_seed`]) must return
//!    exactly the enumeration-based synthesizer's minimal placement on
//!    every fixable catalog entry, and the purely static
//!    [`samm::analyze::break_cycles`] placement must make the program
//!    statically robust when one exists.
//!
//! Soundness is one-directional by design: `CycleFound` may be a false
//! alarm on an equal-outcome pair (the static analysis over-approximates
//! reorderability) — the dynamic `analyze_robustness` layer resolves
//! exactly those cases and is held to the two-sided contract here.

use samm::analyze::{analyze_robustness, analyze_static, break_cycles, Robustness, StaticVerdict};
use samm::core::enumerate::EnumConfig;
use samm::core::instr::Program;
use samm::core::policy::Policy;
use samm::core::pruned::enumerate_pruned;
use samm::litmus::fences::synthesize_fences;
use samm::litmus::rand_prog::{random_program, RandConfig};
use samm::litmus::{catalog, ModelSel};

use rand::prelude::*;

const MODELS: [ModelSel; 5] = [
    ModelSel::Sc,
    ModelSel::Tso,
    ModelSel::Pso,
    ModelSel::Weak,
    ModelSel::WeakSpec,
];

fn fresh_config() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

/// The two-sided contract for one (program, policy) pair: static
/// `Robust` implies outcome-set equality with SC; a dynamically
/// confirmed cycle implies strict inequality with a concrete witness;
/// `Unknown` implies nothing (and asserts nothing).
fn assert_verdict_sound(program: &Program, policy: &Policy, label: &str) {
    let config = fresh_config();
    let sc = Policy::sequential_consistency();
    let weak_run = enumerate_pruned(program, policy, &config).expect("pruned oracle succeeds");
    let sc_run = enumerate_pruned(program, &sc, &config).expect("pruned oracle succeeds");
    let equal = weak_run.outcomes == sc_run.outcomes;

    match analyze_static(program, policy) {
        StaticVerdict::Robust(cert) => {
            assert!(
                cert.check(program, policy),
                "{label}: robustness certificate fails its own check"
            );
            assert!(
                equal,
                "{label}: UNSOUND robust claim — {} outcomes vs {} under SC",
                weak_run.outcomes.len(),
                sc_run.outcomes.len()
            );
        }
        StaticVerdict::CycleFound(cycle) => {
            assert!(
                cycle.check(program, policy),
                "{label}: reported cycle fails its own check"
            );
        }
        StaticVerdict::Unknown(_) => {}
    }

    match analyze_robustness(program, policy, &config).expect("dynamic analysis succeeds") {
        Robustness::Robust(_) => {
            assert!(equal, "{label}: UNSOUND robust claim (dynamic path)");
        }
        Robustness::NotRobust { cycle, witness } => {
            assert!(
                !equal,
                "{label}: NotRobust verdict but the outcome sets are equal"
            );
            assert!(
                cycle.check(program, policy),
                "{label}: confirmed cycle fails its own check"
            );
            assert!(
                weak_run.outcomes.contains(&witness) && !sc_run.outcomes.contains(&witness),
                "{label}: witness {witness} is not in the weak-minus-SC difference"
            );
        }
        Robustness::Unknown(_) => {
            // `Unknown` must only hide *equal* pairs when it came from an
            // unrealizable cycle; a diverging pair the static layer saw a
            // cycle for must be confirmed. Divergence with a genuinely
            // undecidable program (branches, pointers) is fine.
            if let StaticVerdict::CycleFound(_) = analyze_static(program, policy) {
                assert!(
                    equal,
                    "{label}: outcome sets differ but the cycle was called unrealizable"
                );
            }
        }
    }
}

/// Layer 1: the whole catalog under the whole model chain.
#[test]
fn robustness_verdicts_are_sound_on_full_catalog() {
    for entry in catalog::all() {
        for model in MODELS {
            assert_verdict_sound(
                &entry.test.program,
                &model.policy(),
                &format!("{} under {}", entry.test.name, model.name()),
            );
        }
    }
}

/// Corpus size: `SAMM_DIFF_CORPUS` (CI sets 500), default 100.
fn corpus_size() -> usize {
    std::env::var("SAMM_DIFF_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// The generator shapes of `pruned_differential.rs`: plain racy,
/// branchy (exercises the `Unknown` guard), fence-heavy (exercises
/// `Robust`), RMW-mixed.
fn shapes() -> [RandConfig; 4] {
    let base = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.15,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: 0.0,
        rmw_prob: 0.0,
    };
    [
        base.clone(),
        RandConfig {
            branch_prob: 0.3,
            ..base.clone()
        },
        RandConfig {
            fence_prob: 0.5,
            ..base.clone()
        },
        RandConfig {
            rmw_prob: 0.35,
            ..base
        },
    ]
}

/// Layer 2: the seeded random corpus. Program `i` of shape `s` is fully
/// determined by `(i, s)`; the seed constant differs from
/// `pruned_differential.rs` so the two fortresses cover disjoint
/// programs.
#[test]
fn robustness_verdicts_are_sound_on_seeded_corpus() {
    let shapes = shapes();
    let n = corpus_size();
    for i in 0..n {
        let shape = i % shapes.len();
        let mut rng = StdRng::seed_from_u64(0x0B57_C10E ^ (i as u64));
        let program = random_program(&mut rng, &shapes[shape]);
        for model in MODELS {
            assert_verdict_sound(
                &program,
                &model.policy(),
                &format!("corpus program {i} (shape {shape}) under {}", model.name()),
            );
        }
    }
}

/// Layer 3a: the cycle-guided synthesis budget preserves exact
/// minimality — seeded and unseeded synthesis agree on placement count
/// (and on unfixability) for every catalog entry with a forbidden
/// condition, under every weak model of the chain.
#[test]
fn seeded_synthesis_is_exactly_minimal_on_catalog() {
    use samm::analyze::synthesize_with_robust_seed;
    let config = fresh_config();
    // Entries small enough for unseeded synthesis to stay cheap; each
    // has condition 0 as a meaningful forbidden/allowed condition.
    for entry in [
        catalog::sb(),
        catalog::mp(),
        catalog::corr(),
        catalog::lb(),
        catalog::mp_fence_producer_only(),
    ] {
        for model in [ModelSel::Tso, ModelSel::Pso, ModelSel::Weak] {
            let policy = model.policy();
            let seeded = synthesize_with_robust_seed(
                &entry.test.program,
                &entry.test.conditions[0],
                &policy,
                &config,
            )
            .expect("seeded synthesis succeeds");
            let unseeded = synthesize_fences(
                &entry.test.program,
                &entry.test.conditions[0],
                &policy,
                4,
                &config,
            )
            .expect("unseeded synthesis succeeds");
            match (&seeded, &unseeded) {
                (Some(s), Some(u)) => assert_eq!(
                    s.placements.len(),
                    u.placements.len(),
                    "{} under {}: seeded synthesis lost minimality",
                    entry.test.name,
                    model.name()
                ),
                (None, None) => {}
                _ => panic!(
                    "{} under {}: seeded={:?} unseeded={:?} disagree on fixability",
                    entry.test.name,
                    model.name(),
                    seeded.as_ref().map(|f| f.placements.len()),
                    unseeded.as_ref().map(|f| f.placements.len()),
                ),
            }
        }
    }
}

/// Layer 3b: `break_cycles` placements actually certify — inserting the
/// returned fences makes the program statically robust, verified by the
/// oracle to be outcome-equal to SC.
#[test]
fn break_cycles_placements_certify_against_the_oracle() {
    use samm::litmus::fences::insert_fence;
    let config = fresh_config();
    for entry in [
        catalog::sb(),
        catalog::mp(),
        catalog::corr(),
        catalog::iriw(),
    ] {
        for model in [ModelSel::Pso, ModelSel::Weak] {
            let policy = model.policy();
            let Some(slots) = break_cycles(&entry.test.program, &policy) else {
                panic!(
                    "{} under {}: straight-line entry must admit a static placement",
                    entry.test.name,
                    model.name()
                );
            };
            let program = &entry.test.program;
            let mut by_thread: Vec<Vec<usize>> = vec![Vec::new(); program.threads().len()];
            for &(t, pos) in &slots {
                by_thread[t].push(pos);
            }
            let threads = program
                .threads()
                .iter()
                .zip(by_thread.iter_mut())
                .map(|(thread, positions)| {
                    positions.sort_unstable_by(|a, b| b.cmp(a));
                    let mut fenced = thread.clone();
                    for &pos in positions.iter() {
                        fenced = insert_fence(&fenced, pos);
                    }
                    fenced
                })
                .collect();
            let fenced = Program::with_init(threads, program.init_entries().collect());
            assert!(
                matches!(analyze_static(&fenced, &policy), StaticVerdict::Robust(_)),
                "{} under {}: placement does not certify",
                entry.test.name,
                model.name()
            );
            let weak_run =
                enumerate_pruned(&fenced, &policy, &config).expect("pruned oracle succeeds");
            let sc_run = enumerate_pruned(&fenced, &Policy::sequential_consistency(), &config)
                .expect("pruned oracle succeeds");
            assert_eq!(
                weak_run.outcomes,
                sc_run.outcomes,
                "{} under {}: fenced program is not SC-equal",
                entry.test.name,
                model.name()
            );
        }
    }
}
