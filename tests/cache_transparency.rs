//! Differential validation of the content-addressed enumeration cache:
//! a cache hit must be observably identical to a fresh enumeration.
//!
//! Over a random-program corpus, each (program, policy) query is run
//! fresh under both engines, then replayed through a shared cache in
//! both orders (serial fills / parallel hits, and vice versa). The
//! cached answer must be bit-identical in outcomes and deterministic
//! statistics regardless of which engine filled the entry — the
//! property `samm-serve` relies on to serve mixed-engine traffic from
//! one cache. A final check mutates the program and asserts the mutant
//! can never be answered by the original's entry.
//!
//! The pruned engine gets its own transparency property: its search
//! counters legitimately differ from the serial engine's, but the
//! engine-independent observables (outcome set, distinct execution
//! count) must agree under every dedup configuration, so a cache entry
//! filled by either engine answers for both.

use proptest::prelude::*;
use rand::prelude::*;

use samm::core::cache::{cached_enumerate, CachedResult, EnumCache};
use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::fingerprint::query_fingerprint;
use samm::core::ids::Value;
use samm::core::instr::{Instr, Operand, Program, ThreadProgram};
use samm::core::parallel::enumerate_parallel;
use samm::core::policy::Policy;
use samm::core::pruned::enumerate_pruned;
use samm::litmus::rand_prog::{random_program, RandConfig};

fn chain() -> [Policy; 4] {
    [
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::pso(),
        Policy::weak(),
    ]
}

fn fast() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

fn gen_config(branchy: bool) -> RandConfig {
    RandConfig {
        threads: 2,
        ops_per_thread: 3,
        locations: 3,
        fence_prob: 0.2,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: if branchy { 0.25 } else { 0.0 },
        rmw_prob: 0.1,
    }
}

/// Asserts a [`CachedResult`] agrees with a fresh serial enumeration on
/// the engine-independent observables: the outcome set and the distinct
/// execution count. This is the contract every engine (serial, parallel,
/// pruned) must satisfy; search-shape counters (`explored`, `forks`,
/// `deduped`) are engine-specific and deliberately not compared here.
fn assert_semantics_match_fresh(cached: &CachedResult, program: &Program, policy: &Policy) {
    let fresh = enumerate(program, policy, &fast()).expect("fresh enumeration succeeds");
    assert_eq!(cached.outcomes, fresh.outcomes, "outcome sets differ");
    assert_eq!(
        cached.stats.distinct_executions,
        fresh.stats.distinct_executions
    );
}

/// Asserts a [`CachedResult`] equals a fresh enumeration of the same
/// query: same outcome set and same deterministic counters.
fn assert_matches_fresh(cached: &CachedResult, program: &Program, policy: &Policy) {
    let fresh = enumerate(program, policy, &fast()).expect("fresh enumeration succeeds");
    assert_eq!(cached.outcomes, fresh.outcomes, "outcome sets differ");
    assert_eq!(cached.stats.explored, fresh.stats.explored);
    assert_eq!(cached.stats.forks, fresh.stats.forks);
    assert_eq!(cached.stats.deduped, fresh.stats.deduped);
    assert_eq!(
        cached.stats.distinct_executions,
        fresh.stats.distinct_executions
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core transparency property, in both fill orders.
    #[test]
    fn prop_cache_hits_are_bit_identical_to_fresh_runs(
        seed in 0u64..1_000_000,
        branchy in prop::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_program(&mut rng, &gen_config(branchy));
        let config = fast();
        for policy in chain() {
            // Serial fills, parallel hits.
            let cache = EnumCache::new(16);
            let (serial_fill, hit) =
                cached_enumerate(&cache, &program, &policy, &config, enumerate)
                    .expect("fill succeeds");
            prop_assert!(!hit, "empty cache cannot hit");
            let (parallel_hit, hit) =
                cached_enumerate(&cache, &program, &policy, &config, enumerate_parallel)
                    .expect("hit succeeds");
            prop_assert!(hit, "second lookup must hit");
            prop_assert_eq!(&serial_fill, &parallel_hit, "hit must return the stored value");

            // Parallel fills, serial hits: the stored value must be the
            // same normalized answer, so mixed-engine traffic cannot
            // observe which engine populated the entry.
            let other = EnumCache::new(16);
            let (parallel_fill, _) =
                cached_enumerate(&other, &program, &policy, &config, enumerate_parallel)
                    .expect("fill succeeds");
            let (serial_hit, hit) =
                cached_enumerate(&other, &program, &policy, &config, enumerate)
                    .expect("hit succeeds");
            prop_assert!(hit);
            prop_assert_eq!(&parallel_fill, &serial_hit);
            prop_assert_eq!(&serial_fill, &parallel_fill, "fill engines must agree bit-for-bit");

            assert_matches_fresh(&serial_hit, &program, &policy);
        }
    }

    /// The pruned engine is cache-transparent: an entry it fills serves
    /// serial traffic (and vice versa) with the same outcomes and the
    /// same distinct-execution count, under both dedup configurations.
    /// With dedup off the serial engine must collapse duplicate complete
    /// behaviours even though no executions are kept — the pruned engine
    /// always reports the collapsed count, so any drift fails here.
    #[test]
    fn prop_pruned_engine_is_cache_transparent(
        seed in 0u64..1_000_000,
        branchy in prop::bool::ANY,
        dedup in prop::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_program(&mut rng, &gen_config(branchy));
        let config = EnumConfig::builder()
            .keep_executions(false)
            .dedup(dedup)
            .build();
        for policy in chain() {
            // Pruned fills, serial hits.
            let cache = EnumCache::new(16);
            let (pruned_fill, hit) =
                cached_enumerate(&cache, &program, &policy, &config, enumerate_pruned)
                    .expect("pruned fill succeeds");
            prop_assert!(!hit, "empty cache cannot hit");
            let (serial_hit, hit) =
                cached_enumerate(&cache, &program, &policy, &config, enumerate)
                    .expect("hit succeeds");
            prop_assert!(hit, "second lookup must hit");
            prop_assert_eq!(&pruned_fill, &serial_hit, "hit must return the stored value");
            assert_semantics_match_fresh(&serial_hit, &program, &policy);

            // Serial fills, pruned hits: the fingerprint is engine-
            // independent, so the pruned replay lands on the entry.
            let other = EnumCache::new(16);
            let (serial_fill, _) =
                cached_enumerate(&other, &program, &policy, &config, enumerate)
                    .expect("serial fill succeeds");
            let (pruned_hit, hit) =
                cached_enumerate(&other, &program, &policy, &config, enumerate_pruned)
                    .expect("hit succeeds");
            prop_assert!(hit);
            prop_assert_eq!(&serial_fill, &pruned_hit);

            // The engine-independent observables agree across fills.
            prop_assert_eq!(&pruned_fill.outcomes, &serial_fill.outcomes);
            prop_assert_eq!(
                pruned_fill.stats.distinct_executions,
                serial_fill.stats.distinct_executions,
                "pruned and serial fills must agree on the distinct count"
            );
        }
    }

    /// Distinct programs in one cache never collide: sweeping a corpus
    /// through a single small cache (with evictions) still answers every
    /// replay correctly.
    #[test]
    fn prop_shared_cache_with_evictions_stays_correct(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = fast();
        // Shard capacity 2: the 8-program × 2-policy sweep evicts.
        let cache = EnumCache::with_shards(2, 2);
        let programs: Vec<Program> = (0..8)
            .map(|_| random_program(&mut rng, &gen_config(false)))
            .collect();
        for program in &programs {
            for policy in [Policy::sequential_consistency(), Policy::weak()] {
                let (value, _) =
                    cached_enumerate(&cache, program, &policy, &config, enumerate)
                        .expect("enumeration succeeds");
                assert_matches_fresh(&value, program, &policy);
            }
        }
        // Replay the whole corpus: hits and (post-eviction) refills must
        // both be correct.
        for program in &programs {
            for policy in [Policy::sequential_consistency(), Policy::weak()] {
                let (value, _) =
                    cached_enumerate(&cache, program, &policy, &config, enumerate)
                        .expect("enumeration succeeds");
                assert_matches_fresh(&value, program, &policy);
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.evictions > 0, "sweep must exceed capacity");
    }

    /// Mutating a program always changes its fingerprint, so a stale
    /// entry can never answer for the mutant.
    #[test]
    fn prop_mutated_programs_never_alias(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_program(&mut rng, &gen_config(false));
        let policy = Policy::weak();
        let config = fast();
        let original = query_fingerprint(&program, &policy, &config);

        // Append a store of a fresh value to thread 0: a semantic change.
        let mut threads: Vec<Vec<Instr>> = program
            .threads()
            .iter()
            .map(|t| t.instrs().to_vec())
            .collect();
        threads[0].push(Instr::Store {
            addr: Operand::Imm(Value::new(0)),
            val: Operand::Imm(Value::new(991)),
        });
        let mutated = Program::with_init(
            threads.into_iter().map(ThreadProgram::new).collect(),
            program.init_entries().collect(),
        );
        prop_assert!(
            original != query_fingerprint(&mutated, &policy, &config),
            "mutation must change the fingerprint"
        );

        let cache = EnumCache::new(16);
        let (_, _) = cached_enumerate(&cache, &program, &policy, &config, enumerate)
            .expect("fill succeeds");
        let (mutant_value, hit) =
            cached_enumerate(&cache, &mutated, &policy, &config, enumerate)
                .expect("mutant enumerates");
        prop_assert!(!hit, "mutant must not be answered by the stale entry");
        assert_matches_fresh(&mutant_value, &mutated, &policy);
    }
}
