//! The headline reproduction test: every verdict of every catalog entry —
//! the classic litmus suite plus Figures 3, 4, 5, 7, 8 and 10 of the paper
//! — must match what exhaustive enumeration under the corresponding model
//! observes.

use samm::core::enumerate::EnumConfig;
use samm::litmus::{catalog, expect};

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

#[test]
fn every_catalog_verdict_holds() {
    let entries = catalog::all();
    let mut checked = 0;
    for entry in &entries {
        let report = expect::run_entry(entry, &config())
            .unwrap_or_else(|e| panic!("{} failed to enumerate: {e}", entry.test.name));
        assert!(
            report.all_pass(),
            "{} has failing verdicts:\n{report}",
            entry.test.name
        );
        checked += report.rows.len();
    }
    assert!(
        checked >= 80,
        "expected a substantial verdict matrix, got {checked}"
    );
}

#[test]
fn paper_figures_reproduce() {
    for entry in catalog::paper_figures() {
        let report = expect::run_entry(&entry, &config()).expect("enumeration succeeds");
        assert!(report.all_pass(), "{}:\n{report}", entry.test.name);
    }
}

/// Figure 7's point is the *cascade*: deriving the drawn execution forces
/// the closure to add the cross-location edges c (S3 @ S4) and d
/// (S1 @ S2). Check them on the actual enumerated execution.
#[test]
fn figure_7_cascade_edges_appear_in_the_enumerated_execution() {
    use samm::core::enumerate::enumerate;
    use samm::core::policy::Policy;

    let entry = catalog::fig7();
    let result = enumerate(&entry.test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
    let cond = &entry.test.conditions[0]; // r6 = 4 & r5 = 2
    let exec = result
        .executions
        .iter()
        .find(|b| cond.matches(&b.outcome()))
        .expect("the Figure 7 execution must be enumerated");

    let g = exec.graph();
    // Identify the figure's nodes by thread/value.
    let find_store = |val: u64| {
        g.iter()
            .find(|(_, n)| {
                n.is_store() && !n.is_init() && n.value() == Some(samm::core::ids::Value::new(val))
            })
            .map(|(id, _)| id)
            .expect("store present")
    };
    let s1 = find_store(1);
    let s2 = find_store(2);
    let s3 = find_store(3);
    let s4 = find_store(4);
    assert!(g.precedes(s3, s4), "edge c of Figure 7: S3 @ S4");
    assert!(g.precedes(s1, s2), "edge d of Figure 7: S1 @ S2");
}

/// The catalog's SB entry doubles as a check that naive TSO differs from
/// real TSO exactly on bypass-dependent shapes: on SB (no same-address
/// store→load pair) they agree, on Figure 10 they differ.
#[test]
fn naive_tso_agrees_on_sb_but_not_on_figure_10() {
    use samm::core::enumerate::enumerate;
    use samm::litmus::ModelSel;

    let sb = catalog::sb();
    let naive = enumerate(&sb.test.program, &ModelSel::NaiveTso.policy(), &config()).unwrap();
    let tso = enumerate(&sb.test.program, &ModelSel::Tso.policy(), &config()).unwrap();
    assert_eq!(naive.outcomes, tso.outcomes, "SB has no bypass shapes");

    let fig10 = catalog::fig10();
    let naive = enumerate(&fig10.test.program, &ModelSel::NaiveTso.policy(), &config()).unwrap();
    let tso = enumerate(&fig10.test.program, &ModelSel::Tso.policy(), &config()).unwrap();
    let cond = &fig10.test.conditions[0];
    assert!(!cond.observable_in(&naive.outcomes));
    assert!(cond.observable_in(&tso.outcomes));
    assert!(
        naive.outcomes.is_subset(&tso.outcomes),
        "naive TSO only removes behaviours"
    );
}
