//! Golden pruning-stats regression: hard-coded fork/prune/dedup counters
//! for every paper figure and every atomics test of the catalog, across
//! the full model chain, under the prune-before-expand engine in its
//! fresh-query configuration (`keep_executions(false)`, where symmetry
//! reduction is active).
//!
//! The counters are the engine's observable search shape: how many
//! claims were attempted, how many died to dominance or symmetry before
//! a fork was paid for, how many forks were expanded (and of those, how
//! many consumed the parent in place), how many were rolled back by
//! Store Atomicity, and how many executions were credited through orbit
//! expansion. Any change to the pruning rules, the claim order, or the
//! fork representation that shifts this shape must update the table
//! deliberately — exactly like `golden_enumeration.rs` for counts.
//!
//! Regenerate with:
//! `cargo test --release --test golden_pruning -- --ignored --nocapture`

use samm::core::enumerate::EnumConfig;
use samm::core::pruned::{enumerate_pruned_stats, PruneStats};
use samm::litmus::{catalog, CatalogEntry, ModelSel};

/// One golden row: the deterministic search-shape counters of a
/// `(test, model)` query.
#[derive(Debug, PartialEq, Eq)]
struct Row {
    name: &'static str,
    model: ModelSel,
    distinct_executions: usize,
    claims: u64,
    pruned_dominated: u64,
    pruned_symmetric: u64,
    expanded: u64,
    in_place: u64,
    rolled_back: u64,
    orbit_commits: u64,
    symmetry_group: u64,
}

#[allow(clippy::too_many_arguments)]
const fn row(
    name: &'static str,
    model: ModelSel,
    distinct_executions: usize,
    claims: u64,
    pruned_dominated: u64,
    pruned_symmetric: u64,
    expanded: u64,
    in_place: u64,
    rolled_back: u64,
    orbit_commits: u64,
    symmetry_group: u64,
) -> Row {
    Row {
        name,
        model,
        distinct_executions,
        claims,
        pruned_dominated,
        pruned_symmetric,
        expanded,
        in_place,
        rolled_back,
        orbit_commits,
        symmetry_group,
    }
}

/// `(test, model, distinct, claims, dominated, symmetric, expanded,
/// in_place, rolled_back, orbit_commits, group)` ground truth.
const GOLDEN: &[Row] = &[
    row("fig3", ModelSel::Sc, 3, 10, 3, 0, 7, 3, 0, 0, 1),
    row("fig3", ModelSel::Tso, 3, 16, 4, 0, 12, 4, 5, 0, 1),
    row("fig3", ModelSel::Pso, 3, 16, 4, 0, 12, 4, 5, 0, 1),
    row("fig3", ModelSel::Weak, 3, 10, 3, 0, 7, 3, 0, 0, 1),
    row("fig3", ModelSel::WeakSpec, 3, 10, 3, 0, 7, 3, 0, 0, 1),
    row("fig4", ModelSel::Sc, 5, 16, 5, 0, 11, 4, 0, 0, 1),
    row("fig4", ModelSel::Tso, 5, 16, 5, 0, 11, 4, 0, 0, 1),
    row("fig4", ModelSel::Pso, 5, 16, 5, 0, 11, 4, 0, 0, 1),
    row("fig4", ModelSel::Weak, 5, 16, 5, 0, 11, 4, 0, 0, 1),
    row("fig4", ModelSel::WeakSpec, 5, 16, 5, 0, 11, 4, 0, 0, 1),
    row("fig5", ModelSel::Sc, 19, 114, 49, 0, 65, 26, 0, 0, 1),
    row("fig5", ModelSel::Tso, 19, 136, 49, 0, 87, 40, 22, 0, 1),
    row("fig5", ModelSel::Pso, 19, 136, 49, 0, 87, 40, 22, 0, 1),
    row("fig5", ModelSel::Weak, 24, 220, 125, 0, 95, 26, 0, 0, 1),
    row("fig5", ModelSel::WeakSpec, 24, 220, 125, 0, 95, 26, 0, 0, 1),
    row("fig7", ModelSel::Sc, 5, 15, 5, 0, 10, 4, 0, 0, 1),
    row("fig7", ModelSel::Tso, 5, 19, 5, 0, 14, 4, 4, 0, 1),
    row("fig7", ModelSel::Pso, 5, 19, 5, 0, 14, 4, 4, 0, 1),
    row("fig7", ModelSel::Weak, 5, 15, 5, 0, 10, 4, 0, 0, 1),
    row("fig7", ModelSel::WeakSpec, 5, 15, 5, 0, 10, 4, 0, 0, 1),
    row("fig8", ModelSel::Sc, 12, 22, 0, 0, 22, 11, 0, 0, 1),
    row("fig8", ModelSel::Tso, 12, 22, 0, 0, 22, 11, 0, 0, 1),
    row("fig8", ModelSel::Pso, 12, 22, 0, 0, 22, 11, 0, 0, 1),
    row("fig8", ModelSel::Weak, 12, 22, 0, 0, 22, 11, 0, 0, 1),
    row("fig8", ModelSel::WeakSpec, 15, 46, 15, 0, 31, 10, 0, 0, 1),
    row("fig10", ModelSel::Sc, 7, 52, 20, 0, 32, 17, 0, 0, 1),
    row("fig10", ModelSel::Tso, 15, 94, 33, 0, 61, 23, 17, 0, 1),
    row("fig10", ModelSel::Pso, 27, 138, 49, 0, 89, 29, 25, 0, 1),
    row("fig10", ModelSel::Weak, 27, 352, 225, 0, 127, 48, 0, 0, 1),
    row(
        "fig10",
        ModelSel::WeakSpec,
        27,
        352,
        225,
        0,
        127,
        48,
        0,
        0,
        1,
    ),
    row("CAS-mutex", ModelSel::Sc, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("CAS-mutex", ModelSel::Tso, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("CAS-mutex", ModelSel::Pso, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("CAS-mutex", ModelSel::Weak, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("CAS-mutex", ModelSel::WeakSpec, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("FAA-incr", ModelSel::Sc, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("FAA-incr", ModelSel::Tso, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("FAA-incr", ModelSel::Pso, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("FAA-incr", ModelSel::Weak, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("FAA-incr", ModelSel::WeakSpec, 2, 4, 0, 1, 3, 2, 1, 1, 2),
    row("broken-incr", ModelSel::Sc, 3, 4, 0, 1, 3, 2, 0, 1, 2),
    row("broken-incr", ModelSel::Tso, 3, 4, 0, 1, 3, 2, 0, 1, 2),
    row("broken-incr", ModelSel::Pso, 3, 4, 0, 1, 3, 2, 0, 1, 2),
    row("broken-incr", ModelSel::Weak, 3, 4, 0, 1, 3, 2, 0, 1, 2),
    row("broken-incr", ModelSel::WeakSpec, 3, 4, 0, 1, 3, 2, 0, 1, 2),
    row("SB+swap", ModelSel::Sc, 3, 18, 6, 0, 12, 7, 0, 0, 1),
    row("SB+swap", ModelSel::Tso, 3, 18, 6, 0, 12, 7, 0, 0, 1),
    row("SB+swap", ModelSel::Pso, 3, 18, 6, 0, 12, 7, 0, 0, 1),
    row("SB+swap", ModelSel::Weak, 4, 50, 26, 0, 24, 15, 0, 0, 1),
    row("SB+swap", ModelSel::WeakSpec, 4, 50, 26, 0, 24, 15, 0, 0, 1),
];

fn entries() -> Vec<CatalogEntry> {
    let mut out = catalog::paper_figures();
    out.extend([
        catalog::cas_mutex(),
        catalog::atomic_increment(),
        catalog::broken_increment(),
        catalog::swap_sb(),
    ]);
    out
}

const MODELS: [ModelSel; 5] = [
    ModelSel::Sc,
    ModelSel::Tso,
    ModelSel::Pso,
    ModelSel::Weak,
    ModelSel::WeakSpec,
];

fn fresh_config() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

fn measure(entry: &CatalogEntry, model: ModelSel) -> (usize, PruneStats) {
    let (result, pstats) =
        enumerate_pruned_stats(&entry.test.program, &model.policy(), &fresh_config())
            .expect("pruned enumeration succeeds");
    (result.stats.distinct_executions, pstats)
}

#[test]
fn pruning_counters_match_golden() {
    assert_eq!(
        GOLDEN.len(),
        entries().len() * MODELS.len(),
        "golden table must cover the whole catalog × model chain"
    );
    for golden in GOLDEN {
        let entry = entries()
            .into_iter()
            .find(|e| e.test.name == golden.name)
            .unwrap_or_else(|| panic!("no catalog entry named {}", golden.name));
        let (distinct, p) = measure(&entry, golden.model);
        let actual = row(
            golden.name,
            golden.model,
            distinct,
            p.claims,
            p.pruned_dominated,
            p.pruned_symmetric,
            p.expanded,
            p.in_place,
            p.rolled_back,
            p.orbit_commits,
            p.symmetry_group,
        );
        assert_eq!(
            &actual,
            golden,
            "pruning counters drifted for {} under {}",
            golden.name,
            golden.model.name()
        );
    }
}

/// Cross-invariants that must hold for every row regardless of the
/// concrete numbers: claims partition into pruned/expanded, in-place
/// expansions are a subset of expansions, and orbit credit only exists
/// under a nontrivial group.
#[test]
fn pruning_counters_satisfy_invariants() {
    for entry in entries() {
        for model in MODELS {
            let (_, p) = measure(&entry, model);
            let name = &entry.test.name;
            assert_eq!(
                p.claims,
                p.pruned_dominated + p.pruned_symmetric + p.expanded,
                "{name} under {}: claims must partition",
                model.name()
            );
            assert!(p.in_place <= p.expanded, "{name}");
            assert!(p.rolled_back <= p.expanded, "{name}");
            if p.symmetry_group == 1 {
                assert_eq!(p.pruned_symmetric, 0, "{name}");
                assert_eq!(p.orbit_commits, 0, "{name}");
            }
        }
    }
}

/// Regenerates the golden table (printed to stdout for pasting).
#[test]
#[ignore = "generator for the GOLDEN table"]
fn regenerate_golden_table() {
    for entry in entries() {
        for model in MODELS {
            let (distinct, p) = measure(&entry, model);
            println!(
                "    row(\"{}\", ModelSel::{:?}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
                entry.test.name,
                model,
                distinct,
                p.claims,
                p.pruned_dominated,
                p.pruned_symmetric,
                p.expanded,
                p.in_place,
                p.rolled_back,
                p.orbit_commits,
                p.symmetry_group
            );
        }
    }
}
