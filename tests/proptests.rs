//! Property-based tests (proptest) over the core data structures and the
//! paper's invariants. Each property runs against freshly generated
//! inputs and shrinks on failure.

use proptest::prelude::*;
use rand::prelude::*;

use samm::core::bitset::BitSet;
use samm::core::closure::Closure;
use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::ids::NodeId;
use samm::core::parallel::enumerate_parallel;
use samm::core::policy::Policy;
use samm::core::pruned::enumerate_pruned;
use samm::core::serialize;
use samm::litmus::rand_prog::{random_program, RandConfig};
use samm::oper;

// --- BitSet behaves like a reference set -------------------------------

proptest! {
    #[test]
    fn bitset_matches_btreeset(ops in prop::collection::vec((0usize..300, prop::bool::ANY), 0..100)) {
        let mut bits = BitSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for (bit, insert) in ops {
            if insert {
                prop_assert_eq!(bits.insert(bit), reference.insert(bit));
            } else {
                prop_assert_eq!(bits.remove(bit), reference.remove(&bit));
            }
        }
        prop_assert_eq!(bits.len(), reference.len());
        prop_assert_eq!(bits.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_union_and_intersection_laws(
        a in prop::collection::btree_set(0usize..200, 0..40),
        b in prop::collection::btree_set(0usize..200, 0..40),
    ) {
        let sa: BitSet = a.iter().copied().collect();
        let sb: BitSet = b.iter().copied().collect();
        let mut union = sa.clone();
        union.union_with(&sb);
        let expected_union: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(union.iter().collect::<Vec<_>>(), expected_union);
        let inter = sa.intersection(&sb);
        let expected_inter: Vec<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), expected_inter);
        prop_assert_eq!(sa.intersects(&sb), !expected_inter_is_empty(&a, &b));
    }
}

fn expected_inter_is_empty(
    a: &std::collections::BTreeSet<usize>,
    b: &std::collections::BTreeSet<usize>,
) -> bool {
    a.intersection(b).next().is_none()
}

// --- Closure is a strict partial order maintained incrementally --------

proptest! {
    #[test]
    fn closure_is_transitive_and_acyclic(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..40),
    ) {
        let mut c = Closure::new();
        let ids: Vec<NodeId> = (0..n).map(|_| c.add_node()).collect();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            // Insert only forward edges so the graph stays acyclic.
            if a < b {
                c.add_edge(ids[a], ids[b]).expect("forward edges cannot cycle");
            }
        }
        for i in 0..n {
            prop_assert!(!c.reaches(ids[i], ids[i]), "strictness violated");
            for j in 0..n {
                for k in 0..n {
                    if c.reaches(ids[i], ids[j]) && c.reaches(ids[j], ids[k]) {
                        prop_assert!(c.reaches(ids[i], ids[k]), "transitivity violated");
                    }
                }
            }
        }
        // The topological order must linearize the relation.
        let order = c.topological_order();
        let pos = |x: NodeId| order.iter().position(|&o| o == x).unwrap();
        for i in 0..n {
            for j in 0..n {
                if c.reaches(ids[i], ids[j]) {
                    prop_assert!(pos(ids[i]) < pos(ids[j]));
                }
            }
        }
    }

    #[test]
    fn closure_rejects_exactly_the_back_edges(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..15, 0usize..15), 1..30),
    ) {
        let mut c = Closure::new();
        let ids: Vec<NodeId> = (0..n).map(|_| c.add_node()).collect();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a == b {
                prop_assert!(c.add_edge(ids[a], ids[b]).is_err());
                continue;
            }
            let was_back_edge = c.reaches(ids[b], ids[a]);
            let result = c.add_edge(ids[a], ids[b]);
            prop_assert_eq!(result.is_err(), was_back_edge);
        }
    }
}

// --- Paper invariants over random programs ----------------------------

/// Builds a program from a proptest-chosen seed (keeps proptest shrinking
/// over the seed while reusing the tuned generator).
fn program_from_seed(seed: u64, branchy: bool) -> samm::core::instr::Program {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.15,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: if branchy { 0.3 } else { 0.0 },
        rmw_prob: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    random_program(&mut rng, &cfg)
}

/// Like [`program_from_seed`] but with atomic RMWs mixed in.
fn rmw_program_from_seed(seed: u64) -> samm::core::instr::Program {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.1,
        store_prob: 0.5,
        data_dep_prob: 0.2,
        branch_prob: 0.0,
        rmw_prob: 0.35,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    random_program(&mut rng, &cfg)
}

fn quick_config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Graph-model SC equals interleaving SC on arbitrary programs.
    #[test]
    fn sc_graph_equals_sc_interleaving(seed in any::<u64>(), branchy in any::<bool>()) {
        let prog = program_from_seed(seed, branchy);
        let graph = enumerate(&prog, &Policy::sequential_consistency(), &quick_config())
            .unwrap().outcomes;
        let oper = oper::enumerate_sc(&prog, 2_000_000).unwrap();
        prop_assert_eq!(graph, oper);
    }

    /// Graph-model TSO equals the store-buffer machine.
    #[test]
    fn tso_graph_equals_store_buffer(seed in any::<u64>()) {
        let prog = program_from_seed(seed, false);
        let graph = enumerate(&prog, &Policy::tso(), &quick_config()).unwrap().outcomes;
        let oper = oper::enumerate_tso(&prog, 2_000_000).unwrap();
        prop_assert_eq!(graph, oper);
    }

    /// Deduplication never changes the outcome set.
    #[test]
    fn dedup_is_outcome_preserving(seed in any::<u64>()) {
        let prog = program_from_seed(seed, false);
        let with = enumerate(&prog, &Policy::weak(), &quick_config()).unwrap().outcomes;
        let without = enumerate(&prog, &Policy::weak(), &EnumConfig {
            dedup: false,
            keep_executions: false,
            ..EnumConfig::default()
        }).unwrap().outcomes;
        prop_assert_eq!(with, without);
    }

    /// Every weak-model execution is serializable with a valid witness
    /// (Store Atomicity ⇒ serializability).
    #[test]
    fn weak_executions_serialize(seed in any::<u64>()) {
        let prog = program_from_seed(seed, false);
        let result = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        for exec in &result.executions {
            let order = serialize::find_serialization(exec);
            prop_assert!(order.is_some(), "no serialization for an atomic execution");
            prop_assert!(serialize::validate_serialization(exec, &order.unwrap()).is_ok());
        }
    }

    /// Speculation only adds behaviours, never removes them.
    #[test]
    fn speculation_is_monotone(seed in any::<u64>()) {
        let prog = program_from_seed(seed, true);
        let base = enumerate(&prog, &Policy::weak(), &quick_config()).unwrap().outcomes;
        let spec = enumerate(&prog, &Policy::weak().with_alias_speculation(true), &quick_config())
            .unwrap().outcomes;
        prop_assert!(base.is_subset(&spec));
    }

    /// RMW programs also match the operational machines exactly — the
    /// single-node load+store treatment is equivalent to bus-locked
    /// atomics.
    #[test]
    fn rmw_graph_equals_operational(seed in any::<u64>()) {
        let prog = rmw_program_from_seed(seed);
        let graph_sc = enumerate(&prog, &Policy::sequential_consistency(), &quick_config())
            .unwrap().outcomes;
        let oper_sc = oper::enumerate_sc(&prog, 2_000_000).unwrap();
        prop_assert_eq!(graph_sc, oper_sc);
        let graph_tso = enumerate(&prog, &Policy::tso(), &quick_config()).unwrap().outcomes;
        let oper_tso = oper::enumerate_tso(&prog, 2_000_000).unwrap();
        prop_assert_eq!(graph_tso, oper_tso);
    }

    /// Every atomic-model RMW execution is serializable (RMWs replay as an
    /// adjacent load+store).
    #[test]
    fn rmw_executions_serialize(seed in any::<u64>()) {
        let prog = rmw_program_from_seed(seed);
        let result = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        for exec in &result.executions {
            let order = serialize::find_serialization(exec);
            prop_assert!(order.is_some());
            prop_assert!(serialize::validate_serialization(exec, &order.unwrap()).is_ok());
        }
    }

    /// Differential: the work-stealing parallel enumerator yields exactly
    /// the serial enumerator's outcome set and distinct-execution count,
    /// on random programs, across the whole model chain (± speculation)
    /// and across worker counts.
    #[test]
    fn parallel_matches_serial_differentially(
        seed in any::<u64>(),
        branchy in any::<bool>(),
        workers in 2usize..=8,
    ) {
        let prog = program_from_seed(seed, branchy);
        for policy in [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
            Policy::weak(),
            Policy::weak().with_alias_speculation(true),
        ] {
            let serial = enumerate(&prog, &policy, &quick_config()).unwrap();
            let par_config = EnumConfig {
                parallelism: workers,
                ..quick_config()
            };
            let parallel = enumerate_parallel(&prog, &policy, &par_config).unwrap();
            prop_assert_eq!(
                &serial.outcomes, &parallel.outcomes,
                "outcome sets differ under {} at {} workers", policy.name(), workers
            );
            prop_assert_eq!(
                serial.stats.distinct_executions, parallel.stats.distinct_executions,
                "execution counts differ under {} at {} workers", policy.name(), workers
            );
        }
    }

    /// Differential, with executions kept: the parallel engine's execution
    /// list is the serial engine's, sorted by canonical key.
    #[test]
    fn parallel_executions_are_serials_sorted(seed in any::<u64>(), workers in 2usize..=8) {
        let prog = program_from_seed(seed, false);
        let config = EnumConfig::default();
        let serial = enumerate(&prog, &Policy::weak(), &config).unwrap();
        let parallel = enumerate_parallel(&prog, &Policy::weak(), &EnumConfig {
            parallelism: workers,
            ..config
        }).unwrap();
        let mut serial_keys: Vec<Vec<u8>> =
            serial.executions.iter().map(|b| b.canonical_key()).collect();
        serial_keys.sort();
        let parallel_keys: Vec<Vec<u8>> =
            parallel.executions.iter().map(|b| b.canonical_key()).collect();
        prop_assert_eq!(serial_keys, parallel_keys);
    }

    /// Differential over RMW programs: atomics fork through the same
    /// refinement tree on both engines.
    #[test]
    fn parallel_matches_serial_on_rmws(seed in any::<u64>(), workers in 2usize..=8) {
        let prog = rmw_program_from_seed(seed);
        for policy in [Policy::tso(), Policy::weak()] {
            let serial = enumerate(&prog, &policy, &quick_config()).unwrap();
            let parallel = enumerate_parallel(&prog, &policy, &EnumConfig {
                parallelism: workers,
                ..quick_config()
            }).unwrap();
            prop_assert_eq!(&serial.outcomes, &parallel.outcomes);
            prop_assert_eq!(serial.stats.distinct_executions, parallel.stats.distinct_executions);
        }
    }

    /// Differential: the prune-before-expand engine yields exactly the
    /// serial oracle's outcome set and distinct-execution count on random
    /// programs, across the whole model chain (± speculation). Dominance
    /// pruning, symmetry reduction and copy-on-write forks must be
    /// invisible in the behaviour set.
    #[test]
    fn pruned_matches_serial_differentially(
        seed in any::<u64>(),
        branchy in any::<bool>(),
    ) {
        let prog = program_from_seed(seed, branchy);
        for policy in [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
            Policy::weak(),
            Policy::weak().with_alias_speculation(true),
        ] {
            let serial = enumerate(&prog, &policy, &quick_config()).unwrap();
            let pruned = enumerate_pruned(&prog, &policy, &quick_config()).unwrap();
            prop_assert_eq!(
                &serial.outcomes, &pruned.outcomes,
                "outcome sets differ under {}", policy.name()
            );
            prop_assert_eq!(
                serial.stats.distinct_executions, pruned.stats.distinct_executions,
                "execution counts differ under {}", policy.name()
            );
        }
    }

    /// Differential, with executions kept: the pruned engine keeps one
    /// representative per distinct behaviour — exactly the serial
    /// engine's deduplicated canonical-key set.
    #[test]
    fn pruned_kept_executions_equal_serials(seed in any::<u64>(), branchy in any::<bool>()) {
        let prog = program_from_seed(seed, branchy);
        let config = EnumConfig::default();
        let serial = enumerate(&prog, &Policy::weak(), &config).unwrap();
        let pruned = enumerate_pruned(&prog, &Policy::weak(), &config).unwrap();
        let mut serial_keys: Vec<Vec<u8>> =
            serial.executions.iter().map(|b| b.canonical_key()).collect();
        serial_keys.sort();
        serial_keys.dedup();
        let mut pruned_keys: Vec<Vec<u8>> =
            pruned.executions.iter().map(|b| b.canonical_key()).collect();
        pruned_keys.sort();
        prop_assert_eq!(serial_keys, pruned_keys);
    }

    /// Differential over RMW programs: single-node atomics prune through
    /// the same refinement tree on both engines.
    #[test]
    fn pruned_matches_serial_on_rmws(seed in any::<u64>()) {
        let prog = rmw_program_from_seed(seed);
        for policy in [Policy::tso(), Policy::weak()] {
            let serial = enumerate(&prog, &policy, &quick_config()).unwrap();
            let pruned = enumerate_pruned(&prog, &policy, &quick_config()).unwrap();
            prop_assert_eq!(&serial.outcomes, &pruned.outcomes);
            prop_assert_eq!(serial.stats.distinct_executions, pruned.stats.distinct_executions);
        }
    }

    /// Every `Robust` verdict of the static delay-set certifier matches
    /// true behaviour-set equality against SC — the proptest face of the
    /// zero-unsound-claims contract.
    #[test]
    fn robust_verdicts_match_behaviour_equality(seed in any::<u64>(), branchy in any::<bool>()) {
        use samm::analyze::{analyze_static, StaticVerdict};
        let prog = program_from_seed(seed, branchy);
        for policy in [Policy::tso(), Policy::pso(), Policy::weak()] {
            let weak = enumerate_pruned(&prog, &policy, &quick_config()).unwrap().outcomes;
            let sc = enumerate_pruned(&prog, &Policy::sequential_consistency(), &quick_config())
                .unwrap().outcomes;
            match analyze_static(&prog, &policy) {
                StaticVerdict::Robust(cert) => {
                    prop_assert!(cert.check(&prog, &policy),
                                 "certificate fails its own check under {}", policy.name());
                    prop_assert_eq!(
                        &weak, &sc,
                        "unsound robust claim under {}", policy.name()
                    );
                }
                StaticVerdict::CycleFound(cycle) => {
                    prop_assert!(cycle.check(&prog, &policy),
                                 "reported cycle fails its own check under {}", policy.name());
                }
                StaticVerdict::Unknown(_) => {}
            }
        }
    }

    /// Every critical cycle the dynamic layer confirms is realizable:
    /// its witness outcome lies in outcomes(M) ∖ outcomes(SC), and a
    /// `NotRobust` verdict never fires on behaviour-equal pairs.
    #[test]
    fn confirmed_cycles_are_realizable(seed in any::<u64>(), branchy in any::<bool>()) {
        use samm::analyze::{analyze_robustness, Robustness};
        let prog = program_from_seed(seed, branchy);
        for policy in [Policy::tso(), Policy::weak()] {
            let weak = enumerate_pruned(&prog, &policy, &quick_config()).unwrap().outcomes;
            let sc = enumerate_pruned(&prog, &Policy::sequential_consistency(), &quick_config())
                .unwrap().outcomes;
            match analyze_robustness(&prog, &policy, &quick_config()).unwrap() {
                Robustness::Robust(_) => {
                    prop_assert_eq!(&weak, &sc,
                                    "unsound dynamic robust claim under {}", policy.name());
                }
                Robustness::NotRobust { cycle, witness } => {
                    prop_assert!(cycle.check(&prog, &policy));
                    prop_assert!(weak.contains(&witness) && !sc.contains(&witness),
                                 "witness {} not in the weak-minus-SC difference under {}",
                                 witness, policy.name());
                }
                Robustness::Unknown(_) => {}
            }
        }
    }

    /// The coherence simulator always satisfies Store Atomicity and SC.
    #[test]
    fn coherence_runs_are_store_atomic(seed in any::<u64>(), schedule in any::<u64>()) {
        use samm::coherence::{check_trace, CoherentSystem, SystemConfig};
        let prog = program_from_seed(seed, false);
        let run = CoherentSystem::new(&prog, SystemConfig {
            seed: schedule,
            ..SystemConfig::default()
        }).run().unwrap();
        let report = check_trace(&run.trace, |a| prog.initial_value(a));
        prop_assert!(report.consistent);
        let sc = oper::enumerate_sc(&prog, 2_000_000).unwrap();
        prop_assert!(sc.contains(&run.outcome));
    }
}
