//! Full-scale differential fortress: the prune-before-expand engine vs
//! the untouched serial oracle.
//!
//! Two layers:
//!
//! 1. **Catalog sweep** — every entry of the litmus catalog under every
//!    model of the chain (± speculation), asserting behaviour-set
//!    equality: identical outcome *sets* (not just counts) and identical
//!    distinct-execution counts.
//! 2. **Random corpus** — a seeded corpus of generated programs across
//!    several generator shapes (branchy, fence-heavy, RMW-mixed),
//!    sweeping the model chain on each. The corpus size defaults to 100
//!    programs and is raised in CI via `SAMM_DIFF_CORPUS=500`; the seed
//!    is fixed so failures reproduce byte-for-byte.
//!
//! These are the acceptance tests for the pruned engine's soundness
//! claims (dominance pruning, symmetry reduction, copy-on-write forks):
//! each pruning rule must be invisible in the behaviour set.

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::core::pruned::enumerate_pruned;
use samm::litmus::rand_prog::{random_program, RandConfig};
use samm::litmus::{catalog, ModelSel};

use rand::prelude::*;

const MODELS: [ModelSel; 5] = [
    ModelSel::Sc,
    ModelSel::Tso,
    ModelSel::Pso,
    ModelSel::Weak,
    ModelSel::WeakSpec,
];

fn fresh_config() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

fn assert_engines_agree(program: &samm::core::instr::Program, policy: &Policy, label: &str) {
    let config = fresh_config();
    let serial = enumerate(program, policy, &config).expect("serial oracle succeeds");
    let pruned = enumerate_pruned(program, policy, &config).expect("pruned engine succeeds");
    assert_eq!(
        serial.outcomes, pruned.outcomes,
        "{label}: outcome sets differ"
    );
    assert_eq!(
        serial.stats.distinct_executions, pruned.stats.distinct_executions,
        "{label}: distinct-execution counts differ"
    );
}

/// Layer 1: the whole catalog under the whole model chain.
#[test]
fn pruned_matches_serial_on_full_catalog() {
    for entry in catalog::all() {
        for model in MODELS {
            assert_engines_agree(
                &entry.test.program,
                &model.policy(),
                &format!("{} under {}", entry.test.name, model.name()),
            );
        }
    }
}

/// Corpus size: `SAMM_DIFF_CORPUS` (CI sets 500), default 100.
fn corpus_size() -> usize {
    std::env::var("SAMM_DIFF_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// The generator shapes the corpus cycles through; together they cover
/// plain racy programs, speculation-relevant branches, fence-heavy
/// programs and single-node atomics.
fn shapes() -> [RandConfig; 4] {
    let base = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.15,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: 0.0,
        rmw_prob: 0.0,
    };
    [
        base.clone(),
        RandConfig {
            branch_prob: 0.3,
            ..base.clone()
        },
        RandConfig {
            fence_prob: 0.5,
            ..base.clone()
        },
        RandConfig {
            rmw_prob: 0.35,
            ..base
        },
    ]
}

/// Layer 2: the seeded random corpus. Seed 0xSAMM is fixed; program `i`
/// of shape `s` is fully determined by `(i, s)`, so any failure message
/// pinpoints a reproducible program.
#[test]
fn pruned_matches_serial_on_seeded_corpus() {
    let shapes = shapes();
    let n = corpus_size();
    for i in 0..n {
        let shape = i % shapes.len();
        let mut rng = StdRng::seed_from_u64(0x5A44_1100 ^ (i as u64));
        let program = random_program(&mut rng, &shapes[shape]);
        for model in MODELS {
            assert_engines_agree(
                &program,
                &model.policy(),
                &format!("corpus program {i} (shape {shape}) under {}", model.name()),
            );
        }
    }
}
