//! Differential validation of `samm-analyze` against the enumerators.
//!
//! The analyzer never enumerates, so every claim it makes is checked here
//! against exhaustive enumeration ground truth:
//!
//! * an SC-equivalence **certificate** under model M must mean the outcome
//!   set under M equals the SC outcome set — checked over the entire
//!   catalog under both the serial and the work-stealing engine, and over
//!   a random program corpus (no false certificates, by sweep);
//! * a **race-free** report on a straight-line program must agree with the
//!   dynamic well-synchronized discipline of `core::sync`, and implies a
//!   DRF certificate under every shipped model;
//! * every reported **read/write race** on the exact fragment
//!   (straight-line, static addresses, no RMWs) must be *realizable*: the
//!   racing load really sees more than one eligible source in some
//!   enumerated behaviour, and every write/write race really occurs in
//!   both coherence orders across SC executions.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::prelude::*;

use samm::analyze::{certify, find_races, harness, RaceKind};
use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::ids::ThreadId;
use samm::core::parallel::enumerate_parallel;
use samm::core::policy::Policy;
use samm::core::sync::check_well_synchronized;
use samm::litmus::catalog;
use samm::litmus::rand_prog::{random_program, RandConfig};

fn chain() -> [Policy; 4] {
    [
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::pso(),
        Policy::weak(),
    ]
}

fn fast() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

/// A certificate under any model must reproduce the SC outcome set —
/// checked for every catalog entry under every shipped model, with both
/// engines. Conversely, whenever the outcome sets *differ*, the analyzer
/// must have declined: a full no-false-certificate sweep.
#[test]
fn catalog_certificates_match_enumeration_exactly() {
    let serial_config = fast();
    let parallel_config = EnumConfig {
        parallelism: 4,
        ..fast()
    };
    let mut certified = 0usize;
    for entry in catalog::all() {
        let program = &entry.test.program;
        let sc = enumerate(program, &Policy::sequential_consistency(), &serial_config)
            .expect("SC enumeration succeeds")
            .outcomes;
        for policy in chain() {
            let outcomes = enumerate(program, &policy, &serial_config)
                .expect("enumeration succeeds")
                .outcomes;
            match certify(program, &policy) {
                Some(cert) => {
                    certified += 1;
                    assert!(
                        cert.check(program, &policy),
                        "{} under {}: certificate fails its own check",
                        entry.test.name,
                        policy.name()
                    );
                    assert_eq!(
                        outcomes,
                        sc,
                        "{} under {}: FALSE CERTIFICATE — outcome sets differ",
                        entry.test.name,
                        policy.name()
                    );
                    let par = enumerate_parallel(program, &policy, &parallel_config)
                        .expect("parallel enumeration succeeds")
                        .outcomes;
                    assert_eq!(
                        par,
                        sc,
                        "{} under {}: parallel engine disagrees with certificate",
                        entry.test.name,
                        policy.name()
                    );
                }
                None => {
                    // Declining is always sound; nothing to check. But the
                    // divergent cases MUST land here.
                    if outcomes != sc {
                        // e.g. SB/fig10 under weak models — reaching this
                        // arm is the expected behaviour.
                    }
                }
            }
        }
    }
    assert!(
        certified >= 30,
        "only {certified} certified (entry, model) pairs — the sweep lost its teeth"
    );
}

/// At least one catalog program must *diverge* between SC and a weak
/// model while the analyzer reports races and declines the certificate —
/// otherwise the no-false-certificate sweep above is vacuous.
#[test]
fn racy_catalog_programs_genuinely_diverge_and_are_declined() {
    let config = fast();
    let mut diverged = 0usize;
    for (entry, policy) in [
        (catalog::sb(), Policy::weak()),
        (catalog::fig10(), Policy::tso()),
    ] {
        let program = &entry.test.program;
        let sc = enumerate(program, &Policy::sequential_consistency(), &config)
            .unwrap()
            .outcomes;
        let weak = enumerate(program, &policy, &config).unwrap().outcomes;
        assert_ne!(
            sc,
            weak,
            "{} under {} no longer diverges from SC",
            entry.test.name,
            policy.name()
        );
        assert!(
            certify(program, &policy).is_none(),
            "{} under {}: certificate issued for a divergent program",
            entry.test.name,
            policy.name()
        );
        assert!(
            !find_races(program, &policy).races.is_empty(),
            "{}: divergence without a reported race",
            entry.test.name
        );
        diverged += 1;
    }
    assert_eq!(diverged, 2);
}

/// Random-corpus sweep of the certifier: fence-heavy straight-line
/// programs produce plenty of certificates, and each one must reproduce
/// the SC outcome set under both engines.
#[test]
fn random_corpus_certificates_match_enumeration() {
    let gen_config = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.35,
        store_prob: 0.5,
        data_dep_prob: 0.3,
        branch_prob: 0.0,
        rmw_prob: 0.1,
    };
    let serial_config = fast();
    let parallel_config = EnumConfig {
        parallelism: 4,
        ..fast()
    };
    let mut rng = StdRng::seed_from_u64(0x5a33);
    let mut certified = 0usize;
    for _ in 0..40 {
        let program = random_program(&mut rng, &gen_config);
        let sc = enumerate(&program, &Policy::sequential_consistency(), &serial_config)
            .expect("SC enumeration succeeds")
            .outcomes;
        for policy in chain() {
            if !harness::checked_certifier(&program, &policy) {
                continue;
            }
            certified += 1;
            let serial = enumerate(&program, &policy, &serial_config)
                .expect("enumeration succeeds")
                .outcomes;
            assert_eq!(
                serial,
                sc,
                "FALSE CERTIFICATE under {} for:\n{program:#?}",
                policy.name()
            );
            let parallel = enumerate_parallel(&program, &policy, &parallel_config)
                .expect("parallel enumeration succeeds")
                .outcomes;
            assert_eq!(parallel, sc, "parallel engine disagrees");
        }
    }
    assert!(
        certified >= 40,
        "only {certified} certified cases across the corpus — raise fence_prob"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Branchy programs included: whenever the certifier says yes, the
    /// outcome sets must coincide. (Branches mostly defeat the
    /// total-order certificate but exercise the DRF path.)
    #[test]
    fn prop_certificates_never_lie(seed in 0u64..1_000_000, branchy in prop::bool::ANY) {
        let gen_config = RandConfig {
            threads: 2,
            ops_per_thread: 3,
            locations: 3,
            fence_prob: 0.25,
            store_prob: 0.5,
            data_dep_prob: 0.3,
            branch_prob: if branchy { 0.3 } else { 0.0 },
            rmw_prob: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_program(&mut rng, &gen_config);
        let config = fast();
        let sc = enumerate(&program, &Policy::sequential_consistency(), &config)
            .expect("SC enumeration succeeds")
            .outcomes;
        for policy in chain() {
            if harness::checked_certifier(&program, &policy) {
                let outcomes = enumerate(&program, &policy, &config)
                    .expect("enumeration succeeds")
                    .outcomes;
                prop_assert_eq!(
                    &outcomes, &sc,
                    "FALSE CERTIFICATE under {} for:\n{:#?}", policy.name(), program
                );
            }
        }
    }

    /// Static race freedom implies the dynamic well-synchronized
    /// discipline (with an empty synchronization set) and a DRF/total
    /// certificate under every shipped model; static races on the exact
    /// fragment (straight-line, plain, static addresses) are realizable.
    #[test]
    fn prop_races_agree_with_dynamic_ground_truth(seed in 0u64..1_000_000) {
        let gen_config = RandConfig {
            threads: 2,
            ops_per_thread: 3,
            locations: 4,
            fence_prob: 0.15,
            store_prob: 0.5,
            data_dep_prob: 0.25,
            branch_prob: 0.0,
            rmw_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_program(&mut rng, &gen_config);
        let config = fast();
        let policy = Policy::weak();
        let report = find_races(&program, &policy);
        let sync = check_well_synchronized(&program, &policy, &config, &BTreeSet::new())
            .expect("sync check succeeds");

        // Soundness: dynamically racy loads must be statically reported.
        for &(thread, issue) in &sync.racy_loads {
            prop_assert!(
                report.races.iter().any(|r| [&r.first, &r.second].iter().any(
                    |a| a.thread == thread && a.issue_index == issue
                )),
                "dynamic racy load ({thread}, {issue}) missing from static report\n{program:#?}"
            );
        }

        // Realizability: on this exact fragment every static read/write
        // race's load really observes >1 candidate in some behaviour.
        for race in &report.races {
            if race.kind != RaceKind::ReadWrite {
                continue;
            }
            let load = if race.first.writes() { &race.second } else { &race.first };
            prop_assert!(
                sync.racy_loads.contains(&(load.thread, load.issue_index)),
                "static race not realized dynamically: {}\n{program:#?}",
                race.witness()
            );
        }

        if report.is_race_free() {
            prop_assert!(sync.is_well_synchronized());
            for policy in chain() {
                prop_assert!(
                    certify(&program, &policy).is_some(),
                    "race-free program declined under {}\n{program:#?}",
                    policy.name()
                );
            }
        }
    }
}

/// Write/write races are realizable too: the racing stores have no fixed
/// order across SC executions. Store Atomicity only orders conflicting
/// stores when a load forces it, so the dynamic reading of "no guaranteed
/// happens-before" is that neither direction holds in *every* execution —
/// either both orders occur, or some execution leaves the pair unordered.
/// (Plain `#[test]` with a fixed sweep — needs `keep_executions`.)
#[test]
fn write_write_races_have_no_fixed_order() {
    let gen_config = RandConfig {
        threads: 2,
        ops_per_thread: 3,
        locations: 2,
        fence_prob: 0.1,
        store_prob: 0.8,
        data_dep_prob: 0.0,
        branch_prob: 0.0,
        rmw_prob: 0.0,
    };
    let config = EnumConfig {
        keep_executions: true,
        ..EnumConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0x7177);
    let mut checked = 0usize;
    for _ in 0..12 {
        let program = random_program(&mut rng, &gen_config);
        let report = find_races(&program, &Policy::sequential_consistency());
        let result = enumerate(&program, &Policy::sequential_consistency(), &config)
            .expect("enumeration succeeds");
        for race in &report.races {
            if race.kind != RaceKind::WriteWrite {
                continue;
            }
            let (mut always_ab, mut always_ba) = (true, true);
            assert!(!result.executions.is_empty());
            for behavior in &result.executions {
                let graph = behavior.graph();
                let find = |thread: usize, issue: u32| {
                    graph
                        .iter()
                        .find(|(_, n)| {
                            n.thread() == ThreadId::new(thread) && n.index_in_thread() == issue
                        })
                        .map(|(id, _)| id)
                        .expect("racing store present in every execution")
                };
                let a = find(race.first.thread, race.first.issue_index);
                let b = find(race.second.thread, race.second.issue_index);
                always_ab &= graph.precedes(a, b);
                always_ba &= graph.precedes(b, a);
            }
            assert!(
                !always_ab && !always_ba,
                "write/write race has a fixed dynamic order: {}\n{program:#?}",
                race.witness()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 5,
        "only {checked} write/write races swept — raise store_prob"
    );
}
