//! Property-based tests of the telemetry histogram: merging per-thread
//! snapshots is order-independent and exactly equals recording the
//! combined stream, and every quantile stays within the documented
//! relative-error bound of the exact sample quantile.

use proptest::prelude::*;

use samm::core::telemetry::{Histogram, HistogramSnapshot};

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Nearest-rank percentile on a sorted slice — the exact oracle.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn histogram_merge_is_order_independent(
        parts in prop::collection::vec(
            prop::collection::vec(0u64..(1 << 42), 0..200),
            1..6,
        ),
        permutation_seed in 0usize..720,
    ) {
        let snaps: Vec<HistogramSnapshot> =
            parts.iter().map(|p| record_all(p)).collect();

        // Merge in index order...
        let mut in_order = HistogramSnapshot::default();
        for snap in &snaps {
            in_order.merge(snap);
        }
        // ...and in a permuted order derived from the seed.
        let mut indices: Vec<usize> = (0..snaps.len()).collect();
        let mut permuted = HistogramSnapshot::default();
        let mut s = permutation_seed;
        while !indices.is_empty() {
            let pick = s % indices.len();
            s = s / 7 + 13;
            permuted.merge(&snaps[indices.swap_remove(pick)]);
        }
        prop_assert_eq!(&in_order, &permuted);

        // Merging per-part snapshots equals one histogram fed the
        // concatenated stream — the claim that makes per-thread
        // recording sound.
        let combined: Vec<u64> = parts.concat();
        prop_assert_eq!(&in_order, &record_all(&combined));
    }

    #[test]
    fn quantiles_stay_within_the_documented_error_bound(
        values in prop::collection::vec(0u64..(1 << 42), 1..500),
        qs_millis in prop::collection::vec(0u64..1000, 1..8),
    ) {
        let snap = record_all(&values);
        let mut values = values;
        values.sort_unstable();
        for q in qs_millis.into_iter().map(|m| m as f64 / 1000.0) {
            let exact = exact_percentile(&values, q);
            let approx = snap.quantile(q);
            // The estimate is the midpoint of the bucket holding the
            // rank-th sample; buckets are at most RELATIVE_ERROR of
            // their lower bound wide (exact below 16, hence the +1).
            let bound = exact as f64 * Histogram::RELATIVE_ERROR + 1.0;
            prop_assert!(
                (approx as f64 - exact as f64).abs() <= bound,
                "q={} exact={} approx={} bound={}", q, exact, approx, bound
            );
        }
        // The extremes are exact.
        prop_assert_eq!(snap.quantile(1.0), *values.last().unwrap());
        prop_assert_eq!(snap.max, *values.last().unwrap());
        let total: u64 = values.iter().sum();
        prop_assert_eq!(snap.sum, total);
        prop_assert_eq!(snap.count, values.len() as u64);
    }
}
