//! Operational/axiomatic correspondence: the graph framework's outcome
//! sets must coincide exactly with the operational reference machines —
//! interleaving SC and store-buffer TSO/PSO — on the catalog and on a
//! corpus of random programs.
//!
//! This is the strongest internal evidence that the Store Atomicity
//! enumeration procedure (paper section 4) is correct: two completely
//! independent implementations of each model agree on every program.

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::litmus::catalog;
use samm::litmus::rand_prog::{corpus, RandConfig};
use samm::oper;

const STATE_LIMIT: usize = 2_000_000;

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn check_program(program: &samm::core::instr::Program, label: &str) {
    let graph_sc = enumerate(program, &Policy::sequential_consistency(), &config())
        .unwrap_or_else(|e| panic!("{label}: graph SC failed: {e}"))
        .outcomes;
    let oper_sc = oper::enumerate_sc(program, STATE_LIMIT)
        .unwrap_or_else(|e| panic!("{label}: oper SC failed: {e}"));
    assert_eq!(graph_sc, oper_sc, "{label}: SC outcome sets differ");

    let graph_tso = enumerate(program, &Policy::tso(), &config())
        .unwrap_or_else(|e| panic!("{label}: graph TSO failed: {e}"))
        .outcomes;
    let oper_tso = oper::enumerate_tso(program, STATE_LIMIT)
        .unwrap_or_else(|e| panic!("{label}: oper TSO failed: {e}"));
    assert_eq!(graph_tso, oper_tso, "{label}: TSO outcome sets differ");

    let graph_pso = enumerate(program, &Policy::pso(), &config())
        .unwrap_or_else(|e| panic!("{label}: graph PSO failed: {e}"))
        .outcomes;
    let oper_pso = oper::enumerate_pso(program, STATE_LIMIT)
        .unwrap_or_else(|e| panic!("{label}: oper PSO failed: {e}"));
    assert_eq!(graph_pso, oper_pso, "{label}: PSO outcome sets differ");
}

#[test]
fn catalog_programs_agree_with_operational_models() {
    for entry in catalog::all() {
        check_program(&entry.test.program, &entry.test.name);
    }
}

/// Complete small-world correspondence: on EVERY program of the 2×2
/// synthesis family (256 programs), the graph framework equals the
/// operational machines for SC, TSO and PSO. This is exhaustive over the
/// family, not sampled.
#[test]
fn synthesis_family_agrees_exhaustively() {
    use samm::litmus::synthesis::{programs, SynthConfig};
    for (i, prog) in programs(&SynthConfig::default()).enumerate() {
        check_program(&prog, &format!("synth #{i}"));
    }
}

#[test]
fn random_two_thread_programs_agree() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.2,
        store_prob: 0.5,
        data_dep_prob: 0.25,
        branch_prob: 0.0,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0xA11CE, 40, &cfg).iter().enumerate() {
        check_program(prog, &format!("random-2t #{i}"));
    }
}

#[test]
fn random_three_thread_programs_agree() {
    let cfg = RandConfig {
        threads: 3,
        ops_per_thread: 3,
        locations: 2,
        fence_prob: 0.15,
        store_prob: 0.5,
        data_dep_prob: 0.2,
        branch_prob: 0.0,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0xB0B, 15, &cfg).iter().enumerate() {
        check_program(prog, &format!("random-3t #{i}"));
    }
}

#[test]
fn random_programs_with_rmws_agree() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.1,
        store_prob: 0.5,
        data_dep_prob: 0.2,
        branch_prob: 0.1,
        rmw_prob: 0.35,
    };
    for (i, prog) in corpus(0xA70, 25, &cfg).iter().enumerate() {
        check_program(prog, &format!("random-rmw #{i}"));
    }
}

#[test]
fn random_programs_with_branches_agree() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.1,
        store_prob: 0.5,
        data_dep_prob: 0.3,
        branch_prob: 0.35,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0xCAFE, 25, &cfg).iter().enumerate() {
        check_program(prog, &format!("random-branchy #{i}"));
    }
}
