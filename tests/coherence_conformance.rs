//! Paper section 4.2, executable: "We can view a cache coherence protocol
//! as a conservative approximation to Store Atomicity."
//!
//! Every run of the MSI directory simulator — across many randomized
//! message/schedule interleavings — must (a) yield a trace whose execution
//! graph closes under the Store Atomicity rules without a cycle, and
//! (b) produce an outcome that interleaving SC also produces (SC cores +
//! coherence = SC).

use samm::coherence::{check_trace, CoherentSystem, SystemConfig};
use samm::litmus::catalog;
use samm::litmus::rand_prog::{corpus, RandConfig};
use samm::oper;

const SEEDS: u64 = 25;

fn check_program(program: &samm::core::instr::Program, label: &str) {
    let sc = oper::enumerate_sc(program, 2_000_000)
        .unwrap_or_else(|e| panic!("{label}: SC enumeration failed: {e}"));
    for seed in 0..SEEDS {
        let run = CoherentSystem::new(
            program,
            SystemConfig {
                seed,
                ..SystemConfig::default()
            },
        )
        .run()
        .unwrap_or_else(|e| panic!("{label}: seed {seed} failed: {e}"));

        // (a) Store Atomicity conformance of the observed trace.
        let report = check_trace(&run.trace, |a| program.initial_value(a));
        assert!(
            report.consistent,
            "{label}: seed {seed} produced a Store Atomicity violation: {:?}",
            report.violation
        );

        // (b) The outcome is sequentially consistent.
        assert!(
            sc.contains(&run.outcome),
            "{label}: seed {seed} produced a non-SC outcome {}",
            run.outcome
        );
    }
}

#[test]
fn catalog_programs_run_coherently() {
    for entry in catalog::all() {
        check_program(&entry.test.program, &entry.test.name);
    }
}

#[test]
fn random_programs_run_coherently() {
    let cfg = RandConfig {
        threads: 3,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.1,
        store_prob: 0.5,
        data_dep_prob: 0.2,
        branch_prob: 0.15,
        rmw_prob: 0.0,
    };
    for (i, prog) in corpus(0xD1CE, 20, &cfg).iter().enumerate() {
        check_program(prog, &format!("random #{i}"));
    }
}

#[test]
fn random_rmw_programs_run_coherently() {
    let cfg = RandConfig {
        threads: 2,
        ops_per_thread: 4,
        locations: 2,
        fence_prob: 0.05,
        store_prob: 0.5,
        data_dep_prob: 0.2,
        branch_prob: 0.1,
        rmw_prob: 0.4,
    };
    for (i, prog) in corpus(0xFAA, 15, &cfg).iter().enumerate() {
        check_program(prog, &format!("random-rmw #{i}"));
    }
}

#[test]
fn contended_single_line_is_coherent() {
    // Heavy contention on one address stresses ownership migration,
    // forwarding and invalidation.
    use samm::core::ids::Reg;
    use samm::core::instr::{Instr, Program, ThreadProgram};
    let thread = |base: u64| {
        ThreadProgram::new(vec![
            Instr::Store {
                addr: 0u64.into(),
                val: base.into(),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: 0u64.into(),
            },
            Instr::Store {
                addr: 0u64.into(),
                val: (base + 1).into(),
            },
            Instr::Load {
                dst: Reg::new(1),
                addr: 0u64.into(),
            },
        ])
    };
    let prog = Program::new(vec![thread(10), thread(20), thread(30)]);
    check_program(&prog, "contended");
}

#[test]
fn protocol_stats_reflect_sharing_patterns() {
    use samm::core::ids::Reg;
    use samm::core::instr::{Instr, Program, ThreadProgram};
    // Many readers of one location: misses once each, no invalidations
    // until the writer arrives.
    let reader = ThreadProgram::new(vec![Instr::Load {
        dst: Reg::new(0),
        addr: 0u64.into(),
    }]);
    let prog = Program::new(vec![reader.clone(), reader.clone(), reader]);
    let run = CoherentSystem::new(&prog, SystemConfig::default())
        .run()
        .unwrap();
    assert_eq!(
        run.stats.invalidations, 0,
        "read-only sharing never invalidates"
    );
    assert_eq!(run.stats.misses, 3);
}
