//! File-driven litmus tests: every `.litmus` file in `litmus-tests/` is
//! parsed, compiled and enumerated.
//!
//! Corpus convention: `forbid:` conditions must be unobservable under the
//! *weak* model (and therefore under every store-atomic model); `allow:`
//! conditions must be observable under *SC* (and therefore under every
//! model).

use std::fs;
use std::path::PathBuf;

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::policy::Policy;
use samm::litmus::{parser, CondKind};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("litmus-tests");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("litmus-tests/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "litmus"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty() {
    assert!(corpus_files().len() >= 8);
}

#[test]
fn every_file_parses_compiles_and_meets_its_conditions() {
    let config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let source = fs::read_to_string(&path).expect("file readable");
        let test = parser::parse(&source).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let compiled = test
            .compile()
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        assert!(!compiled.conditions.is_empty(), "{name}: no conditions");

        let weak = enumerate(&compiled.program, &Policy::weak(), &config)
            .unwrap_or_else(|e| panic!("{name}: weak enumeration: {e}"))
            .outcomes;
        let sc = enumerate(
            &compiled.program,
            &Policy::sequential_consistency(),
            &config,
        )
        .unwrap_or_else(|e| panic!("{name}: SC enumeration: {e}"))
        .outcomes;

        for cond in &compiled.conditions {
            match cond.kind {
                CondKind::Forbidden => {
                    assert!(
                        !cond.observable_in(&weak),
                        "{name}: `{}` must be forbidden under the weak model",
                        cond.text
                    );
                    assert!(
                        !cond.observable_in(&sc),
                        "{name}: `{}` must be forbidden under SC too",
                        cond.text
                    );
                }
                CondKind::Allowed => {
                    assert!(
                        cond.observable_in(&sc),
                        "{name}: `{}` must be observable under SC",
                        cond.text
                    );
                    assert!(
                        cond.observable_in(&weak),
                        "{name}: `{}` must be observable under the weak model",
                        cond.text
                    );
                }
            }
        }
    }
}

#[test]
fn every_file_round_trips_through_the_printer() {
    use samm::litmus::printer;
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let source = fs::read_to_string(&path).unwrap();
        let test = parser::parse(&source).unwrap();
        let printed = printer::print(&test).unwrap_or_else(|e| panic!("{name}: print: {e}"));
        let reparsed = parser::parse(&printed).unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
        assert_eq!(
            test, reparsed,
            "{name}: full AST (name, threads, init, conditions) must round-trip"
        );
        assert_eq!(
            test.compile().unwrap().program,
            reparsed.compile().unwrap().program,
            "{name}: compiled programs must coincide"
        );
    }
}

#[test]
fn builder_kitchen_sink_round_trips_through_the_printer() {
    // A programmatically built test exercising every symbolic instruction
    // variant and operand shape at once — paths an individual corpus file
    // may miss (pointer stores, all three RMWs, binops, jumps, halt,
    // address-valued condition clauses). Full AST equality.
    use samm::core::instr::BinOp;
    use samm::litmus::ast::SymOperand;
    use samm::litmus::{printer, LitmusBuilder};
    let builder = LitmusBuilder::new("kitchen-sink")
        .init("x", 7)
        .init_addr_of("p", "y")
        .thread("P0", |t| {
            t.store("x", 1)
                .fence()
                .store_addr_of("q", "x")
                .load("r0", "p")
                .load_via("r1", "r0")
                .store_via("r0", 9)
                .mov("r2", 3)
                .binop("r3", BinOp::Add, SymOperand::reg("r2"), SymOperand::Imm(4))
                .branch_nz("r3", "done")
                .store("y", 2)
                .label("done")
                .halt();
        })
        .thread("P1", |t| {
            t.cas("r0", "x", 7, 8)
                .swap("r1", "y", 5)
                .fetch_add("r2", "x", 1)
                .goto("end")
                .label("end");
        })
        .forbid(&[("P0", "r1", 0), ("P1", "r0", 7)])
        .allow_with_addr(&[("P1", "r2", 8)], ("P0", "r0", "y"));
    let test = builder.symbolic().clone();
    let printed = printer::print(&test).expect("printable");
    let reparsed =
        samm::litmus::parser::parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
    assert_eq!(
        test, reparsed,
        "kitchen-sink AST must round-trip:\n{printed}"
    );
}

#[test]
fn files_round_trip_through_the_explorer_pipeline() {
    // The same pipeline litmus_explorer uses: parse → compile → enumerate →
    // render DOT for one execution.
    use samm::core::dot::{render, DotOptions};
    let path = corpus_files()
        .into_iter()
        .find(|p| p.file_name().is_some_and(|n| n == "mp_fenced.litmus"))
        .expect("mp_fenced.litmus present");
    let compiled = parser::parse(&fs::read_to_string(path).unwrap())
        .unwrap()
        .compile()
        .unwrap();
    let result = enumerate(&compiled.program, &Policy::weak(), &EnumConfig::default()).unwrap();
    assert!(!result.executions.is_empty());
    let dot = render(&result.executions[0], &DotOptions::default());
    assert!(dot.contains("digraph"));
}
