//! Golden static-analysis regression: hand-checked race counts,
//! SC-equivalence certificate verdicts and delay-set robustness verdicts
//! for every `litmus-tests/` file and every catalog entry, across the
//! model chain. The companion of `golden_enumeration.rs` — any analyzer
//! change that shifts these verdicts must update this table deliberately.
//!
//! Regenerate with
//! `cargo test --release --test golden_races -- --ignored --nocapture`
//! and merge the printed rows back in (keeping the comments).
//!
//! How the table was verified by hand against `golden_enumeration.rs`:
//!
//! * a certificate under model M is only sound if M's outcome set equals
//!   SC's. Every `true` cell below corresponds to equal golden counts
//!   (e.g. fig3/fig7 under weak: 3,3 and 5,5 — same as SC), and every
//!   divergent golden row (`SB+swap` weak 4 ≠ SC 3, fig10 TSO 15 ≠ SC 7,
//!   fig5 weak 24 ≠ SC 19) is a `false` cell;
//! * the same soundness argument applies to the robustness column: every
//!   `"robust"` cell must be an equal-outcome-set row, and every
//!   divergent golden row must read `"cycle"` or `"unknown"` — this is
//!   re-checked exhaustively (not just on golden rows) by
//!   `robust_differential.rs`;
//! * `broken-incr` is certified under every model *despite* its races:
//!   each thread's load→store chain is data-dependent and same-address,
//!   so the guaranteed order is already total — SC-equivalence does not
//!   require race freedom (golden: 3,3 under all five models);
//! * races are conservative (inter-thread happens-before is
//!   over-approximated), so racy-but-working programs like `CAS-mutex`
//!   still report their competing RMW pair;
//! * fig8 reports one *more* race under weak models than under SC: its
//!   same-thread pointer accesses are Never-ordered by SC's table but
//!   not by the weak ones.

use std::fs;
use std::path::PathBuf;

use samm::analyze::{analyze_static, certify, find_races, StaticVerdict};
use samm::core::instr::Program;
use samm::core::policy::Policy;
use samm::litmus::{catalog, parser, CatalogEntry};

/// The model chain the table covers, strongest first.
fn models() -> [(&'static str, Policy); 4] {
    [
        ("sc", Policy::sequential_consistency()),
        ("tso", Policy::tso()),
        ("pso", Policy::pso()),
        ("weak", Policy::weak()),
    ]
}

/// One golden row: race counts, certificate presence and robustness
/// verdict name per model, in `[sc, tso, pso, weak]` order.
struct Golden {
    name: &'static str,
    races: [usize; 4],
    certified: [bool; 4],
    robust: [&'static str; 4],
}

const fn row(
    name: &'static str,
    races: [usize; 4],
    certified: [bool; 4],
    robust: [&'static str; 4],
) -> Golden {
    Golden {
        name,
        races,
        certified,
        robust,
    }
}

/// `litmus-tests/` corpus verdicts.
const GOLDEN_FILES: &[Golden] = &[
    // Competing CAS pair on the lock; the guarded accesses are
    // straight-line and totally ordered, so every model is SC-equivalent.
    row(
        "cas_mutex.litmus",
        [1, 1, 1, 1],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Two FAAs on one counter: an atomic race, but RMWs order totally.
    row(
        "faa_counter.litmus",
        [1, 1, 1, 1],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Four cross-thread read/write pairs on x and y; the reader-side
    // fences make each thread's memory order total under every model.
    row(
        "iriw_fenced.litmus",
        [4, 4, 4, 4],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Load-buffering with a data dependency: the dependency itself is the
    // guaranteed edge, no fences needed.
    row(
        "lb_data.litmus",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "mp_fenced.litmus",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Pointer publication: the published address is only known
    // dynamically, so both analyzers must refuse to certify.
    row(
        "pointer_publish.litmus",
        [3, 3, 3, 3],
        [false, false, false, false],
        ["unknown", "unknown", "unknown", "unknown"],
    ),
    row(
        "sb_fenced.litmus",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Lock handoff via swap: branches (spin loop) block both certificate
    // shapes.
    row(
        "swap_lock_handoff.litmus",
        [3, 3, 3, 3],
        [false, false, false, false],
        ["unknown", "unknown", "unknown", "unknown"],
    ),
];

/// Catalog verdicts (classic suite, atomics, paper figures).
const GOLDEN_CATALOG: &[Golden] = &[
    // Unfenced SB: the store→load pairs are unordered under every weak
    // model, and outcome sets genuinely diverge (golden: weak adds 0/0).
    row(
        "SB",
        [2, 2, 2, 2],
        [true, false, false, false],
        ["robust", "cycle", "cycle", "cycle"],
    ),
    row(
        "SB+fences",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // TSO keeps both store→store and load→load order, so MP is already
    // SC-equivalent there; PSO relaxes the stores and must enumerate.
    row(
        "MP",
        [2, 2, 2, 2],
        [true, true, false, false],
        ["robust", "robust", "cycle", "cycle"],
    ),
    row(
        "MP+fences",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Fenced MP plus thread-private scratch traffic: the scratch
    // store→load pair is a Bypass edge under TSO/PSO (declining TLO) and
    // the scratch stores float under PSO/weak, yet no critical cycle
    // survives the fences — the robustness layer certifies what the
    // DRF/TLO layer cannot.
    row(
        "MP+fences+scratch",
        [2, 2, 2, 2],
        [true, false, false, false],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "MP+wfence",
        [2, 2, 2, 2],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    row(
        "MP+rfence",
        [2, 2, 2, 2],
        [true, true, false, false],
        ["robust", "robust", "cycle", "cycle"],
    ),
    row(
        "LB",
        [2, 2, 2, 2],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    row(
        "LB+data",
        [2, 2, 2, 2],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "CoRR",
        [2, 2, 2, 2],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    row(
        "IRIW",
        [4, 4, 4, 4],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    row(
        "IRIW+fences",
        [4, 4, 4, 4],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "WRC",
        [3, 3, 3, 3],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    row(
        "WRC+fences",
        [3, 3, 3, 3],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "CAS-mutex",
        [1, 1, 1, 1],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "FAA-incr",
        [1, 1, 1, 1],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // Racy AND certified: the non-atomic increment diverges from no
    // model (load→store is data-dependent and same-address), it is just
    // wrong under all of them equally.
    row(
        "broken-incr",
        [3, 3, 3, 3],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    // The RMW halves make SB+swap's weak behaviour genuinely richer than
    // SC's (golden: 4 vs 3 outcomes) — certifying weak here would be a
    // false certificate, so this row is load-bearing.
    row(
        "SB+swap",
        [2, 2, 2, 2],
        [true, true, true, false],
        ["robust", "robust", "robust", "cycle"],
    ),
    // fig3 has a same-address store→load pair: SameAddr (guaranteed)
    // under weak, but Bypass (never guaranteed) under TSO/PSO — the
    // certifier declines the bypass models conservatively even though
    // their outcome sets match SC's.
    row(
        "fig3",
        [4, 4, 4, 4],
        [true, false, false, true],
        ["robust", "cycle", "cycle", "robust"],
    ),
    row(
        "fig4",
        [4, 4, 4, 4],
        [true, true, true, true],
        ["robust", "robust", "robust", "robust"],
    ),
    row(
        "fig5",
        [8, 8, 8, 8],
        [true, false, false, false],
        ["robust", "cycle", "cycle", "cycle"],
    ),
    row(
        "fig7",
        [5, 5, 5, 5],
        [true, false, false, true],
        ["robust", "cycle", "cycle", "robust"],
    ),
    // fig8 branches and loads through published pointers: no certificate
    // anywhere, and SC's stronger table orders one same-thread pair the
    // weak tables leave racy (10 vs 11).
    row(
        "fig8",
        [10, 11, 11, 11],
        [false, false, false, false],
        ["unknown", "unknown", "unknown", "unknown"],
    ),
    // The paper's TSO litmus: SC forbids what TSO allows (golden: 7 vs
    // 15 outcomes), so only the trivial SC row is certified.
    row(
        "fig10",
        [7, 7, 7, 7],
        [true, false, false, false],
        ["robust", "cycle", "cycle", "cycle"],
    ),
];

fn check(name: &str, program: &Program, golden: &Golden) {
    for (i, (model_name, policy)) in models().into_iter().enumerate() {
        let report = find_races(program, &policy);
        assert_eq!(
            report.races.len(),
            golden.races[i],
            "{name} under {model_name}: race count drifted\n{:#?}",
            report.races
        );
        let cert = certify(program, &policy);
        assert_eq!(
            cert.is_some(),
            golden.certified[i],
            "{name} under {model_name}: certificate verdict drifted"
        );
        if let Some(cert) = cert {
            assert!(
                cert.check(program, &policy),
                "{name} under {model_name}: emitted certificate fails its own check"
            );
        }
        let verdict = analyze_static(program, &policy);
        assert_eq!(
            verdict.name(),
            golden.robust[i],
            "{name} under {model_name}: robustness verdict drifted"
        );
        match &verdict {
            StaticVerdict::Robust(cert) => assert!(
                cert.check(program, &policy),
                "{name} under {model_name}: robustness certificate fails its own check"
            ),
            StaticVerdict::CycleFound(cycle) => assert!(
                cycle.check(program, &policy),
                "{name} under {model_name}: reported critical cycle fails its own check"
            ),
            StaticVerdict::Unknown(_) => {}
        }
    }
}

fn corpus_file(name: &str) -> Program {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("litmus-tests")
        .join(name);
    parser::parse(&fs::read_to_string(&path).expect("corpus file readable"))
        .expect("corpus file parses")
        .compile()
        .expect("corpus file compiles")
        .program
}

fn catalog_entry(name: &str) -> CatalogEntry {
    catalog::all()
        .into_iter()
        .find(|e| e.test.name == name)
        .unwrap_or_else(|| panic!("no catalog entry named {name}"))
}

#[test]
fn corpus_verdicts_match_golden() {
    for golden in GOLDEN_FILES {
        check(golden.name, &corpus_file(golden.name), golden);
    }
}

#[test]
fn catalog_verdicts_match_golden() {
    for golden in GOLDEN_CATALOG {
        check(
            golden.name,
            &catalog_entry(golden.name).test.program,
            golden,
        );
    }
}

#[test]
fn golden_tables_cover_the_whole_corpus_and_catalog() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("litmus-tests");
    let mut files: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".litmus"))
        .collect();
    files.sort();
    let mut table: Vec<&str> = GOLDEN_FILES.iter().map(|g| g.name).collect();
    table.sort_unstable();
    assert_eq!(files, table, "corpus files missing from the golden table");

    let mut entries: Vec<String> = catalog::all().into_iter().map(|e| e.test.name).collect();
    entries.sort();
    let mut table: Vec<&str> = GOLDEN_CATALOG.iter().map(|g| g.name).collect();
    table.sort_unstable();
    assert_eq!(
        entries, table,
        "catalog entries missing from the golden table"
    );
}

/// Prints the whole table in source form. Run with
/// `cargo test --release --test golden_races -- --ignored --nocapture`
/// and merge the rows back into the constants above (keep the comments).
#[test]
#[ignore = "generator for the GOLDEN tables"]
fn regenerate_golden_tables() {
    let print = |name: &str, program: &Program| {
        let mut races = Vec::new();
        let mut certified = Vec::new();
        let mut robust = Vec::new();
        for (_, policy) in models() {
            races.push(find_races(program, &policy).races.len().to_string());
            certified.push(certify(program, &policy).is_some().to_string());
            robust.push(format!("\"{}\"", analyze_static(program, &policy).name()));
        }
        println!(
            "    row(\"{name}\", [{}], [{}], [{}]),",
            races.join(", "),
            certified.join(", "),
            robust.join(", ")
        );
    };
    println!("GOLDEN_FILES:");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("litmus-tests");
    let mut files: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".litmus"))
        .collect();
    files.sort();
    for file in &files {
        print(file, &corpus_file(file));
    }
    println!("GOLDEN_CATALOG:");
    for entry in catalog::all() {
        print(&entry.test.name, &entry.test.program);
    }
}
