//! The paper's §8 programmer workflow as a regression test: enumeration
//! verifies a locking algorithm's specification, and *finds the bug* in
//! the unfenced variant under the weak model (loads speculate past the
//! acquire branch, Figure 1's free `Branch → Load` entry).

use samm::core::enumerate::{enumerate, EnumConfig};
use samm::core::outcome::Outcome;
use samm::litmus::{CompiledLitmus, LitmusBuilder, ModelSel};

fn lock_test(name: &str, acquire_fence: bool) -> CompiledLitmus {
    let body = move |t: &mut samm::litmus::builder::ThreadBuilder| {
        t.cas("r_acq", "lock", 0, 1).branch_nz("r_acq", "lost");
        if acquire_fence {
            t.fence();
        }
        t.load("r_old", "counter")
            .binop(
                "r_new",
                samm::core::instr::BinOp::Add,
                samm::litmus::ast::SymOperand::reg("r_old"),
                1.into(),
            )
            .store_reg("counter", "r_new")
            .fence()
            .store("lock", 0)
            .label("lost");
    };
    LitmusBuilder::new(name)
        .thread("P0", body)
        .thread("P1", body)
        .build()
        .expect("compiles")
}

fn lost_update(test: &CompiledLitmus, o: &Outcome) -> bool {
    let acq = |t: usize| o.reg(t, test.reg(t, "r_acq")).raw();
    let old = |t: usize| o.reg(t, test.reg(t, "r_old")).raw();
    acq(0) == 0 && acq(1) == 0 && old(0) == 0 && old(1) == 0
}

fn outcomes(test: &CompiledLitmus, model: ModelSel) -> samm::core::outcome::OutcomeSet {
    enumerate(
        &test.program,
        &model.policy(),
        &EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        },
    )
    .expect("enumeration succeeds")
    .outcomes
}

#[test]
fn fenced_lock_is_correct_under_every_model() {
    let fixed = lock_test("fenced", true);
    for model in ModelSel::ALL {
        let set = outcomes(&fixed, model);
        assert!(
            !set.any(|o| lost_update(&fixed, o)),
            "{}: fenced lock must exclude lost updates",
            model.name()
        );
    }
}

#[test]
fn unfenced_lock_is_broken_exactly_under_the_weak_models() {
    let naive = lock_test("naive", false);
    for model in ModelSel::ALL {
        let set = outcomes(&naive, model);
        let broken = set.any(|o| lost_update(&naive, o));
        let expect_broken = matches!(model, ModelSel::Weak | ModelSel::WeakSpec);
        assert_eq!(
            broken,
            expect_broken,
            "{}: unexpected verdict for the unfenced lock",
            model.name()
        );
    }
}

#[test]
fn lock_handoff_transfers_the_counter_value() {
    // When both threads eventually entered (one via hand-off), the second
    // holder observed counter = 1 under the fenced lock.
    let fixed = lock_test("fenced", true);
    for model in [ModelSel::Sc, ModelSel::Tso, ModelSel::Weak] {
        let set = outcomes(&fixed, model);
        let handoff_ok = !set.any(|o| {
            let acq = |t: usize| o.reg(t, fixed.reg(t, "r_acq")).raw();
            let old = |t: usize| o.reg(t, fixed.reg(t, "r_old")).raw();
            acq(0) == 0 && acq(1) == 0 && old(0) + old(1) != 1
        });
        assert!(handoff_ok, "{}: hand-off visibility", model.name());
    }
}
