//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small, fully deterministic) subset of the `rand`
//! 0.8 API that the workspace uses: seedable [`rngs::StdRng`], the
//! [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`, and
//! [`seq::SliceRandom::choose`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for test-input generation, though the
//! streams differ from upstream `StdRng` (ChaCha12). Nothing in the
//! workspace depends on upstream's exact streams, only on per-seed
//! determinism.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

/// One-stop imports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
