//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest 1.x that the workspace's
//! property tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`Just`](strategy::Just), `any::<T>()`, range and
//! tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::bool::ANY`, and string strategies from a small regex subset
//! (`[class]{m,n}`, `\PC{m,n}`, literals).
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test stream (seeded by test name) and there is **no shrinking** —
//! a failing case panics with the case number so it can be replayed.
//!
//! Failure persistence mirrors upstream's: a failing case is appended to
//! `<source file>.proptest-regressions` as `cc <test name> case=<n>`,
//! and every persisted case for a test is replayed *before* novel cases
//! are generated, so a once-found counterexample keeps guarding the
//! property after it is fixed. Because the input stream is deterministic
//! in `(test name, case index)`, the case index alone reconstructs the
//! full input. Upstream-format `cc <hex>` lines are tolerated and
//! ignored. Set `PROPTEST_NO_PERSIST=1` to disable writing (e.g. for
//! read-only checkouts in CI).

pub mod test_runner {
    /// Deterministic per-test random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream derived from the test name and case index, so every
        /// run of the suite sees the same inputs.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x9E37_79B9),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Run configuration (subset of upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Failure persistence: saving and replaying the case indices of failed
/// properties, upstream's `.proptest-regressions` workflow adapted to
/// this shim's deterministic streams.
pub mod persistence {
    use std::fs;
    use std::io::Write;
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// The regression file that guards `source_file` (a `file!()` path,
    /// relative to the crate's manifest directory).
    pub fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        Path::new(manifest_dir).join(format!("{source_file}.proptest-regressions"))
    }

    /// Case indices persisted for `test_name`, in file order. Lines that
    /// are comments, upstream hex seeds, or entries for other tests are
    /// skipped.
    pub fn load_cases(path: &Path, test_name: &str) -> Vec<u32> {
        let Ok(contents) = fs::read_to_string(path) else {
            return Vec::new();
        };
        contents
            .lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let (name, case) = rest.split_once(' ')?;
                if name != test_name {
                    return None;
                }
                case.trim().strip_prefix("case=")?.parse().ok()
            })
            .collect()
    }

    /// Appends a failing case for `test_name`, creating the file (with
    /// the upstream header) on first use. Already-persisted cases and
    /// write errors are silently skipped — persistence must never mask
    /// the original test failure.
    pub fn persist_case(path: &Path, test_name: &str, case: u32) {
        if std::env::var_os("PROPTEST_NO_PERSIST").is_some() {
            return;
        }
        let entry = format!("cc {test_name} case={case}");
        let existing = fs::read_to_string(path).unwrap_or_default();
        if existing.lines().any(|l| l.trim() == entry) {
            return;
        }
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| {
                if existing.is_empty() {
                    f.write_all(HEADER.as_bytes())?;
                }
                writeln!(f, "{entry}")
            });
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test inputs.
    ///
    /// Upstream proptest separates strategies from value trees (for
    /// shrinking); this shim generates final values directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u128)
                        .wrapping_sub(*self.start() as u128)
                        .wrapping_add(1);
                    // span == 0 only for the full-domain u128 range, which
                    // no integer type here can express; modulo is safe.
                    self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice between boxed alternatives (the [`prop_oneof!`](crate::prop_oneof)
    /// expansion).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of zero alternatives");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    // --- Regex-subset string strategies ---------------------------------

    /// One element of the supported pattern language, with its repeat
    /// bounds (a bare element repeats exactly once).
    #[derive(Debug, Clone)]
    enum Piece {
        /// A fixed character.
        Literal(char),
        /// A set of candidate characters.
        Class(Vec<char>),
    }

    /// Characters generated for `\PC` (any printable): printable ASCII
    /// plus a few multi-byte code points so parsers see non-ASCII input.
    fn printable_alphabet() -> Vec<char> {
        let mut v: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        v.extend(['é', 'Ω', '→', '中', '💡']);
        v
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut raw = Vec::new();
        for c in chars.by_ref() {
            if c == ']' {
                break;
            }
            raw.push(c);
        }
        // Expand `a-z` ranges; a `-` at either end is a literal dash.
        let mut out = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                for x in raw[i]..=raw[i + 2] {
                    out.push(x);
                }
                i += 3;
            } else {
                out.push(raw[i]);
                i += 1;
            }
        }
        out
    }

    fn parse_pattern(pattern: &str) -> Vec<(Piece, usize, usize)> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => Piece::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: complement of the Control category.
                        let tag = chars.next();
                        assert_eq!(tag, Some('C'), "only \\PC is supported");
                        Piece::Class(printable_alphabet())
                    }
                    Some(escaped) => Piece::Literal(escaped),
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                },
                c => Piece::Literal(c),
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut bounds = String::new();
                for b in chars.by_ref() {
                    if b == '}' {
                        break;
                    }
                    bounds.push(b);
                }
                let (lo, hi) = bounds
                    .split_once(',')
                    .unwrap_or((bounds.as_str(), bounds.as_str()));
                (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                )
            } else {
                (1, 1)
            };
            pieces.push((piece, lo, hi));
        }
        pieces
    }

    /// `&str` patterns are string strategies over a regex subset.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (piece, lo, hi) in parse_pattern(self) {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    match &piece {
                        Piece::Literal(c) => out.push(*c),
                        Piece::Class(set) => {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }

    // --- Collection strategies ------------------------------------------

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.size.clone()).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates collapse, so the final size
    /// may undershoot the drawn target (matching upstream's best-effort
    /// behaviour for small domains).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.size.clone()).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Collection strategy constructors (`prop::collection`).
    pub mod collection {
        use super::{BTreeSetStrategy, Strategy, VecStrategy};
        use std::ops::Range;

        /// A `Vec` of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(!size.is_empty(), "empty vec size range");
            VecStrategy { element, size }
        }

        /// A `BTreeSet` of `element` values targeting a size in `size`.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            assert!(!size.is_empty(), "empty btree_set size range");
            BTreeSetStrategy { element, size }
        }
    }

    /// Boolean strategies (`prop::bool`).
    pub mod bool {
        use super::super::test_runner::TestRng;
        use super::Strategy;

        /// Either boolean with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::collection::vec`,
/// `prop::bool::ANY`).
pub mod prop {
    pub use super::strategy::bool;
    pub use super::strategy::collection;
}

/// Declares property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let __proptest_regressions = $crate::persistence::regression_path(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
            );
            let __proptest_run_case = |case: u32| {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body,
                ))
            };
            // Persisted counterexamples run before any novel case.
            for case in
                $crate::persistence::load_cases(&__proptest_regressions, stringify!($name))
            {
                if let Err(e) = __proptest_run_case(case) {
                    eprintln!(
                        "persisted regression case {case} of `{}` failed \
                         (from {})",
                        stringify!($name),
                        __proptest_regressions.display(),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
            for case in 0..config.cases {
                if let Err(e) = __proptest_run_case(case) {
                    $crate::persistence::persist_case(
                        &__proptest_regressions,
                        stringify!($name),
                        case,
                    );
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed; persisted to {}",
                        config.cases,
                        stringify!($name),
                        __proptest_regressions.display(),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics on failure; this shim
/// has no shrinking, so it behaves like `assert!` with case reporting).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($s) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Arbitrary, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..500 {
            let (a, b) = (3usize..9, 10u64..20).generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::deterministic("strings", 0);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = "  [xy=]{0,3}".generate(&mut rng);
            assert!(t.starts_with("  "), "{t:?}");
            assert!(t.chars().skip(2).all(|c| "xy=".contains(c)), "{t:?}");

            let p = "\\PC{0,5}".generate(&mut rng);
            assert!(p.chars().count() <= 5, "{p:?}");
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn collections_and_oneof_compose() {
        let mut rng = TestRng::deterministic("collections", 1);
        let v = prop::collection::vec((0usize..10, prop::bool::ANY), 0..20).generate(&mut rng);
        assert!(v.len() < 20);
        let s = prop::collection::btree_set(0usize..5, 1..10).generate(&mut rng);
        assert!(s.iter().all(|&x| x < 5));
        let u = prop_oneof![Just("a".to_owned()), "[bc]{1,1}"];
        for _ in 0..100 {
            let x: String = u.generate(&mut rng);
            assert!(["a", "b", "c"].contains(&x.as_str()), "{x:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires config, strategies and assertions together.
        #[test]
        fn macro_round_trip(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag as u64 <= 1, true);
        }
    }

    #[test]
    fn persistence_round_trip_and_upstream_tolerance() {
        let path = std::env::temp_dir().join(format!(
            "proptest-shim-regressions-{}.txt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        assert!(super::persistence::load_cases(&path, "prop_a").is_empty());
        super::persistence::persist_case(&path, "prop_a", 7);
        super::persistence::persist_case(&path, "prop_a", 7); // dedups
        super::persistence::persist_case(&path, "prop_a", 12);
        super::persistence::persist_case(&path, "prop_b", 3);
        assert_eq!(super::persistence::load_cases(&path, "prop_a"), vec![7, 12]);
        assert_eq!(super::persistence::load_cases(&path, "prop_b"), vec![3]);

        // Upstream-format seed lines and comments are skipped, not errors.
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("# Seeds for failure cases"));
        std::fs::write(
            &path,
            format!("{contents}cc 9b55c760976a5cfe # shrinks to seed = 1\n"),
        )
        .unwrap();
        assert_eq!(super::persistence::load_cases(&path, "prop_a"), vec![7, 12]);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deterministic_streams_repeat() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("t", 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("t", 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
