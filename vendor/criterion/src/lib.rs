//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of criterion 0.5 the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`, and
//! `Bencher::iter` — backed by plain wall-clock measurement: a short
//! warm-up, then `sample_size` timed samples, reporting min / median /
//! mean. No statistical regression analysis, HTML reports, or saved
//! baselines; output is a single line per benchmark, which is what the
//! EXPERIMENTS.md records quote.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations, one per sample.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a warm-up call, then one timed call per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        self.timings.clear();
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_id: &str, filter: Option<&str>, samples: usize, f: impl FnOnce(&mut Bencher)) {
    if let Some(pat) = filter {
        if !full_id.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    let mut sorted = bencher.timings.clone();
    sorted.sort_unstable();
    if sorted.is_empty() {
        println!("{full_id:<56} (no samples)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{:<56} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        full_id,
        format_duration(sorted[0]),
        format_duration(median),
        format_duration(mean),
        sorted.len(),
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| routine(b, input),
        );
        self
    }

    /// Runs `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| routine(b),
        );
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes harness-less bench binaries with `--bench` (and
        // `cargo test --benches` with `--test`); any free argument is a
        // substring filter, as with upstream criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<R>(&mut self, id: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        run_one(id, self.filter.as_deref(), self.default_sample_size, |b| {
            routine(b)
        });
        self
    }
}

/// Declares a group-runner function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups. When invoked by
/// `cargo test --benches` (which passes `--test`) the groups are skipped,
/// mirroring upstream criterion's smoke-test behaviour cheaply.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                println!("criterion shim: --test run, skipping measurement");
                return;
            }
            $( $group(); )+
        }
    };
}

/// Opaque value barrier (re-exported for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_timing_per_sample() {
        let mut b = Bencher {
            samples: 7,
            timings: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.timings.len(), 7);
        assert_eq!(calls, 8, "warm-up plus one call per sample");
    }

    #[test]
    fn ids_compose_names_and_parameters() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.000 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
