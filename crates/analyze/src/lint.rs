//! Policy-table axioms and program-level lints.
//!
//! The paper's reordering tables obey a handful of structural rules
//! that keep a model meaningful: the three `x ≠ y` cells preserve
//! single-thread determinism, fences order symmetrically, Bypass only
//! makes sense at (Store, Load), and address-sensitive entries are
//! unreachable outside memory classes. [`lint_policy`] checks one table;
//! [`lint_chain`] checks the observational strength containment of a
//! model sequence (the shipped `SC ⊒ TSO ⊒ PSO ⊒ Weak` chain);
//! [`lint_program`] flags dead fences the table already orders.

use std::fmt;

use samm_core::instr::{Instr, Program, ThreadProgram};
use samm_core::policy::{Constraint, OpClass, Policy};
use samm_core::static_order::fence_is_dead;
use samm_litmus::CompiledLitmus;

use crate::robust::{analyze_static, StaticVerdict};

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (dead fences, asymmetric
    /// fences, unreachable entries).
    Warning,
    /// A violated table axiom.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`same-addr-determinism`, ...).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn error(code: &'static str, message: String) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message,
        }
    }

    fn warning(code: &'static str, message: String) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Checks one policy table for internal soundness.
///
/// Codes emitted:
///
/// * `same-addr-determinism` (error) — one of the (L,S)/(S,L)/(S,S)
///   cells leaves same-address pairs of a single thread unordered,
///   breaking single-thread determinism (paper section 2: the figure has
///   "exactly three" `x ≠ y` entries for precisely this reason);
/// * `misplaced-bypass` (error) — a Bypass entry anywhere but
///   (Store, Load); the store-pipeline reading of section 6 only exists
///   for a later load passing an earlier store;
/// * `unreachable-address-constraint` (warning) — an address-sensitive
///   entry (`x ≠ y`/Bypass) on a cell where one side carries no address
///   (branch, compute or fence), so the comparison can never fire;
/// * `one-way-fence` (warning) — a fence that orders loads/stores on one
///   side only (e.g. `(Load, Fence)` is `never` but `(Fence, Load)` is
///   free); legal, but usually a transcription slip;
/// * `vacuous-fence-class` (warning) — the fence row and column order
///   nothing at all, so every `Fence` instruction under this table is
///   dead.
pub fn lint_policy(policy: &Policy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let name = policy.name();
    for (first, second) in [
        (OpClass::Load, OpClass::Store),
        (OpClass::Store, OpClass::Load),
        (OpClass::Store, OpClass::Store),
    ] {
        if policy.constraint(first, second).observational_strength() < 1 {
            out.push(Diagnostic::error(
                "same-addr-determinism",
                format!(
                    "{name}: ({first}, {second}) is {:?}; same-address pairs of one \
                     thread must be ordered (x != y or stronger) to keep \
                     single-threaded execution deterministic",
                    policy.constraint(first, second)
                ),
            ));
        }
    }
    for (first, second, c) in policy.table().cells() {
        if c == Constraint::Bypass && (first, second) != (OpClass::Store, OpClass::Load) {
            out.push(Diagnostic::error(
                "misplaced-bypass",
                format!(
                    "{name}: Bypass at ({first}, {second}); the store-buffer bypass \
                     of section 6 is only meaningful for a later Load passing an \
                     earlier Store"
                ),
            ));
        }
        if c.is_address_sensitive() && !(first.is_memory() && second.is_memory()) {
            out.push(Diagnostic::warning(
                "unreachable-address-constraint",
                format!(
                    "{name}: address-sensitive entry {c:?} at ({first}, {second}), \
                     but {} carries no address — the comparison can never fire",
                    if first.is_memory() { second } else { first }
                ),
            ));
        }
    }
    let mut fence_orders_something = false;
    for mem in [OpClass::Load, OpClass::Store] {
        let before = policy.constraint(mem, OpClass::Fence) == Constraint::Never;
        let after = policy.constraint(OpClass::Fence, mem) == Constraint::Never;
        fence_orders_something |= before || after;
        if before != after {
            out.push(Diagnostic::warning(
                "one-way-fence",
                format!(
                    "{name}: fences order {mem} {} but not {} — asymmetric fence \
                     semantics",
                    if before { "before them" } else { "after them" },
                    if before { "after them" } else { "before them" },
                ),
            ));
        }
    }
    if !fence_orders_something {
        out.push(Diagnostic::warning(
            "vacuous-fence-class",
            format!("{name}: the fence row and column order nothing; every fence is dead"),
        ));
    }
    out
}

/// Checks observational strength containment along a strongest-first
/// model chain (see [`Policy::at_least_as_strong`]): each model must be
/// at least as strong as its successor on every memory-relevant cell.
/// Emits `chain-containment` errors on violations.
pub fn lint_chain(chain: &[Policy]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pair in chain.windows(2) {
        if !pair[0].at_least_as_strong(&pair[1]) {
            let (stronger, weaker) = (&pair[0], &pair[1]);
            for (first, second, c) in stronger.table().cells() {
                let memory_cell = matches!(first, OpClass::Load | OpClass::Store | OpClass::Fence)
                    && matches!(second, OpClass::Load | OpClass::Store | OpClass::Fence);
                let w = weaker.constraint(first, second);
                if memory_cell && c.observational_strength() < w.observational_strength() {
                    out.push(Diagnostic::error(
                        "chain-containment",
                        format!(
                            "{} is not at least as strong as {}: ({first}, {second}) \
                             is {c:?} vs {w:?}",
                            stronger.name(),
                            weaker.name(),
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Lints a compiled program under one policy: flags `dead-fence` for
/// every fence whose removal changes no guaranteed memory order
/// (straight-line threads only; branchy threads are skipped —
/// conservatively silent), then `redundant-fence-static` via
/// [`lint_redundant_fences`].
pub fn lint_program(program: &Program, policy: &Policy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (t, thread) in program.threads().iter().enumerate() {
        for (i, instr) in thread.instrs().iter().enumerate() {
            if matches!(instr, Instr::Fence) && fence_is_dead(thread, policy, i) {
                out.push(Diagnostic::warning(
                    "dead-fence",
                    format!(
                        "thread {t}, instruction {i}: fence adds no ordering under \
                         {} — the table (or a neighbouring fence) already orders \
                         every pair it separates",
                        policy.name()
                    ),
                ));
            }
        }
    }
    out.extend(lint_redundant_fences(program, policy));
    out
}

/// `program` with the instruction at `(thread, index)` deleted.
fn without_instr(program: &Program, thread: usize, index: usize) -> Program {
    let mut threads: Vec<ThreadProgram> = program.threads().to_vec();
    let mut instrs = threads[thread].instrs().to_vec();
    instrs.remove(index);
    threads[thread] = ThreadProgram::new(instrs);
    Program::with_init(threads, program.init_entries().collect())
}

/// Flags `redundant-fence-static` for every fence the delay-set
/// analysis proves removable: the program is statically robust
/// ([`crate::robust::analyze_static`]) both with and without the fence,
/// so both variants have exactly the SC behaviour set of the fenced
/// program (fences are SC no-ops) — removal changes no behaviour under
/// the given model.
///
/// Silent unless the *base* program is statically robust (when it is
/// not, every surviving fence may be load-bearing in ways the static
/// analysis cannot bound), and silent on fences the cheaper
/// `dead-fence` lint already reports. The claim is cross-checked
/// against exhaustive enumeration by the lint test suite and
/// `robust_differential.rs`.
pub fn lint_redundant_fences(program: &Program, policy: &Policy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !matches!(analyze_static(program, policy), StaticVerdict::Robust(_)) {
        return out;
    }
    for (t, thread) in program.threads().iter().enumerate() {
        for (i, instr) in thread.instrs().iter().enumerate() {
            if !matches!(instr, Instr::Fence) || fence_is_dead(thread, policy, i) {
                continue;
            }
            let stripped = without_instr(program, t, i);
            if matches!(analyze_static(&stripped, policy), StaticVerdict::Robust(_)) {
                out.push(Diagnostic::warning(
                    "redundant-fence-static",
                    format!(
                        "thread {t}, instruction {i}: fence breaks no critical cycle \
                         under {} — the program is SC-robust with and without it, so \
                         removing it changes no observable behaviour",
                        policy.name()
                    ),
                ));
            }
        }
    }
    out
}

/// Lints a compiled litmus test: [`lint_program`] with the test's name
/// prefixed to every message.
pub fn lint_litmus(test: &CompiledLitmus, policy: &Policy) -> Vec<Diagnostic> {
    lint_program(&test.program, policy)
        .into_iter()
        .map(|d| Diagnostic {
            message: format!("{}: {}", test.name, d.message),
            ..d
        })
        .collect()
}

/// The shipped strongest-first model chain checked in CI.
pub fn shipped_chain() -> Vec<Policy> {
    vec![
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::pso(),
        Policy::weak(),
    ]
}

/// Lints every built-in model plus the chain containment — the full
/// axiom suite `samm-lint --models` runs.
pub fn lint_builtin_models() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for policy in [
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::naive_tso(),
        Policy::pso(),
        Policy::weak(),
        Policy::weak().with_alias_speculation(true),
    ] {
        out.extend(lint_policy(&policy));
    }
    out.extend(lint_chain(&shipped_chain()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::policy::ConstraintTable;

    #[test]
    fn shipped_models_lint_clean() {
        let diags = lint_builtin_models();
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn free_for_all_table_violates_determinism_and_fences() {
        let p = Policy::custom(
            "chaos",
            ConstraintTable::from_rows([[Constraint::Free; 5]; 5]),
        );
        let diags = lint_policy(&p);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert_eq!(errors.len(), 3, "{diags:#?}");
        assert!(diags
            .iter()
            .any(|d| d.code == "vacuous-fence-class" && d.severity == Severity::Warning));
    }

    #[test]
    fn misplaced_bypass_is_an_error() {
        let p = Policy::custom(
            "bad-bypass",
            Policy::weak()
                .table()
                .with_entry(OpClass::Load, OpClass::Load, Constraint::Bypass),
        );
        assert!(lint_policy(&p)
            .iter()
            .any(|d| d.code == "misplaced-bypass" && d.severity == Severity::Error));
    }

    #[test]
    fn address_sensitive_fence_entry_is_unreachable() {
        let p = Policy::custom(
            "odd",
            Policy::weak()
                .table()
                .with_entry(OpClass::Fence, OpClass::Load, Constraint::SameAddr),
        );
        assert!(lint_policy(&p)
            .iter()
            .any(|d| d.code == "unreachable-address-constraint"));
    }

    #[test]
    fn one_way_fence_is_flagged() {
        let p = Policy::custom(
            "half-fence",
            Policy::weak()
                .table()
                .with_entry(OpClass::Fence, OpClass::Load, Constraint::Free),
        );
        assert!(lint_policy(&p).iter().any(|d| d.code == "one-way-fence"));
    }

    #[test]
    fn reversed_chain_fails_containment() {
        let diags = lint_chain(&[Policy::weak(), Policy::sequential_consistency()]);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == "chain-containment"));
    }

    #[test]
    fn dead_fence_lint_fires_on_duplicate_fence() {
        use samm_core::ids::Value;
        use samm_core::instr::{Operand, ThreadProgram};
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: Operand::Imm(Value::new(0)),
                val: Operand::Imm(Value::new(1)),
            },
            Instr::Fence,
            Instr::Fence,
            Instr::Load {
                dst: samm_core::ids::Reg::new(0),
                addr: Operand::Imm(Value::new(1)),
            },
        ]);
        let diags = lint_program(&Program::new(vec![t]), &Policy::weak());
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags.iter().all(|d| d.code == "dead-fence"));
    }

    #[test]
    fn concurrency_free_fences_are_statically_redundant() {
        use samm_core::ids::Value;
        use samm_core::instr::{Operand, ThreadProgram};
        // One thread, no contention: the fence genuinely orders the
        // store→load pair (not dead-fence), yet with nobody to observe
        // the ordering it breaks no critical cycle.
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: Operand::Imm(Value::new(0)),
                val: Operand::Imm(Value::new(1)),
            },
            Instr::Fence,
            Instr::Load {
                dst: samm_core::ids::Reg::new(0),
                addr: Operand::Imm(Value::new(1)),
            },
        ]);
        let diags = lint_program(&Program::new(vec![t]), &Policy::weak());
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, "redundant-fence-static");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn load_bearing_fences_are_silent() {
        use samm_litmus::catalog;
        // Every fence of the fenced MP/SB/IRIW entries breaks a critical
        // cycle under the weak model — none may be called redundant.
        for entry in [
            catalog::mp_fenced(),
            catalog::sb_fenced(),
            catalog::iriw_fenced(),
            catalog::mp_fenced_scratch(),
        ] {
            let diags = lint_program(&entry.test.program, &Policy::weak());
            assert!(diags.is_empty(), "{}: {diags:#?}", entry.test.name);
        }
    }

    #[test]
    fn scratch_producer_fence_is_redundant_under_tso_but_load_bearing_under_weak() {
        use samm_litmus::catalog;
        // MP+fences+scratch under TSO: the producer fence separates the
        // store→load scratch pair (a Bypass edge, so not `dead-fence`),
        // yet TSO's guaranteed store→store order keeps MP robust without
        // it — redundant. Under the weak model the same fence is what
        // orders the publication stores: load-bearing, silent.
        let program = catalog::mp_fenced_scratch().test.program;
        let tso = lint_redundant_fences(&program, &Policy::tso());
        assert_eq!(tso.len(), 1, "{tso:#?}");
        assert_eq!(tso[0].code, "redundant-fence-static");
        assert!(tso[0].message.contains("thread 0"), "{}", tso[0].message);
        assert!(lint_redundant_fences(&program, &Policy::weak()).is_empty());
    }

    #[test]
    fn dead_fences_are_left_to_the_dead_fence_lint() {
        use samm_litmus::catalog;
        // IRIW's reader fences under TSO separate only load→load pairs
        // the table already orders: `dead-fence` claims them, and the
        // redundancy lint stays out of its way.
        let diags = lint_program(&catalog::iriw_fenced().test.program, &Policy::tso());
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags.iter().all(|d| d.code == "dead-fence"));
    }

    #[test]
    fn non_robust_programs_get_no_redundancy_verdicts() {
        use samm_litmus::catalog;
        // MP+wfence is not robust under weak (the consumer side still
        // reorders): the lint must stay silent rather than reason about
        // fences it cannot bound.
        let program = catalog::mp_fence_producer_only().test.program;
        assert!(lint_redundant_fences(&program, &Policy::weak()).is_empty());
    }

    #[test]
    fn redundancy_verdicts_match_exhaustive_enumeration() {
        use samm_core::enumerate::EnumConfig;
        use samm_core::pruned::enumerate_pruned;
        use samm_litmus::catalog;
        // Every redundant-fence-static claim over the catalog must be
        // backed by enumeration: stripping the fence may not change the
        // outcome set under the model that called it redundant.
        let config = EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        };
        let mut fired = 0;
        for entry in catalog::all() {
            let program = &entry.test.program;
            for policy in [Policy::tso(), Policy::pso(), Policy::weak()] {
                if !matches!(analyze_static(program, &policy), StaticVerdict::Robust(_)) {
                    continue;
                }
                let base = enumerate_pruned(program, &policy, &config).unwrap();
                for (t, thread) in program.threads().iter().enumerate() {
                    for (i, instr) in thread.instrs().iter().enumerate() {
                        if !matches!(instr, Instr::Fence) || fence_is_dead(thread, &policy, i) {
                            continue;
                        }
                        let stripped = without_instr(program, t, i);
                        let redundant =
                            matches!(analyze_static(&stripped, &policy), StaticVerdict::Robust(_));
                        if redundant {
                            fired += 1;
                            let after = enumerate_pruned(&stripped, &policy, &config).unwrap();
                            assert_eq!(
                                base.outcomes,
                                after.outcomes,
                                "{} under {}: fence ({t}, {i}) called redundant but \
                                 its removal changes the outcome set",
                                entry.test.name,
                                policy.name()
                            );
                        }
                    }
                }
            }
        }
        assert!(
            fired > 0,
            "the cross-check never exercised a redundancy claim"
        );
    }
}
