//! `samm-lint` — policy-axiom and litmus-file linter.
//!
//! ```text
//! samm-lint [--policy NAME] [--models] [--catalog] [--deny-warnings]
//!           [--jobs N] [PATH...]
//! ```
//!
//! * `PATH...` — `.litmus` files or directories to scan (recursively);
//!   each file must parse, compile, and pass the program lints
//!   (`dead-fence`, `redundant-fence-static`) under the selected policy.
//! * `--policy NAME` — policy for the program lints: `sc`, `tso`,
//!   `naive-tso`, `pso`, `weak` (default `weak`).
//! * `--models` — lint every built-in policy table against the paper's
//!   axioms plus the `SC ⊒ TSO ⊒ PSO ⊒ Weak` containment chain.
//! * `--catalog` — lint every built-in catalog entry's program.
//! * `--deny-warnings` — exit non-zero on warnings too (CI mode).
//! * `--jobs N` — lint `.litmus` files with N worker threads (default:
//!   the `SAMM_JOBS` environment variable, else the core count).
//!   Diagnostics stay in stable file order regardless of N.
//!
//! Exit status: 0 clean, 1 diagnostics (errors always; warnings only
//! with `--deny-warnings`), 2 usage or I/O failure.

#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use samm_analyze::lint::{lint_builtin_models, lint_litmus, Diagnostic, Severity};
use samm_core::enumerate::default_parallelism;
use samm_core::policy::Policy;
use samm_litmus::{catalog, parse};

struct Options {
    policy: Policy,
    models: bool,
    catalog: bool,
    deny_warnings: bool,
    jobs: usize,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: samm-lint [--policy NAME] [--models] [--catalog] [--deny-warnings] [--jobs N] [PATH...]\n\
     policies: sc, tso, naive-tso, pso, weak (default weak)"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        policy: Policy::weak(),
        models: false,
        catalog: false,
        deny_warnings: false,
        jobs: default_parallelism(),
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => {
                let name = it.next().ok_or("--policy needs a value")?;
                opts.policy = match name.as_str() {
                    "sc" => Policy::sequential_consistency(),
                    "tso" => Policy::tso(),
                    "naive-tso" => Policy::naive_tso(),
                    "pso" => Policy::pso(),
                    "weak" => Policy::weak(),
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--models" => opts.models = true,
            "--catalog" => opts.catalog = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--jobs needs a positive integer".to_owned())?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.models && !opts.catalog && opts.paths.is_empty() {
        return Err("nothing to lint: pass --models, --catalog, or at least one PATH".into());
    }
    Ok(opts)
}

/// Collects `.litmus` files under `path` (recursing into directories),
/// sorted for stable output.
fn collect_litmus_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect_litmus_files(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "litmus") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn lint_file(path: &Path, policy: &Policy) -> Result<Vec<Diagnostic>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let test = parse(&text).map_err(|e| format!("{}: parse error: {e}", path.display()))?;
    let compiled = test
        .compile()
        .map_err(|e| format!("{}: compile error: {e}", path.display()))?;
    Ok(lint_litmus(&compiled, policy))
}

fn run(opts: &Options) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    if opts.models {
        diags.extend(lint_builtin_models());
    }
    if opts.catalog {
        for entry in catalog::all() {
            diags.extend(lint_litmus(&entry.test, &opts.policy));
        }
    }
    let mut files = Vec::new();
    for path in &opts.paths {
        if !path.exists() {
            return Err(format!("{}: no such file or directory", path.display()));
        }
        collect_litmus_files(path, &mut files).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    for result in lint_files_parallel(&files, &opts.policy, opts.jobs) {
        match result {
            Ok(file_diags) => diags.extend(file_diags),
            Err(msg) => return Err(msg),
        }
    }
    Ok(diags)
}

/// Lints `files` with up to `jobs` worker threads, preserving file
/// order in the returned results. Each worker claims the next unlinted
/// index atomically, so the split balances regardless of file sizes.
fn lint_files_parallel(
    files: &[PathBuf],
    policy: &Policy,
    jobs: usize,
) -> Vec<Result<Vec<Diagnostic>, String>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    type FileResult = Result<Vec<Diagnostic>, String>;
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<FileResult>>> =
        Mutex::new((0..files.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1).min(files.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(i) else { break };
                let result = lint_file(file, policy).map(|file_diags| {
                    file_diags
                        .into_iter()
                        .map(|d| Diagnostic {
                            message: format!("{}: {}", file.display(), d.message),
                            ..d
                        })
                        .collect()
                });
                results.lock().expect("lint results poisoned")[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("lint results poisoned")
        .into_iter()
        .map(|r| r.expect("every index claimed"))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("samm-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let diags = match run(&opts) {
        Ok(diags) => diags,
        Err(msg) => {
            eprintln!("samm-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    for d in &diags {
        println!("{d}");
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        eprintln!("samm-lint: {errors} error(s), {warnings} warning(s)");
        ExitCode::FAILURE
    } else {
        if !diags.is_empty() {
            eprintln!("samm-lint: {warnings} warning(s)");
        }
        ExitCode::SUCCESS
    }
}
