//! `samm-analyze` — delay-set robustness analyzer and CI sweep.
//!
//! ```text
//! samm-analyze [--policy NAME] [--verify] [--fences] [--check-catalog]
//!              [PATH...]
//! ```
//!
//! * `PATH...` — `.litmus` files or directories to scan (recursively);
//!   each file gets a robustness verdict under the selected policy:
//!   `robust` (behaviour set provably equals SC's), `cycle` (a critical
//!   cycle in the delay-set sense, printed), or `unknown` (the static
//!   analysis declines — branches, dynamic addresses, exotic tables).
//! * `--policy NAME` — model to analyze under: `sc`, `tso`, `naive-tso`,
//!   `pso`, `weak`, `weak-spec` (default `weak`).
//! * `--verify` — replay each reported cycle through the pruned
//!   enumeration engine: prints a concrete non-SC witness outcome, or
//!   downgrades the verdict to `unknown` when the cycle is unrealizable.
//! * `--fences` — for non-robust programs, print the minimal fence
//!   placement (by exhaustive breadth-first search over useful slots)
//!   whose insertion makes the program statically robust.
//! * `--check-catalog` — CI gate: sweep every catalog entry under the
//!   full store-atomic model chain and cross-check every static verdict
//!   against the pruned oracle — a `robust` verdict whose model/SC
//!   outcome sets differ, or a failed certificate/cycle self-check, is
//!   an unsoundness and fails the run.
//!
//! Exit status: 0 clean, 1 unsound verdict found by `--check-catalog`,
//! 2 usage or I/O failure.

#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use samm_analyze::robust::{analyze_static, break_cycles, CriticalCycle, StaticVerdict};
use samm_core::enumerate::EnumConfig;
use samm_core::instr::Program;
use samm_core::policy::Policy;
use samm_core::pruned::enumerate_pruned;
use samm_litmus::{catalog, catalog::ModelSel, parse};

struct Options {
    policy: Policy,
    verify: bool,
    fences: bool,
    check_catalog: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: samm-analyze [--policy NAME] [--verify] [--fences] [--check-catalog] [PATH...]\n\
     policies: sc, tso, naive-tso, pso, weak, weak-spec (default weak)"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        policy: Policy::weak(),
        verify: false,
        fences: false,
        check_catalog: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => {
                let name = it.next().ok_or("--policy needs a value")?;
                opts.policy = match name.as_str() {
                    "sc" => Policy::sequential_consistency(),
                    "tso" => Policy::tso(),
                    "naive-tso" => Policy::naive_tso(),
                    "pso" => Policy::pso(),
                    "weak" => Policy::weak(),
                    "weak-spec" => Policy::weak().with_alias_speculation(true),
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--verify" => opts.verify = true,
            "--fences" => opts.fences = true,
            "--check-catalog" => opts.check_catalog = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.check_catalog && opts.paths.is_empty() {
        return Err("nothing to analyze: pass --check-catalog or at least one PATH".into());
    }
    Ok(opts)
}

/// Collects `.litmus` files under `path` (recursing into directories),
/// sorted for stable output.
fn collect_litmus_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect_litmus_files(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "litmus") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// Prints one program's verdict; returns the verdict name for the tally.
fn report(name: &str, program: &Program, opts: &Options) -> &'static str {
    let policy = &opts.policy;
    let verdict = analyze_static(program, policy);
    match &verdict {
        StaticVerdict::Robust(cert) => {
            println!(
                "{name} [{}]: robust ({} threads, {} conflict edges, {} delayable segments)",
                policy.name(),
                cert.threads,
                cert.conflict_edges,
                cert.delayable_segments
            );
        }
        StaticVerdict::CycleFound(cycle) => {
            println!("{name} [{}]: cycle — {cycle}", policy.name());
            if opts.verify {
                report_witness(program, policy, cycle);
            }
            if opts.fences {
                report_fences(program, policy);
            }
        }
        StaticVerdict::Unknown(reason) => {
            println!("{name} [{}]: unknown — {reason}", policy.name());
        }
    }
    verdict.name()
}

fn report_witness(program: &Program, policy: &Policy, cycle: &CriticalCycle) {
    match cycle.verify(program, policy, &quiet_config()) {
        Ok(Some(witness)) => println!("  witness: {witness}"),
        Ok(None) => println!("  cycle unrealizable: outcome sets match SC after all (unknown)"),
        Err(e) => println!("  verification failed: {e}"),
    }
}

fn report_fences(program: &Program, policy: &Policy) {
    match break_cycles(program, policy) {
        Some(slots) if slots.is_empty() => {}
        Some(slots) => {
            let rendered: Vec<String> = slots
                .iter()
                .map(|&(t, i)| format!("thread {t} before instruction {i}"))
                .collect();
            println!(
                "  minimal static fix: {} fence(s) — {}",
                slots.len(),
                rendered.join(", ")
            );
        }
        None => println!("  no static fence placement certifies robustness"),
    }
}

fn quiet_config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

/// The CI sweep: every catalog entry × the store-atomic chain, every
/// static verdict cross-checked against the pruned oracle. Returns the
/// list of unsoundness descriptions (empty = pass).
fn check_catalog() -> Result<Vec<String>, String> {
    let config = quiet_config();
    let mut unsound = Vec::new();
    let mut tally = [0usize; 3]; // robust, cycle, unknown
    for entry in catalog::all() {
        let program = &entry.test.program;
        let sc = enumerate_pruned(program, &Policy::sequential_consistency(), &config)
            .map_err(|e| format!("{}: SC enumeration failed: {e}", entry.test.name))?;
        for model in ModelSel::CHAIN {
            let policy = model.policy();
            let oracle = enumerate_pruned(program, &policy, &config)
                .map_err(|e| format!("{}: enumeration failed: {e}", entry.test.name))?;
            let equal = oracle.outcomes == sc.outcomes;
            let tag = format!("{} under {}", entry.test.name, model.name());
            match analyze_static(program, &policy) {
                StaticVerdict::Robust(cert) => {
                    tally[0] += 1;
                    if !cert.check(program, &policy) {
                        unsound.push(format!("{tag}: robustness certificate fails its own check"));
                    }
                    if !equal {
                        unsound.push(format!(
                            "{tag}: claimed robust but the outcome sets differ ({} vs {} SC)",
                            oracle.outcomes.len(),
                            sc.outcomes.len()
                        ));
                    }
                }
                StaticVerdict::CycleFound(cycle) => {
                    tally[1] += 1;
                    if !cycle.check(program, &policy) {
                        unsound.push(format!("{tag}: reported cycle fails its own check"));
                    }
                    match cycle.verify(program, &policy, &config) {
                        Ok(Some(_)) if equal => unsound.push(format!(
                            "{tag}: cycle verification produced a witness but the \
                             outcome sets are equal"
                        )),
                        Ok(None) if !equal => unsound.push(format!(
                            "{tag}: outcome sets differ but the cycle did not realize \
                             a witness"
                        )),
                        Err(e) => unsound.push(format!("{tag}: cycle verification failed: {e}")),
                        _ => {}
                    }
                }
                StaticVerdict::Unknown(_) => tally[2] += 1,
            }
        }
    }
    println!(
        "catalog sweep: {} verdicts ({} robust, {} cycle, {} unknown), {} unsound",
        tally.iter().sum::<usize>(),
        tally[0],
        tally[1],
        tally[2],
        unsound.len()
    );
    Ok(unsound)
}

fn analyze_file(path: &Path, opts: &Options) -> Result<&'static str, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let test = parse(&text).map_err(|e| format!("{}: parse error: {e}", path.display()))?;
    let compiled = test
        .compile()
        .map_err(|e| format!("{}: compile error: {e}", path.display()))?;
    Ok(report(&path.display().to_string(), &compiled.program, opts))
}

fn run(opts: &Options) -> Result<Vec<String>, String> {
    let mut unsound = Vec::new();
    if opts.check_catalog {
        unsound.extend(check_catalog()?);
    }
    let mut files = Vec::new();
    for path in &opts.paths {
        if !path.exists() {
            return Err(format!("{}: no such file or directory", path.display()));
        }
        collect_litmus_files(path, &mut files).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let mut tally = [0usize; 3];
    for file in &files {
        match analyze_file(file, opts)? {
            "robust" => tally[0] += 1,
            "cycle" => tally[1] += 1,
            _ => tally[2] += 1,
        }
    }
    if !files.is_empty() {
        println!(
            "{} file(s): {} robust, {} cycle, {} unknown",
            files.len(),
            tally[0],
            tally[1],
            tally[2]
        );
    }
    Ok(unsound)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("samm-analyze: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(unsound) if unsound.is_empty() => ExitCode::SUCCESS,
        Ok(unsound) => {
            for finding in &unsound {
                eprintln!("samm-analyze: UNSOUND: {finding}");
            }
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("samm-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
