//! DRF-SC certification: machine-checkable proofs that a program's
//! behaviour set under a weak store-atomic policy equals its SC
//! behaviour set, so weak-model enumeration can be skipped.
//!
//! Two certificate shapes are recognised:
//!
//! * **Data-race freedom** ([`CertReason::DataRaceFree`]) — the static
//!   race detector found no conflicting unordered pair, so every load
//!   has a unique eligible source in every execution and outcomes are
//!   identical under *every* store-atomic policy whose table keeps
//!   single-threaded execution deterministic (the paper's
//!   well-synchronized discipline, section 8, in its strongest static
//!   form). Evidence: the per-location footprint.
//!
//! * **Total local order** ([`CertReason::TotalLocalOrder`]) — every
//!   thread is straight-line with statically known addresses, and the
//!   policy's *guaranteed* intra-thread order already covers full
//!   program order over memory events (e.g. fully fenced tests such as
//!   `SB+fences`, or data-dependency chains such as `LB+data`). The
//!   policy then emits exactly SC's edge structure for this program, so
//!   enumeration is step-for-step identical. Evidence: per thread, a
//!   chain of guaranteed base edges covering each consecutive memory
//!   pair. Programs with a same-address Bypass pair are declined so the
//!   gray-edge fork cannot perturb execution counts.
//!
//! Certificates carry their evidence and re-verify via
//! [`Certificate::check`]; the litmus harness only trusts a certificate
//! that checks.

use std::fmt;

use samm_core::enumerate::EnumConfig;
use samm_core::explain::{find_witness, Goal, Witness};
use samm_core::instr::Program;
use samm_core::policy::{Constraint, OpClass, Policy};
use samm_core::static_order::{guaranteed_edge, thread_events, StaticOrder};

use crate::race::find_races;

/// Why the program is certified SC-equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertReason {
    /// No conflicting unordered access pair exists (static DRF).
    DataRaceFree,
    /// The guaranteed intra-thread order is total over every thread's
    /// memory events, so the policy's edge set equals SC's.
    TotalLocalOrder,
}

impl fmt::Display for CertReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CertReason::DataRaceFree => "data-race-free",
            CertReason::TotalLocalOrder => "total-local-order",
        })
    }
}

/// A machine-checkable SC-equivalence certificate for one
/// (program, policy) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Name of the certified policy.
    pub policy: String,
    /// The certificate shape.
    pub reason: CertReason,
    /// For [`CertReason::TotalLocalOrder`]: per thread, per consecutive
    /// memory-event pair, the chain of guaranteed base edges (event
    /// indices) covering it. Empty for [`CertReason::DataRaceFree`].
    pub chains: Vec<Vec<Vec<usize>>>,
}

impl Certificate {
    /// Re-verifies the certificate against the program and policy it
    /// claims to certify. Returns `false` on any mismatch — wrong
    /// policy name, stale evidence, or a condition that no longer
    /// holds.
    pub fn check(&self, program: &Program, policy: &Policy) -> bool {
        if policy.name() != self.policy {
            return false;
        }
        match self.reason {
            CertReason::DataRaceFree => {
                single_thread_deterministic(policy) && find_races(program, policy).is_race_free()
            }
            CertReason::TotalLocalOrder => check_total_local_order(program, policy, &self.chains),
        }
    }

    /// Grounds the certificate's claim in a concrete, replayable
    /// artifact: since a checked certificate proves the behaviour set
    /// under `policy` equals the SC behaviour set, an SC
    /// [`Witness`] for `goal` *is* a
    /// witness under the certified policy. The witness is verified
    /// (replayed and its serialization re-validated) before being
    /// returned; `Ok(None)` means the goal is unobservable — under SC
    /// and therefore, by the certificate, under `policy` too.
    ///
    /// # Errors
    ///
    /// When the certificate itself fails [`Certificate::check`], when
    /// the SC enumeration fails, or when the found witness does not
    /// replay.
    pub fn cite_witness(
        &self,
        program: &Program,
        policy: &Policy,
        config: &EnumConfig,
        goal: &Goal,
    ) -> Result<Option<Witness>, String> {
        if !self.check(program, policy) {
            return Err(format!(
                "certificate for policy {} does not check against this program",
                self.policy
            ));
        }
        let sc = Policy::sequential_consistency();
        let witness = find_witness(program, &sc, config, goal)
            .map_err(|e| format!("SC enumeration failed: {e}"))?;
        match witness {
            None => Ok(None),
            Some(w) => {
                w.verify(program, &sc, config.max_nodes_per_thread)?;
                Ok(Some(w))
            }
        }
    }
}

/// Whether the table keeps single-threaded execution deterministic: the
/// paper's three `x ≠ y` cells — (Load, Store), (Store, Load),
/// (Store, Store) — must each order (or bypass-resolve) same-address
/// pairs.
fn single_thread_deterministic(policy: &Policy) -> bool {
    [
        (OpClass::Load, OpClass::Store),
        (OpClass::Store, OpClass::Load),
        (OpClass::Store, OpClass::Store),
    ]
    .into_iter()
    .all(|(a, b)| policy.constraint(a, b).observational_strength() >= 1)
}

fn check_total_local_order(program: &Program, policy: &Policy, chains: &[Vec<Vec<usize>>]) -> bool {
    if chains.len() != program.threads().len() {
        return false;
    }
    for (thread, thread_chains) in program.threads().iter().zip(chains) {
        let te = thread_events(thread);
        if !te.straight_line {
            return false;
        }
        if te.events.iter().any(|e| e.addr_unknown()) {
            return false;
        }
        // No same-address Bypass pair (gray-edge forks would diverge
        // from SC's execution structure).
        for (i, a) in te.events.iter().enumerate() {
            for b in te.events.iter().skip(i + 1) {
                if policy.combined_constraint(a.kind.classes(), b.kind.classes())
                    == Constraint::Bypass
                    && matches!((a.addr, b.addr), (Some(x), Some(y)) if x == y)
                {
                    return false;
                }
            }
        }
        let mems: Vec<usize> = (0..te.events.len())
            .filter(|&i| te.events[i].kind.is_memory())
            .collect();
        if thread_chains.len() + 1 != mems.len().max(1) {
            return false;
        }
        for (pair, chain) in mems.windows(2).zip(thread_chains) {
            // The chain must start and end at the consecutive memory
            // events and every step must be a guaranteed base edge.
            if chain.first() != Some(&pair[0]) || chain.last() != Some(&pair[1]) {
                return false;
            }
            let valid_steps = chain.windows(2).all(|step| {
                step[0] < step[1]
                    && step[1] < te.events.len()
                    && guaranteed_edge(&te.events[step[0]], &te.events[step[1]], policy)
            });
            if !valid_steps {
                return false;
            }
        }
    }
    true
}

/// Attempts to certify that `program`'s behaviour set under `policy`
/// equals its SC behaviour set. Returns `None` when no certificate
/// applies — which means nothing except that enumeration must run.
pub fn certify(program: &Program, policy: &Policy) -> Option<Certificate> {
    // Shape 1: static data-race freedom.
    if single_thread_deterministic(policy) && find_races(program, policy).is_race_free() {
        return Some(Certificate {
            policy: policy.name().to_owned(),
            reason: CertReason::DataRaceFree,
            chains: Vec::new(),
        });
    }
    // Shape 2: guaranteed order total over memory events, per thread.
    let mut chains: Vec<Vec<Vec<usize>>> = Vec::with_capacity(program.threads().len());
    for thread in program.threads() {
        let te = thread_events(thread);
        if !te.straight_line || te.events.iter().any(|e| e.addr_unknown()) {
            return None;
        }
        for (i, a) in te.events.iter().enumerate() {
            for b in te.events.iter().skip(i + 1) {
                if policy.combined_constraint(a.kind.classes(), b.kind.classes())
                    == Constraint::Bypass
                    && matches!((a.addr, b.addr), (Some(x), Some(y)) if x == y)
                {
                    return None;
                }
            }
        }
        let order = StaticOrder::compute(&te.events, policy);
        if !order.total_over_memory(&te.events) {
            return None;
        }
        let mems: Vec<usize> = (0..te.events.len())
            .filter(|&i| te.events[i].kind.is_memory())
            .collect();
        let thread_chains: Option<Vec<Vec<usize>>> = mems
            .windows(2)
            .map(|pair| order.chain(&te.events, policy, pair[0], pair[1]))
            .collect();
        chains.push(thread_chains?);
    }
    Some(Certificate {
        policy: policy.name().to_owned(),
        reason: CertReason::TotalLocalOrder,
        chains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::ids::{Reg, Value};
    use samm_core::instr::{Instr, Operand, ThreadProgram};

    fn imm(v: u64) -> Operand {
        Operand::Imm(Value::new(v))
    }

    fn fenced_sb() -> Program {
        let thread = |mine: u64, theirs: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: imm(mine),
                    val: imm(1),
                },
                Instr::Fence,
                Instr::Load {
                    dst: Reg::new(0),
                    addr: imm(theirs),
                },
            ])
        };
        Program::new(vec![thread(0, 1), thread(1, 0)])
    }

    fn unfenced_sb() -> Program {
        let thread = |mine: u64, theirs: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: imm(mine),
                    val: imm(1),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: imm(theirs),
                },
            ])
        };
        Program::new(vec![thread(0, 1), thread(1, 0)])
    }

    #[test]
    fn fenced_sb_gets_total_order_certificate_under_weak() {
        let cert = certify(&fenced_sb(), &Policy::weak()).expect("certifiable");
        assert_eq!(cert.reason, CertReason::TotalLocalOrder);
        assert!(cert.check(&fenced_sb(), &Policy::weak()));
    }

    #[test]
    fn unfenced_sb_is_not_certified_under_weak_or_tso() {
        assert!(certify(&unfenced_sb(), &Policy::weak()).is_none());
        assert!(certify(&unfenced_sb(), &Policy::tso()).is_none());
    }

    #[test]
    fn race_free_program_gets_drf_certificate() {
        let t0 = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
        ]);
        let t1 = ThreadProgram::new(vec![Instr::Load {
            dst: Reg::new(0),
            addr: imm(9),
        }]);
        let p = Program::new(vec![t0, t1]);
        let cert = certify(&p, &Policy::weak()).expect("certifiable");
        assert_eq!(cert.reason, CertReason::DataRaceFree);
        assert!(cert.check(&p, &Policy::weak()));
    }

    #[test]
    fn certificate_fails_check_against_other_program_or_policy() {
        let cert = certify(&fenced_sb(), &Policy::weak()).expect("certifiable");
        assert!(!cert.check(&fenced_sb(), &Policy::tso()), "wrong policy");
        assert!(
            !cert.check(&unfenced_sb(), &Policy::weak()),
            "stale evidence: the fences are gone"
        );
    }

    #[test]
    fn tampered_chain_fails_check() {
        let mut cert = certify(&fenced_sb(), &Policy::weak()).expect("certifiable");
        assert_eq!(cert.reason, CertReason::TotalLocalOrder);
        // Claim a direct edge from the store to the load, skipping the
        // fence: not a guaranteed base edge under weak.
        cert.chains[0][0] = vec![0, 2];
        assert!(!cert.check(&fenced_sb(), &Policy::weak()));
    }

    #[test]
    fn data_dependent_lb_is_certified_under_weak() {
        let thread = |from: u64, to: u64| {
            ThreadProgram::new(vec![
                Instr::Load {
                    dst: Reg::new(0),
                    addr: imm(from),
                },
                Instr::Store {
                    addr: imm(to),
                    val: Operand::Reg(Reg::new(0)),
                },
            ])
        };
        let p = Program::new(vec![thread(0, 1), thread(1, 0)]);
        let cert = certify(&p, &Policy::weak()).expect("certifiable");
        assert_eq!(cert.reason, CertReason::TotalLocalOrder);
        assert!(cert.check(&p, &Policy::weak()));
    }

    #[test]
    fn pointer_programs_are_declined() {
        let t = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
            Instr::Fence,
            Instr::Load {
                dst: Reg::new(1),
                addr: Operand::Reg(Reg::new(0)),
            },
        ]);
        let writer = ThreadProgram::new(vec![Instr::Store {
            addr: imm(0),
            val: imm(5),
        }]);
        assert!(certify(&Program::new(vec![t, writer]), &Policy::weak()).is_none());
    }

    #[test]
    fn branchy_racy_program_is_declined() {
        let t = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
        ]);
        let u = ThreadProgram::new(vec![Instr::Store {
            addr: imm(0),
            val: imm(2),
        }]);
        assert!(certify(&Program::new(vec![t, u]), &Policy::weak()).is_none());
    }

    #[test]
    fn certificate_cites_a_verified_sc_witness() {
        use samm_core::enumerate::EnumConfig;
        use samm_core::explain::Goal;

        let p = fenced_sb();
        let weak = Policy::weak();
        let cert = certify(&p, &weak).expect("certifiable");
        let config = EnumConfig::default();
        // 1/1 is observable under SC (both stores drain before both
        // loads), hence under weak by the certificate.
        let goal = Goal::new(vec![
            (0, Reg::new(0), Value::new(1)),
            (1, Reg::new(0), Value::new(1)),
        ]);
        let w = cert
            .cite_witness(&p, &weak, &config, &goal)
            .expect("certificate checks")
            .expect("1/1 is SC-observable");
        assert!(!w.observations.is_empty());
        // 0/0 is SC-unobservable, hence unobservable under weak too.
        let forbidden = Goal::new(vec![
            (0, Reg::new(0), Value::ZERO),
            (1, Reg::new(0), Value::ZERO),
        ]);
        assert!(cert
            .cite_witness(&p, &weak, &config, &forbidden)
            .expect("certificate checks")
            .is_none());
        // A certificate that does not check refuses to cite anything.
        assert!(cert
            .cite_witness(&unfenced_sb(), &weak, &config, &goal)
            .is_err());
    }

    #[test]
    fn same_addr_bypass_pair_declines_total_order_even_with_fence() {
        // store x; fence; load x under TSO: ordered through the fence,
        // but the bypass gray fork could still diverge from SC's
        // execution structure — declined.
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Fence,
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
        ]);
        let u = ThreadProgram::new(vec![Instr::Store {
            addr: imm(0),
            val: imm(2),
        }]);
        let p = Program::new(vec![t, u]);
        assert!(certify(&p, &Policy::tso()).is_none());
        // Under weak (no bypass) the same program certifies.
        assert!(certify(&p, &Policy::weak()).is_some());
    }
}
