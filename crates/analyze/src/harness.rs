//! The SC-equivalence short-circuit wired into the litmus harness.
//!
//! [`run_entry`] behaves like [`samm_litmus::expect::run_entry`] but
//! consults the static certifiers first: any model the analyzer proves
//! SC-equivalent for the entry's program reuses a single SC enumeration
//! instead of enumerating again. Two certificate layers fire in order of
//! cost: the DRF/TLO certifier ([`mod@crate::certify`]) and, where it
//! declines, the delay-set robustness certifier ([`crate::robust`]) —
//! which also covers racy-but-fenced programs whose behaviour sets
//! provably collapse to SC. On a fully fenced test run under the whole
//! model chain this replaces N weak-model enumerations with one SC run
//! plus N cheap static checks (see the `analyze` and `robustness`
//! Criterion benches).

use samm_core::enumerate::EnumConfig;
use samm_core::error::EnumError;
use samm_core::instr::Program;
use samm_core::policy::Policy;
use samm_litmus::catalog::{CatalogEntry, ModelSel};
use samm_litmus::expect::{run_entry_certified, run_entry_certified_parallel, EntryReport};

use crate::certify::certify;
use crate::robust::{analyze_static, StaticVerdict};

/// The DRF/TLO-only certifier (PR 2's layer): certificates are
/// re-checked before being trusted, so a bug in certificate
/// *construction* cannot silently skip enumeration. Models certified by
/// this layer reuse the SC run's outcome set *and* execution counts
/// (both certificate shapes preserve execution structure).
pub fn drf_certifier(program: &Program, policy: &Policy) -> bool {
    certify(program, policy).is_some_and(|cert| cert.check(program, policy))
}

/// The robustness certifier: `true` when the delay-set analysis finds
/// no harmful critical cycle and its [`crate::robust::RobustCertificate`]
/// re-checks. Guarantees outcome-set equality with SC — execution
/// *counts* may legitimately differ (a robust program can still reorder
/// internally; every reordering just converges to an SC-observable
/// outcome).
pub fn robust_certifier(program: &Program, policy: &Policy) -> bool {
    matches!(analyze_static(program, policy), StaticVerdict::Robust(cert) if cert.check(program, policy))
}

/// The combined certifier closure the harness plugs into
/// [`samm_litmus::expect::run_entry_certified`]: the DRF/TLO layer
/// first (cheapest, strongest guarantees), then the delay-set
/// robustness layer. Every certificate is re-checked before being
/// trusted.
pub fn checked_certifier(program: &Program, policy: &Policy) -> bool {
    drf_certifier(program, policy) || robust_certifier(program, policy)
}

/// Runs one catalog entry with the DRF-SC short-circuit (serial
/// engine).
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry(entry: &CatalogEntry, config: &EnumConfig) -> Result<EntryReport, EnumError> {
    run_entry_certified(entry, config, &checked_certifier)
}

/// Runs one catalog entry with the DRF-SC short-circuit on the
/// work-stealing pool.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry_parallel(
    entry: &CatalogEntry,
    config: &EnumConfig,
) -> Result<EntryReport, EnumError> {
    run_entry_certified_parallel(entry, config, &checked_certifier)
}

/// The models of an entry the certifier would short-circuit — handy for
/// reporting and for the bench harness.
pub fn certified_models(entry: &CatalogEntry) -> Vec<ModelSel> {
    entry
        .models()
        .into_iter()
        .filter(|m| *m != ModelSel::Sc && checked_certifier(&entry.test.program, &m.policy()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_litmus::catalog;

    fn fast() -> EnumConfig {
        EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        }
    }

    #[test]
    fn fenced_sb_short_circuits_every_weak_model() {
        let entry = catalog::sb_fenced();
        let report = run_entry(&entry, &fast()).unwrap();
        assert!(report.all_pass(), "{report}");
        for row in &report.rows {
            assert_eq!(
                row.certified,
                row.model != ModelSel::Sc,
                "{}: certification flag",
                row.model.name()
            );
        }
    }

    #[test]
    fn racy_sb_never_short_circuits() {
        let entry = catalog::sb();
        let report = run_entry(&entry, &fast()).unwrap();
        assert!(report.all_pass(), "{report}");
        assert!(report.rows.iter().all(|r| !r.certified));
        assert!(certified_models(&entry).is_empty());
    }

    #[test]
    fn certified_reports_match_plain_harness_verdicts() {
        for entry in catalog::all() {
            let plain = samm_litmus::expect::run_entry(&entry, &fast()).unwrap();
            let certified = run_entry(&entry, &fast()).unwrap();
            assert!(certified.all_pass(), "{certified}");
            assert_eq!(plain.rows.len(), certified.rows.len());
            for (p, c) in plain.rows.iter().zip(&certified.rows) {
                assert_eq!(
                    p.observed_allowed, c.observed_allowed,
                    "{}",
                    entry.test.name
                );
                assert_eq!(p.outcomes, c.outcomes, "{}", entry.test.name);
                // Certified rows report the SC run's execution count; a
                // robustness certificate only promises outcome-set
                // equality, so compare executions on fresh rows only.
                if !c.certified {
                    assert_eq!(p.executions, c.executions, "{}", entry.test.name);
                }
            }
        }
    }

    #[test]
    fn robust_scratch_entry_short_circuits_where_drf_declines() {
        let entry = catalog::mp_fenced_scratch();
        // NaiveTSO's plain same-address store→load edge keeps the local
        // order total, so TLO still fires there; under the real relaxed
        // models only the robustness layer certifies.
        for model in [
            ModelSel::Tso,
            ModelSel::Pso,
            ModelSel::Weak,
            ModelSel::WeakSpec,
        ] {
            assert!(
                !drf_certifier(&entry.test.program, &model.policy()),
                "{}: the DRF/TLO layer must decline",
                model.name()
            );
            assert!(
                robust_certifier(&entry.test.program, &model.policy()),
                "{}: the robustness layer must certify",
                model.name()
            );
        }
        let report = run_entry(&entry, &fast()).unwrap();
        assert!(report.all_pass(), "{report}");
        for row in &report.rows {
            assert_eq!(row.certified, row.model != ModelSel::Sc, "{}", row.model);
        }
        assert_eq!(certified_models(&entry).len(), entry.models().len() - 1);
    }

    #[test]
    fn parallel_short_circuit_agrees() {
        let entry = catalog::mp_fenced();
        let config = EnumConfig {
            parallelism: 4,
            ..fast()
        };
        let serial = run_entry(&entry, &config).unwrap();
        let parallel = run_entry_parallel(&entry, &config).unwrap();
        for (s, p) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(s.certified, p.certified);
            assert_eq!(s.outcomes, p.outcomes);
        }
    }
}
