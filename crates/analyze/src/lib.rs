//! # samm-analyze — static race/DRF certifier and policy-axiom linter
//!
//! Static analyses over litmus programs and reordering policies that
//! *never enumerate*: everything here is decided from the program text
//! and the policy table alone, then cross-validated against the
//! exhaustive enumerators by the differential test layer.
//!
//! Three passes:
//!
//! * [`race`] — a static data-race detector. It rebuilds each thread's
//!   guaranteed local order `≺` from the policy table (see
//!   [`samm_core::static_order`]) and reports every pair of conflicting
//!   accesses no guaranteed order relates, with a witness explaining
//!   which table entries fail to order the pair.
//! * [`mod@certify`] — a DRF-SC certifier. When a program is provably
//!   data-race-free (or its guaranteed order is already total over each
//!   thread's memory events), [`certify::certify`] emits a
//!   machine-checkable [`certify::Certificate`] that its behaviour set
//!   under the given store-atomic policy equals its SC behaviour set.
//!   The litmus harness uses the certificate to short-circuit weak-model
//!   enumeration to a single SC run ([`harness`]).
//! * [`robust`] — a Shasha–Snir delay-set robustness certifier. It
//!   classifies every program-order pair as delayable or guaranteed
//!   straight from the policy table, searches the cross-thread conflict
//!   graph for *critical cycles*, and emits a machine-checked verdict:
//!   [`robust::Robustness::Robust`] (behaviour set equals the SC set —
//!   one SC run answers the query, even for racy programs the DRF/TLO
//!   certifier declines), [`robust::Robustness::NotRobust`] (carrying a
//!   cycle replayed into a concrete weak witness by the pruned engine)
//!   or [`robust::Robustness::Unknown`] (sound fallback to
//!   enumeration). Cycles also seed minimal fence placement
//!   ([`robust::break_cycles`], [`robust::synthesize_with_robust_seed`]).
//!   The `samm-analyze` binary sweeps the catalog and cross-checks every
//!   verdict against the pruned oracle in CI.
//! * [`lint`] — a policy-axiom linter for reordering tables
//!   (single-thread determinism of the three `x ≠ y` cells, fence
//!   symmetry, Bypass placement, strength containment of the
//!   `SC ⊒ TSO ⊒ PSO ⊒ Weak` chain) plus `dead-fence` and
//!   `redundant-fence-static` program lints.
//!   The `samm-lint` binary runs the suite over `litmus-tests/` and the
//!   built-in catalog in CI.
//!
//! Soundness is one-directional by design: a missing certificate or a
//! reported race may be a false alarm (the analyses over-approximate
//! inter-thread interaction), but an *emitted* certificate is always
//! checked against its own evidence before the harness trusts it, and
//! the differential tests assert certified programs really do have
//! identical outcome sets under every shipped model, in both the serial
//! and the work-stealing enumerator.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod certify;
pub mod harness;
pub mod lint;
pub mod race;
pub mod robust;

pub use certify::{certify, CertReason, Certificate};
pub use lint::{
    lint_builtin_models, lint_chain, lint_litmus, lint_policy, lint_redundant_fences, Diagnostic,
    Severity,
};
pub use race::{find_races, Access, AccessMode, Race, RaceKind, RaceReport};
pub use robust::{
    analyze_robustness, analyze_static, break_cycles, synthesize_with_robust_seed, CriticalCycle,
    RobustCertificate, Robustness, Segment, StaticVerdict, UnknownReason,
};
