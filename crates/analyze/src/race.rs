//! Static data-race detection over the reordering table.
//!
//! A *race* is a pair of memory accesses that may target the same
//! address, at least one of which writes, and that no relation
//! guaranteed in **every** execution orders. Per the framework, the only
//! statically guaranteed order is the intra-thread `≺` derived from the
//! policy's table ([`samm_core::static_order`]): fence `never` entries,
//! same-known-address `x ≠ y` entries and data dependencies. Inter-thread
//! edges all come from Store Atomicity and vary per execution, so any
//! cross-thread conflicting pair is unordered — including pairs of
//! atomic RMWs, whose serialization order genuinely differs across
//! executions (and across models: see `SB+swap` in the catalog).
//!
//! The detector is a sound over-approximation: a program it calls
//! race-free has no conflicting unordered pair under the given policy
//! (the basis of the DRF-SC certificate), while a reported race may
//! still be benign in terms of observable outcomes (e.g. two competing
//! `faa` increments to one counter race, yet commute).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use samm_core::ids::Addr;
use samm_core::instr::Program;
use samm_core::policy::Policy;
use samm_core::static_order::{thread_events, StaticEvent, StaticOrder, ThreadEvents};

/// The access mode of one side of a (potential) race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessMode {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// An atomic read-modify-write (reads *and* writes).
    Atomic,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Read => "load",
            AccessMode::Write => "store",
            AccessMode::Atomic => "rmw",
        })
    }
}

/// One memory access, identified statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Access {
    /// Thread index.
    pub thread: usize,
    /// Instruction index in the thread listing.
    pub instr_index: usize,
    /// Issue index among node-emitting instructions (matches
    /// `Node::index_in_thread` for straight-line threads).
    pub issue_index: u32,
    /// Read, write or atomic.
    pub mode: AccessMode,
    /// Statically known address; `None` for register-held (pointer)
    /// addresses, which conservatively may alias anything.
    pub addr: Option<Addr>,
}

impl Access {
    /// Whether the access writes memory.
    pub fn writes(&self) -> bool {
        matches!(self.mode, AccessMode::Write | AccessMode::Atomic)
    }

    /// Whether two accesses may target the same address (unknown
    /// addresses alias everything).
    pub fn may_alias(&self, other: &Access) -> bool {
        match (self.addr, other.addr) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T{} instr {} ({}",
            self.thread, self.instr_index, self.mode
        )?;
        match self.addr {
            Some(a) => write!(f, " of {a})"),
            None => write!(f, " of *unknown*)"),
        }
    }
}

/// The classification of a reported race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A plain read racing a write.
    ReadWrite,
    /// Two plain writes.
    WriteWrite,
    /// At least one side is an atomic RMW. Still a race in the DRF-SC
    /// sense — the RMWs' serialization order is execution-dependent —
    /// but often an *intentional* synchronization race.
    Atomic,
}

/// A conflicting unordered access pair, with the evidence that nothing
/// statically orders it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The program-earlier side (lower thread, or lower instruction
    /// index within one thread).
    pub first: Access,
    /// The other side.
    pub second: Access,
    /// The contended address when both sides know it statically.
    pub addr: Option<Addr>,
    /// Classification.
    pub kind: RaceKind,
    /// `true` for the pathological same-thread case: the policy's table
    /// fails to order two conflicting accesses of a single thread (only
    /// possible for tables that break the paper's three `x ≠ y`
    /// determinism entries).
    pub same_thread: bool,
}

impl Race {
    /// A human-readable witness: the two accesses and why no
    /// happens-before path exists between them.
    pub fn witness(&self) -> String {
        let place = match self.addr {
            Some(a) => format!("address {a}"),
            None => "a possibly-aliasing pointer address".to_owned(),
        };
        if self.same_thread {
            format!(
                "{} and {} conflict on {} within one thread, and the policy's \
                 reordering table guarantees no `\u{227A}` edge between them",
                self.first, self.second, place
            )
        } else {
            format!(
                "{} and {} conflict on {}; they sit in different threads, and \
                 only Store Atomicity — which varies per execution — can order \
                 them: no fence or data chain provides a guaranteed \
                 happens-before path",
                self.first, self.second, place
            )
        }
    }
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.witness())
    }
}

/// Who touches one address, summarized over the whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocationSummary {
    /// Threads that read the address (loads and RMWs).
    pub readers: BTreeSet<usize>,
    /// Threads that write the address (stores and RMWs).
    pub writers: BTreeSet<usize>,
}

impl LocationSummary {
    /// Whether the location is free of cross-thread conflicts: at most
    /// one thread writes it, and no other thread accesses it at all
    /// while someone writes.
    pub fn conflict_free(&self) -> bool {
        match self.writers.len() {
            0 => true,
            1 => {
                let w = *self.writers.iter().next().expect("one writer");
                self.readers.iter().all(|&r| r == w)
            }
            _ => false,
        }
    }
}

/// The full result of [`find_races`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Every conflicting unordered pair, in deterministic order.
    pub races: Vec<Race>,
    /// Per statically-known address: which threads read/write it.
    pub footprint: BTreeMap<Addr, LocationSummary>,
    /// Accesses whose address is statically unknown (they may alias
    /// anything and conservatively race with every other-thread access).
    pub unknown_addr: Vec<Access>,
}

impl RaceReport {
    /// Whether the program is statically data-race-free under the
    /// analyzed policy.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

fn accesses_of(events: &[StaticEvent], thread: usize) -> Vec<Access> {
    events
        .iter()
        .filter(|e| e.kind.is_memory())
        .map(|e| Access {
            thread,
            instr_index: e.instr_index,
            issue_index: e.issue_index,
            mode: if e.kind.reads_memory() && e.kind.writes_memory() {
                AccessMode::Atomic
            } else if e.kind.writes_memory() {
                AccessMode::Write
            } else {
                AccessMode::Read
            },
            addr: e.addr,
        })
        .collect()
}

fn classify(a: &Access, b: &Access) -> RaceKind {
    if a.mode == AccessMode::Atomic || b.mode == AccessMode::Atomic {
        RaceKind::Atomic
    } else if a.writes() && b.writes() {
        RaceKind::WriteWrite
    } else {
        RaceKind::ReadWrite
    }
}

/// Finds every conflicting unordered access pair of `program` under
/// `policy`.
///
/// Cross-thread conflicting pairs are always races (no inter-thread
/// order is statically guaranteed). Same-thread pairs are checked
/// against the guaranteed `≺` of [`samm_core::static_order`]: for
/// straight-line threads the full transitive relation, for branchy
/// threads the direct pairwise guarantee only (conservative in the
/// sound direction — more pairs count as unordered).
pub fn find_races(program: &Program, policy: &Policy) -> RaceReport {
    let mut races = Vec::new();
    let mut footprint: BTreeMap<Addr, LocationSummary> = BTreeMap::new();
    let mut unknown_addr = Vec::new();
    let per_thread: Vec<(ThreadEvents, Vec<Access>)> = program
        .threads()
        .iter()
        .enumerate()
        .map(|(t, thread)| {
            let te = thread_events(thread);
            let accesses = accesses_of(&te.events, t);
            (te, accesses)
        })
        .collect();

    for (te, accesses) in &per_thread {
        for a in accesses {
            match a.addr {
                Some(addr) => {
                    let entry = footprint.entry(addr).or_default();
                    if a.writes() {
                        entry.writers.insert(a.thread);
                    }
                    if matches!(a.mode, AccessMode::Read | AccessMode::Atomic) {
                        entry.readers.insert(a.thread);
                    }
                }
                None => unknown_addr.push(*a),
            }
        }
        // Same-thread pairs: race only when the table leaves a
        // conflicting pair unordered.
        let order = te
            .straight_line
            .then(|| StaticOrder::compute(&te.events, policy));
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i + 1) {
                if !(a.may_alias(b) && (a.writes() || b.writes())) {
                    continue;
                }
                let ordered = match &order {
                    Some(order) => {
                        // Access issue order == event list order.
                        order.ordered(a.issue_index as usize, b.issue_index as usize)
                    }
                    None => {
                        let ea = &te.events[a.issue_index as usize];
                        let eb = &te.events[b.issue_index as usize];
                        samm_core::static_order::guaranteed_edge(ea, eb, policy)
                    }
                };
                // A same-address Bypass pair (TSO store->load) is not a
                // guaranteed edge, but it IS value-deterministic: the
                // bypassed load reads exactly the buffered store. Not a
                // race.
                let bypass_deterministic = {
                    let ea = &te.events[a.issue_index as usize];
                    let eb = &te.events[b.issue_index as usize];
                    ea.kind == samm_core::static_order::EventKind::Store
                        && eb.kind == samm_core::static_order::EventKind::Load
                        && policy.combined_constraint(ea.kind.classes(), eb.kind.classes())
                            == samm_core::policy::Constraint::Bypass
                        && matches!((ea.addr, eb.addr), (Some(x), Some(y)) if x == y)
                };
                if !ordered && !bypass_deterministic {
                    races.push(Race {
                        first: *a,
                        second: *b,
                        addr: a.addr.and(b.addr).and(a.addr),
                        kind: classify(a, b),
                        same_thread: true,
                    });
                }
            }
        }
    }

    // Cross-thread conflicting pairs are always unordered.
    for (t1, (_, accesses1)) in per_thread.iter().enumerate() {
        for (_, accesses2) in per_thread.iter().skip(t1 + 1) {
            for a in accesses1 {
                for b in accesses2 {
                    if a.may_alias(b) && (a.writes() || b.writes()) {
                        races.push(Race {
                            first: *a,
                            second: *b,
                            addr: a.addr.and(b.addr).and(a.addr),
                            kind: classify(a, b),
                            same_thread: false,
                        });
                    }
                }
            }
        }
    }

    races.sort_by_key(|r| (r.first, r.second));
    RaceReport {
        races,
        footprint,
        unknown_addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::ids::{Reg, Value};
    use samm_core::instr::{Instr, Operand, ThreadProgram};

    fn imm(v: u64) -> Operand {
        Operand::Imm(Value::new(v))
    }

    fn sb() -> Program {
        let thread = |mine: u64, theirs: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: imm(mine),
                    val: imm(1),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: imm(theirs),
                },
            ])
        };
        Program::new(vec![thread(0, 1), thread(1, 0)])
    }

    #[test]
    fn sb_has_two_read_write_races() {
        let report = find_races(&sb(), &Policy::weak());
        assert_eq!(report.races.len(), 2);
        assert!(report
            .races
            .iter()
            .all(|r| r.kind == RaceKind::ReadWrite && !r.same_thread));
    }

    #[test]
    fn thread_private_program_is_race_free() {
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
        ]);
        let u = ThreadProgram::new(vec![Instr::Store {
            addr: imm(1),
            val: imm(2),
        }]);
        let report = find_races(&Program::new(vec![t, u]), &Policy::weak());
        assert!(report.is_race_free(), "{:?}", report.races);
        assert!(report.footprint[&Addr::new(0)].conflict_free());
    }

    #[test]
    fn read_only_sharing_is_race_free() {
        let reader = || {
            ThreadProgram::new(vec![Instr::Load {
                dst: Reg::new(0),
                addr: imm(7),
            }])
        };
        let report = find_races(&Program::new(vec![reader(), reader()]), &Policy::weak());
        assert!(report.is_race_free());
    }

    #[test]
    fn competing_rmws_race_as_atomic() {
        let t = || {
            ThreadProgram::new(vec![Instr::Rmw {
                dst: Reg::new(0),
                addr: imm(0),
                op: samm_core::instr::RmwOp::FetchAdd,
                src: imm(1),
            }])
        };
        let report = find_races(&Program::new(vec![t(), t()]), &Policy::weak());
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].kind, RaceKind::Atomic);
    }

    #[test]
    fn unknown_addresses_race_with_everything() {
        let writer = ThreadProgram::new(vec![Instr::Store {
            addr: imm(0),
            val: imm(1),
        }]);
        let pointer_reader = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(1),
            },
            Instr::Load {
                dst: Reg::new(1),
                addr: Operand::Reg(Reg::new(0)),
            },
        ]);
        let report = find_races(&Program::new(vec![writer, pointer_reader]), &Policy::weak());
        assert_eq!(report.unknown_addr.len(), 1);
        // store(0) vs pointer load, store(0) vs load(1)? load(1) reads addr 1
        // (no conflict); the pointer load conflicts with the store.
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].addr, None);
    }

    #[test]
    fn broken_table_yields_same_thread_race() {
        use samm_core::policy::{Constraint, OpClass};
        // Free out the store->store determinism entry.
        let broken = Policy::custom(
            "broken",
            Policy::weak()
                .table()
                .with_entry(OpClass::Store, OpClass::Store, Constraint::Free),
        );
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Store {
                addr: imm(0),
                val: imm(2),
            },
        ]);
        let report = find_races(&Program::new(vec![t]), &broken);
        assert_eq!(report.races.len(), 1);
        assert!(report.races[0].same_thread);
        assert_eq!(report.races[0].kind, RaceKind::WriteWrite);
        // The shipped weak table orders the pair.
        let t2 = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Store {
                addr: imm(0),
                val: imm(2),
            },
        ]);
        assert!(find_races(&Program::new(vec![t2]), &Policy::weak()).is_race_free());
    }

    #[test]
    fn tso_bypass_pair_is_not_a_same_thread_race() {
        let t = ThreadProgram::new(vec![
            Instr::Store {
                addr: imm(0),
                val: imm(1),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: imm(0),
            },
        ]);
        let report = find_races(&Program::new(vec![t]), &Policy::tso());
        assert!(report.is_race_free(), "{:?}", report.races);
    }

    #[test]
    fn witness_text_names_both_sides() {
        let report = find_races(&sb(), &Policy::weak());
        let w = report.races[0].witness();
        assert!(w.contains("T0"), "{w}");
        assert!(w.contains("T1"), "{w}");
        assert!(w.contains("happens-before"), "{w}");
    }
}
