//! Static robustness certification: Shasha–Snir delay-set / critical-cycle
//! analysis over the reordering table.
//!
//! A program is *robust* against a store-atomic policy when its behaviour
//! set under that policy equals its SC behaviour set — every weak-model
//! query about it can then be answered by a single SC run. PR 2's
//! certifier ([`mod@crate::certify`]) only recognises two robust shapes
//! (data-race freedom and total local order); this module decides the
//! general case for the straight-line, known-address fragment:
//!
//! 1. Classify every program-order pair of each thread as *delayable*
//!    (the table does not guarantee a `≺` edge — [`StaticOrder`] is the
//!    guaranteed under-approximation, so delayability over-approximates
//!    what the machine may actually reorder; `Bypass` pairs are always
//!    delayable, covering TSO store-buffer forwarding) or non-delayable.
//! 2. Build the *conflict graph*: cross-thread edges between accesses of
//!    the same statically-known address where at least one side writes.
//! 3. Search for a **harmful cycle**: threads `t_1 … t_k` (`k ≥ 2`, all
//!    distinct), per thread an entry/exit access pair `a_i ≤po b_i`
//!    (possibly equal), a conflict edge from each `b_i` to `a_{i+1 mod k}`,
//!    and at least one segment with `a_i ≠ b_i` left unordered by the
//!    guaranteed `≺`. This segment class contains every Shasha–Snir
//!    critical cycle (straight-line program order is total per thread, so
//!    a minimal cycle visits each thread in one contiguous segment), and a
//!    non-SC execution of any table-based machine that respects the
//!    guaranteed order must relax a delayable segment of some such cycle.
//!
//! No harmful cycle ⇒ every execution is SC-equivalent ⇒ with
//! `SC ⊒ policy` in table strength (so SC behaviours are also policy
//! behaviours), the behaviour sets coincide: [`StaticVerdict::Robust`],
//! carrying a [`RobustCertificate`] that re-verifies by recomputation.
//! A harmful cycle is only *candidate* evidence of non-robustness —
//! delay-set analysis over-approximates — so [`analyze_robustness`]
//! claims [`Robustness::NotRobust`] only after [`CriticalCycle::verify`]
//! replays the cycle into a concrete weak outcome the pruned engine finds
//! outside the SC set; an unrealizable cycle degrades to
//! [`Robustness::Unknown`], the sound fall-back-to-enumeration verdict.
//!
//! The cycles also *prescribe* the repair: a fence per delayable segment
//! breaks the cycle, and [`break_cycles`] searches the smallest placement
//! (over [`useful_fence_slots`]) that makes the program robust.
//! [`synthesize_with_robust_seed`] feeds that size to the enumeration
//! synthesizer as an upper bound, preserving exact minimality while
//! pruning its breadth-first search.

use std::fmt;

use samm_core::enumerate::EnumConfig;
use samm_core::error::EnumError;
use samm_core::ids::Addr;
use samm_core::instr::{Program, ThreadProgram};
use samm_core::outcome::Outcome;
use samm_core::policy::{OpClass, Policy};
use samm_core::pruned::enumerate_pruned;
use samm_core::static_order::{thread_events, StaticEvent, StaticOrder};
use samm_litmus::ast::CompiledCondition;
use samm_litmus::fences::{
    insert_fence, synthesize_fences, useful_fence_slots, FenceFix, FenceSlot,
};

/// Why the analysis declined to decide ([`StaticVerdict::Unknown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownReason {
    /// A thread contains branches or jumps; program order is not total,
    /// so the segment search would be incomplete.
    BranchyThread(usize),
    /// A memory access with a register-held (statically unknown)
    /// address; it may alias anything, including speculatively.
    UnknownAddress {
        /// The thread of the opaque access.
        thread: usize,
        /// Its instruction index in the thread listing.
        instr_index: usize,
    },
    /// The table breaks one of the three `x ≠ y` single-thread
    /// determinism cells; even one thread alone may diverge from SC.
    NonDeterministicTable,
    /// The policy is not weaker than SC in table strength, so the SC
    /// behaviour set need not be contained in the policy's and "no
    /// harmful cycle" would only prove one inclusion.
    NotWeakerThanSc,
    /// A harmful cycle was found but the pruned oracle could not realize
    /// any behaviour outside the SC set — the static over-approximation
    /// was too coarse here; enumeration must answer.
    CycleUnrealizable(Box<CriticalCycle>),
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::BranchyThread(t) => {
                write!(f, "thread {t} is not straight-line")
            }
            UnknownReason::UnknownAddress {
                thread,
                instr_index,
            } => write!(
                f,
                "thread {thread}, instruction {instr_index}: register-held address"
            ),
            UnknownReason::NonDeterministicTable => {
                f.write_str("the table breaks single-thread determinism")
            }
            UnknownReason::NotWeakerThanSc => {
                f.write_str("the policy is not weaker than SC in table strength")
            }
            UnknownReason::CycleUnrealizable(c) => write!(
                f,
                "a {}-thread critical cycle exists statically but no non-SC \
                 behaviour realizes it",
                c.segments.len()
            ),
        }
    }
}

/// One per-thread segment of a critical cycle: the accesses the cycle
/// enters and leaves the thread through, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Thread index.
    pub thread: usize,
    /// Event-list index (see [`thread_events`]) of the entry access.
    pub entry: usize,
    /// Event-list index of the exit access; `entry ≤ exit`.
    pub exit: usize,
    /// `true` when `entry ≠ exit` and the guaranteed `≺` leaves the pair
    /// unordered — the table permits the machine to delay the entry past
    /// the exit, which is what lets the cycle produce non-SC behaviour.
    pub delayable: bool,
}

/// A harmful cycle through the conflict graph: the machine-readable
/// explanation of *why* a program may exhibit non-SC behaviour.
///
/// `segments[i].exit` conflicts with `segments[(i+1) % k].entry` on
/// `links[i]`; at least one segment is delayable. [`CriticalCycle::check`]
/// re-validates the structure against the program;
/// [`CriticalCycle::verify`] replays it into a concrete outcome via the
/// pruned engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Name of the policy the cycle was found under.
    pub policy: String,
    /// The per-thread segments, in cycle order; threads are distinct.
    pub segments: Vec<Segment>,
    /// `links[i]` is the conflict address joining `segments[i].exit` to
    /// `segments[(i+1) % k].entry`.
    pub links: Vec<Addr>,
}

impl CriticalCycle {
    /// Re-validates the cycle against `program` and `policy`: distinct
    /// threads, program-ordered segments with correctly recomputed
    /// delayability, conflicting links (same known address, at least one
    /// writer) and at least one delayable segment. Returns `false` on
    /// any mismatch — including a policy-name mismatch, stale event
    /// indices, or a tampered `delayable` flag.
    pub fn check(&self, program: &Program, policy: &Policy) -> bool {
        if policy.name() != self.policy
            || self.segments.len() < 2
            || self.links.len() != self.segments.len()
        {
            return false;
        }
        let mut threads: Vec<usize> = self.segments.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        if threads.len() != self.segments.len() {
            return false;
        }
        if !self.segments.iter().any(|s| s.delayable) {
            return false;
        }
        let k = self.segments.len();
        for (i, seg) in self.segments.iter().enumerate() {
            let Some(thread) = program.threads().get(seg.thread) else {
                return false;
            };
            let te = thread_events(thread);
            if !te.straight_line {
                return false;
            }
            let (Some(entry), Some(exit)) = (te.events.get(seg.entry), te.events.get(seg.exit))
            else {
                return false;
            };
            if seg.entry > seg.exit
                || !entry.kind.is_memory()
                || !exit.kind.is_memory()
                || entry.addr.is_none()
                || exit.addr.is_none()
            {
                return false;
            }
            let order = StaticOrder::compute(&te.events, policy);
            let delayable = seg.entry != seg.exit && !order.ordered(seg.entry, seg.exit);
            if delayable != seg.delayable {
                return false;
            }
            // The link from this exit to the next segment's entry.
            let next = &self.segments[(i + 1) % k];
            let next_te = thread_events(&program.threads()[next.thread]);
            let Some(next_entry) = next_te.events.get(next.entry) else {
                return false;
            };
            let conflict = exit.addr == Some(self.links[i])
                && next_entry.addr == Some(self.links[i])
                && (exit.kind.writes_memory() || next_entry.kind.writes_memory());
            if !conflict {
                return false;
            }
        }
        true
    }

    /// Replays the cycle into a concrete weak witness: enumerates
    /// `program` under `policy` and under SC with the pruned engine and
    /// returns an outcome observable under `policy` but not under SC.
    /// `Ok(None)` means the cycle is statically well-formed but
    /// unrealizable (or fails [`CriticalCycle::check`]): the program may
    /// still be robust and enumeration must decide.
    ///
    /// # Errors
    ///
    /// Propagates enumeration failures.
    pub fn verify(
        &self,
        program: &Program,
        policy: &Policy,
        config: &EnumConfig,
    ) -> Result<Option<Outcome>, EnumError> {
        if !self.check(program, policy) {
            return Ok(None);
        }
        let config = EnumConfig {
            keep_executions: false,
            ..config.clone()
        };
        let weak = enumerate_pruned(program, policy, &config)?;
        let sc = enumerate_pruned(program, &Policy::sequential_consistency(), &config)?;
        let witness = weak.outcomes.difference(&sc.outcomes).next().cloned();
        Ok(witness)
    }
}

impl fmt::Display for CriticalCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "critical cycle under {}:", self.policy)?;
        for (i, seg) in self.segments.iter().enumerate() {
            write!(
                f,
                " T{}[{}..{}{}] -{}->",
                seg.thread,
                seg.entry,
                seg.exit,
                if seg.delayable { " delayable" } else { "" },
                self.links[i]
            )?;
        }
        write!(
            f,
            " T{}[{}]",
            self.segments[0].thread, self.segments[0].entry
        )
    }
}

/// A machine-checkable robustness certificate: no harmful cycle exists,
/// so the behaviour set under the certified policy equals the SC set.
///
/// The evidence is the exhaustively-searched shape of the conflict
/// graph; [`RobustCertificate::check`] recomputes the whole analysis and
/// compares, so a stale certificate (program edited, policy swapped)
/// fails closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobustCertificate {
    /// Name of the certified policy.
    pub policy: String,
    /// Number of threads analyzed.
    pub threads: usize,
    /// Number of cross-thread conflict edges in the graph the cycle
    /// search covered.
    pub conflict_edges: usize,
    /// Number of delayable program-order segments between
    /// conflict-capable accesses — each a potential cycle chord the
    /// search proved harmless.
    pub delayable_segments: usize,
}

impl RobustCertificate {
    /// Recomputes the analysis and compares: `true` iff `program` under
    /// `policy` is still statically robust with identical evidence.
    pub fn check(&self, program: &Program, policy: &Policy) -> bool {
        matches!(analyze_static(program, policy), StaticVerdict::Robust(c) if c == *self)
    }
}

/// The verdict of the purely static pass ([`analyze_static`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticVerdict {
    /// No harmful cycle: behaviours under the policy equal SC
    /// behaviours. Sound — never emitted unless the search was complete
    /// over the guarded fragment.
    Robust(RobustCertificate),
    /// A harmful cycle exists statically. *Candidate* non-robustness:
    /// [`CriticalCycle::verify`] must realize it before the program may
    /// be called non-robust.
    CycleFound(CriticalCycle),
    /// The program or policy is outside the decidable fragment.
    Unknown(UnknownReason),
}

impl StaticVerdict {
    /// Short machine-readable name: `robust`, `cycle` or `unknown`.
    pub fn name(&self) -> &'static str {
        match self {
            StaticVerdict::Robust(_) => "robust",
            StaticVerdict::CycleFound(_) => "cycle",
            StaticVerdict::Unknown(_) => "unknown",
        }
    }
}

/// The final robustness verdict ([`analyze_robustness`]): every claim is
/// backed by replayable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Robustness {
    /// Statically certified: behaviour set equals the SC set.
    Robust(RobustCertificate),
    /// Non-robust, with both the static cause and a dynamic witness.
    NotRobust {
        /// The harmful cycle the static pass found.
        cycle: CriticalCycle,
        /// An outcome observable under the policy but not under SC,
        /// found by the pruned engine.
        witness: Outcome,
    },
    /// Sound fallback: enumeration must answer.
    Unknown(UnknownReason),
}

/// One thread's analyzed shape.
struct ThreadGraph {
    events: Vec<StaticEvent>,
    order: StaticOrder,
    /// Event indices that carry a cross-thread conflict edge — the only
    /// accesses a cycle can enter or leave the thread through.
    ports: Vec<usize>,
}

fn conflicts(a: &StaticEvent, b: &StaticEvent) -> bool {
    a.addr.is_some() && a.addr == b.addr && (a.kind.writes_memory() || b.kind.writes_memory())
}

/// Whether the table keeps single-threaded execution deterministic (the
/// paper's three `x ≠ y` cells each order or bypass-resolve same-address
/// pairs).
fn single_thread_deterministic(policy: &Policy) -> bool {
    [
        (OpClass::Load, OpClass::Store),
        (OpClass::Store, OpClass::Load),
        (OpClass::Store, OpClass::Store),
    ]
    .into_iter()
    .all(|(a, b)| policy.constraint(a, b).observational_strength() >= 1)
}

/// The static delay-set analysis. Complete over straight-line programs
/// whose memory addresses are all statically known, under any policy
/// that is table-weaker than SC and single-thread deterministic;
/// anything else is [`StaticVerdict::Unknown`].
pub fn analyze_static(program: &Program, policy: &Policy) -> StaticVerdict {
    if !single_thread_deterministic(policy) {
        return StaticVerdict::Unknown(UnknownReason::NonDeterministicTable);
    }
    if !Policy::sequential_consistency().at_least_as_strong(policy) {
        return StaticVerdict::Unknown(UnknownReason::NotWeakerThanSc);
    }
    let mut graphs: Vec<ThreadGraph> = Vec::with_capacity(program.threads().len());
    for (t, thread) in program.threads().iter().enumerate() {
        let te = thread_events(thread);
        if !te.straight_line {
            return StaticVerdict::Unknown(UnknownReason::BranchyThread(t));
        }
        if let Some(e) = te.events.iter().find(|e| e.addr_unknown()) {
            return StaticVerdict::Unknown(UnknownReason::UnknownAddress {
                thread: t,
                instr_index: e.instr_index,
            });
        }
        let order = StaticOrder::compute(&te.events, policy);
        graphs.push(ThreadGraph {
            events: te.events,
            order,
            ports: Vec::new(),
        });
    }
    // Conflict ports: which accesses of each thread conflict with some
    // access of another thread.
    let mut conflict_edges = 0usize;
    for t1 in 0..graphs.len() {
        for i in 0..graphs[t1].events.len() {
            if !graphs[t1].events[i].kind.is_memory() {
                continue;
            }
            let mut is_port = false;
            for (t2, other) in graphs.iter().enumerate() {
                if t2 == t1 {
                    continue;
                }
                for b in &other.events {
                    if b.kind.is_memory() && conflicts(&graphs[t1].events[i], b) {
                        is_port = true;
                        if t2 > t1 {
                            conflict_edges += 1;
                        }
                    }
                }
            }
            if is_port {
                graphs[t1].ports.push(i);
            }
        }
    }
    // Count delayable segments between ports (certificate evidence).
    let mut delayable_segments = 0usize;
    for g in &graphs {
        for (pi, &a) in g.ports.iter().enumerate() {
            for &b in &g.ports[pi + 1..] {
                if !g.order.ordered(a, b) {
                    delayable_segments += 1;
                }
            }
        }
    }
    // Exhaustive harmful-cycle search.
    if let Some(cycle) = find_harmful_cycle(&graphs, policy) {
        return StaticVerdict::CycleFound(cycle);
    }
    StaticVerdict::Robust(RobustCertificate {
        policy: policy.name().to_owned(),
        threads: graphs.len(),
        conflict_edges,
        delayable_segments,
    })
}

/// Depth-first search for a harmful cycle. Roots at the minimal thread
/// of the cycle (duplicates by rotation are skipped; reversals are
/// harmless re-findings). Returns the first cycle found, which by the
/// ascending iteration order is a deterministic, minimal-start witness.
fn find_harmful_cycle(graphs: &[ThreadGraph], policy: &Policy) -> Option<CriticalCycle> {
    let n = graphs.len();
    for t0 in 0..n {
        for &a0 in &graphs[t0].ports {
            let mut visited = vec![false; n];
            visited[t0] = true;
            let mut segments = Vec::new();
            if let Some(cycle) = extend(
                graphs,
                policy,
                t0,
                a0,
                t0,
                a0,
                &mut visited,
                &mut segments,
                0,
            ) {
                return Some(cycle);
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn extend(
    graphs: &[ThreadGraph],
    policy: &Policy,
    start_thread: usize,
    start_entry: usize,
    thread: usize,
    entry: usize,
    visited: &mut Vec<bool>,
    segments: &mut Vec<(Segment, Addr)>,
    delayable_count: usize,
) -> Option<CriticalCycle> {
    let g = &graphs[thread];
    for &exit in &g.ports {
        if exit < entry {
            continue;
        }
        let delayable = exit != entry && !g.order.ordered(entry, exit);
        let exit_event = &g.events[exit];
        let total_delayable = delayable_count + usize::from(delayable);
        // Try to close the cycle back to the start.
        if !segments.is_empty() || thread != start_thread {
            let start_event = &graphs[start_thread].events[start_entry];
            if thread != start_thread && conflicts(exit_event, start_event) && total_delayable >= 1
            {
                let mut segs: Vec<Segment> = Vec::with_capacity(segments.len() + 1);
                let mut links: Vec<Addr> = Vec::with_capacity(segments.len() + 1);
                for &(s, link) in segments.iter() {
                    segs.push(s);
                    links.push(link);
                }
                segs.push(Segment {
                    thread,
                    entry,
                    exit,
                    delayable,
                });
                links.push(exit_event.addr.expect("ports have known addresses"));
                return Some(CriticalCycle {
                    policy: policy.name().to_owned(),
                    segments: segs,
                    links,
                });
            }
        }
        // Extend into an unvisited thread. Rooting the cycle at its
        // minimal thread: only visit threads above the start.
        for (next_thread, next_graph) in graphs.iter().enumerate() {
            if visited[next_thread] || next_thread <= start_thread {
                continue;
            }
            for &next_entry in &next_graph.ports {
                if !conflicts(exit_event, &next_graph.events[next_entry]) {
                    continue;
                }
                visited[next_thread] = true;
                segments.push((
                    Segment {
                        thread,
                        entry,
                        exit,
                        delayable,
                    },
                    exit_event.addr.expect("ports have known addresses"),
                ));
                let found = extend(
                    graphs,
                    policy,
                    start_thread,
                    start_entry,
                    next_thread,
                    next_entry,
                    visited,
                    segments,
                    total_delayable,
                );
                segments.pop();
                visited[next_thread] = false;
                if found.is_some() {
                    return found;
                }
            }
        }
    }
    None
}

/// The full, dynamically-confirmed analysis: like [`analyze_static`],
/// but a found cycle is only reported as [`Robustness::NotRobust`] after
/// [`CriticalCycle::verify`] realizes it into a concrete non-SC outcome
/// with the pruned engine. Every reported cycle is therefore realizable
/// by construction, and every `Robust` claim is static-complete — the
/// two halves the differential fortress checks independently.
///
/// # Errors
///
/// Propagates enumeration failures from the verification replay.
pub fn analyze_robustness(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<Robustness, EnumError> {
    match analyze_static(program, policy) {
        StaticVerdict::Robust(cert) => Ok(Robustness::Robust(cert)),
        StaticVerdict::Unknown(reason) => Ok(Robustness::Unknown(reason)),
        StaticVerdict::CycleFound(cycle) => match cycle.verify(program, policy, config)? {
            Some(witness) => Ok(Robustness::NotRobust { cycle, witness }),
            None => Ok(Robustness::Unknown(UnknownReason::CycleUnrealizable(
                Box::new(cycle),
            ))),
        },
    }
}

/// Applies fence placements to a program (positions against the
/// original instruction indices; multiple per thread supported).
fn apply_slots(program: &Program, placements: &[FenceSlot]) -> Program {
    let mut threads: Vec<ThreadProgram> = program.threads().to_vec();
    for (t, thread) in threads.iter_mut().enumerate() {
        let mut positions: Vec<usize> = placements
            .iter()
            .filter(|&&(pt, _)| pt == t)
            .map(|&(_, pos)| pos)
            .collect();
        positions.sort_unstable_by(|a, b| b.cmp(a));
        for pos in positions {
            *thread = insert_fence(thread, pos);
        }
    }
    Program::with_init(threads, program.init_entries().collect())
}

/// Searches for a smallest fence placement (over
/// [`useful_fence_slots`]) under which [`analyze_static`] certifies the
/// program robust — every harmful cycle acquires a fence in each of its
/// delayable segments. Purely static: no enumeration. Returns `None`
/// when the base program is outside the decidable fragment or no
/// placement works (e.g. an unfenceable RMW race).
///
/// Breadth-first over placement size, so the result is minimal *among
/// static certificates*; the enumeration-based synthesizer may find a
/// smaller fix when robustness is stronger than the query needs (it
/// forbids one condition, robustness forbids every non-SC behaviour).
pub fn break_cycles(program: &Program, policy: &Policy) -> Option<Vec<FenceSlot>> {
    match analyze_static(program, policy) {
        StaticVerdict::Robust(_) => return Some(Vec::new()),
        StaticVerdict::Unknown(_) => return None,
        StaticVerdict::CycleFound(_) => {}
    }
    let slots = useful_fence_slots(program, policy);
    for k in 1..=slots.len() {
        let mut chosen: Vec<FenceSlot> = Vec::with_capacity(k);
        if let Some(fix) = choose_k(program, policy, &slots, k, 0, &mut chosen) {
            return Some(fix);
        }
    }
    None
}

fn choose_k(
    program: &Program,
    policy: &Policy,
    slots: &[FenceSlot],
    k: usize,
    from: usize,
    chosen: &mut Vec<FenceSlot>,
) -> Option<Vec<FenceSlot>> {
    if k == 0 {
        let fenced = apply_slots(program, chosen);
        return matches!(analyze_static(&fenced, policy), StaticVerdict::Robust(_))
            .then(|| chosen.clone());
    }
    for i in from..slots.len() {
        chosen.push(slots[i]);
        let found = choose_k(program, policy, slots, k - 1, i + 1, chosen);
        chosen.pop();
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Enumeration-based fence synthesis seeded by the static analysis:
/// [`break_cycles`] provides an upper bound on the minimum placement
/// size (a robust program forbids everything SC forbids, so the static
/// placement already suppresses any SC-unobservable condition), and
/// [`synthesize_fences`] searches breadth-first up to that bound —
/// returning the exact same minimal fix it would find unseeded, at a
/// fraction of the candidate enumerations.
///
/// When the static pass cannot certify any placement the search falls
/// back to the full slot budget, so the result is always identical to
/// unseeded synthesis.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn synthesize_with_robust_seed(
    program: &Program,
    forbidden: &CompiledCondition,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<Option<FenceFix>, EnumError> {
    let budget = match break_cycles(program, policy) {
        Some(placement) => placement.len(),
        None => useful_fence_slots(program, policy).len(),
    };
    synthesize_fences(program, forbidden, policy, budget, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::ids::{Reg, Value};
    use samm_core::instr::{Instr, Operand};
    use samm_litmus::catalog;

    fn imm(v: u64) -> Operand {
        Operand::Imm(Value::new(v))
    }

    fn store(addr: u64, val: u64) -> Instr {
        Instr::Store {
            addr: imm(addr),
            val: imm(val),
        }
    }

    fn load(dst: usize, addr: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(dst),
            addr: imm(addr),
        }
    }

    fn fast() -> EnumConfig {
        EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        }
    }

    #[test]
    fn sb_is_non_robust_under_every_weak_model() {
        let sb = catalog::sb().test.program;
        for model in [Policy::tso(), Policy::pso(), Policy::weak()] {
            let verdict = analyze_static(&sb, &model);
            let StaticVerdict::CycleFound(cycle) = verdict else {
                panic!(
                    "SB under {} must yield a cycle, got {verdict:?}",
                    model.name()
                );
            };
            assert!(cycle.check(&sb, &model));
            let witness = cycle
                .verify(&sb, &model, &fast())
                .expect("enumeration succeeds")
                .expect("SB's cycle is realizable");
            // The witness is the 0/0 relaxation: both loads read 0.
            assert_eq!(witness.reg(0, Reg::new(0)), Value::ZERO);
            assert_eq!(witness.reg(1, Reg::new(0)), Value::ZERO);
        }
    }

    #[test]
    fn sb_is_robust_under_sc_and_when_fenced() {
        let sb = catalog::sb().test.program;
        assert!(matches!(
            analyze_static(&sb, &Policy::sequential_consistency()),
            StaticVerdict::Robust(_)
        ));
        let fenced = catalog::sb_fenced().test.program;
        for model in [Policy::tso(), Policy::pso(), Policy::weak()] {
            let StaticVerdict::Robust(cert) = analyze_static(&fenced, &model) else {
                panic!("SB+fences must be robust under {}", model.name());
            };
            assert!(cert.check(&fenced, &model));
            assert!(!cert.check(&sb, &model), "stale evidence must fail");
        }
    }

    #[test]
    fn tso_bypass_cycle_is_found_without_an_explicit_reordering() {
        // fig10's essence: store x; load x (bypass) | cross-thread
        // conflicts. Same-address bypass pairs are always delayable, so
        // store-buffer forwarding behaviours are covered.
        let t0 = ThreadProgram::new(vec![store(0, 1), load(0, 0), load(1, 1)]);
        let t1 = ThreadProgram::new(vec![store(1, 1), load(0, 1), load(1, 0)]);
        let p = Program::new(vec![t0, t1]);
        let verdict = analyze_static(&p, &Policy::tso());
        assert!(
            matches!(verdict, StaticVerdict::CycleFound(_)),
            "got {verdict:?}"
        );
    }

    #[test]
    fn branchy_and_pointer_programs_are_unknown() {
        let branchy = ThreadProgram::new(vec![
            load(0, 0),
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            store(0, 1),
        ]);
        let other = ThreadProgram::new(vec![store(0, 2)]);
        assert!(matches!(
            analyze_static(&Program::new(vec![branchy, other.clone()]), &Policy::weak()),
            StaticVerdict::Unknown(UnknownReason::BranchyThread(0))
        ));
        let pointer = ThreadProgram::new(vec![
            load(0, 0),
            Instr::Load {
                dst: Reg::new(1),
                addr: Operand::Reg(Reg::new(0)),
            },
        ]);
        assert!(matches!(
            analyze_static(&Program::new(vec![pointer, other]), &Policy::weak()),
            StaticVerdict::Unknown(UnknownReason::UnknownAddress { thread: 0, .. })
        ));
    }

    #[test]
    fn broken_tables_are_declined() {
        use samm_core::policy::{Constraint, ConstraintTable};
        let chaos = Policy::custom(
            "chaos",
            ConstraintTable::from_rows([[Constraint::Free; 5]; 5]),
        );
        let p = catalog::sb_fenced().test.program;
        assert!(matches!(
            analyze_static(&p, &chaos),
            StaticVerdict::Unknown(UnknownReason::NonDeterministicTable)
        ));
    }

    #[test]
    fn racy_but_fenced_program_is_robust_beyond_drf_and_tlo() {
        // MP+fences plus thread-private scratch traffic: racy (x, flag),
        // local order not total (the scratch stores are unordered with
        // the flag store under weak), yet robust — the only conflicting
        // segments are fenced. Neither PR 2 certificate shape applies.
        let entry = catalog::mp_fenced_scratch();
        let p = &entry.test.program;
        for model in [Policy::tso(), Policy::pso(), Policy::weak()] {
            assert!(
                crate::certify(p, &model).is_none(),
                "the DRF/TLO certifier must decline under {}",
                model.name()
            );
            let StaticVerdict::Robust(cert) = analyze_static(p, &model) else {
                panic!("must be robust under {}", model.name());
            };
            assert!(cert.check(p, &model));
        }
    }

    #[test]
    fn analyze_robustness_confirms_cycles_dynamically() {
        let sb = catalog::sb().test.program;
        match analyze_robustness(&sb, &Policy::weak(), &fast()).unwrap() {
            Robustness::NotRobust { cycle, witness } => {
                assert!(cycle.check(&sb, &Policy::weak()));
                assert_eq!(witness.reg(0, Reg::new(0)), Value::ZERO);
            }
            other => panic!("SB under weak must be NotRobust, got {other:?}"),
        }
        let fenced = catalog::sb_fenced().test.program;
        assert!(matches!(
            analyze_robustness(&fenced, &Policy::weak(), &fast()).unwrap(),
            Robustness::Robust(_)
        ));
    }

    #[test]
    fn tampered_cycles_fail_check_and_refuse_to_verify() {
        let sb = catalog::sb().test.program;
        let StaticVerdict::CycleFound(cycle) = analyze_static(&sb, &Policy::weak()) else {
            panic!("SB yields a cycle");
        };
        let mut wrong_policy = cycle.clone();
        wrong_policy.policy = "SC".into();
        assert!(!wrong_policy.check(&sb, &Policy::weak()));
        let mut wrong_flag = cycle.clone();
        wrong_flag.segments[0].delayable = false;
        assert!(!wrong_flag.check(&sb, &Policy::weak()));
        assert!(wrong_flag
            .verify(&sb, &Policy::weak(), &fast())
            .unwrap()
            .is_none());
        let mut wrong_link = cycle;
        wrong_link.links[0] = Addr::new(99);
        assert!(!wrong_link.check(&sb, &Policy::weak()));
    }

    #[test]
    fn break_cycles_recovers_the_known_minimal_placements() {
        // SB needs one fence per thread under weak; MP the same; under
        // PSO only the producer fence; CoRR one consumer fence.
        let cases = [
            (catalog::sb(), Policy::weak(), 2),
            (catalog::mp(), Policy::weak(), 2),
            (catalog::mp(), Policy::pso(), 1),
            (catalog::corr(), Policy::weak(), 1),
        ];
        for (entry, policy, expect) in cases {
            let placement = break_cycles(&entry.test.program, &policy)
                .unwrap_or_else(|| panic!("{} is fenceable", entry.test.name));
            assert_eq!(
                placement.len(),
                expect,
                "{} under {}: {placement:?}",
                entry.test.name,
                policy.name()
            );
            let fenced = apply_slots(&entry.test.program, &placement);
            assert!(matches!(
                analyze_static(&fenced, &policy),
                StaticVerdict::Robust(_)
            ));
        }
    }

    #[test]
    fn robust_programs_need_no_fences() {
        let fenced = catalog::sb_fenced().test.program;
        assert_eq!(break_cycles(&fenced, &Policy::weak()), Some(Vec::new()));
    }

    #[test]
    fn seeded_synthesis_matches_unseeded_minimality() {
        for (entry, policy) in [
            (catalog::sb(), Policy::weak()),
            (catalog::mp(), Policy::weak()),
            (catalog::mp(), Policy::pso()),
            (catalog::corr(), Policy::weak()),
        ] {
            let seeded = synthesize_with_robust_seed(
                &entry.test.program,
                &entry.test.conditions[0],
                &policy,
                &fast(),
            )
            .unwrap();
            let unseeded = synthesize_fences(
                &entry.test.program,
                &entry.test.conditions[0],
                &policy,
                4,
                &fast(),
            )
            .unwrap();
            match (seeded, unseeded) {
                (Some(s), Some(u)) => assert_eq!(
                    s.placements,
                    u.placements,
                    "{} under {}",
                    entry.test.name,
                    policy.name()
                ),
                (None, None) => {}
                (s, u) => panic!(
                    "{}: seeded {:?} vs unseeded {:?}",
                    entry.test.name,
                    s.map(|f| f.placements),
                    u.map(|f| f.placements)
                ),
            }
        }
    }

    #[test]
    fn unfixable_races_survive_seeding() {
        let entry = catalog::broken_increment();
        let fix = synthesize_with_robust_seed(
            &entry.test.program,
            &entry.test.conditions[0],
            &Policy::weak(),
            &fast(),
        )
        .unwrap();
        assert!(fix.is_none(), "a data race is not a fencing problem");
    }

    #[test]
    fn cycles_render_with_threads_and_links() {
        let StaticVerdict::CycleFound(cycle) =
            analyze_static(&catalog::sb().test.program, &Policy::weak())
        else {
            panic!("SB yields a cycle");
        };
        let text = cycle.to_string();
        assert!(text.contains("T0"), "{text}");
        assert!(text.contains("delayable"), "{text}");
    }
}
