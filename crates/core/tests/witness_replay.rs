//! Witness replay, completeness, and tamper detection.
//!
//! `Witness::verify` re-executes the recorded resolution path against a
//! fresh behaviour, so a witness is evidence only if replay reproduces
//! the claimed outcome and the serialization validates. These tests
//! check completeness (every enumerated outcome is witnessable under
//! every model) and that tampered witnesses are rejected.

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::explain::{find_witness, Goal, Serialization};
use samm_core::ids::Reg;
use samm_core::instr::{Instr, Program, ThreadProgram};
use samm_core::policy::Policy;

fn sb() -> Program {
    let t = |mine: u64, theirs: u64| {
        ThreadProgram::new(vec![
            Instr::Store {
                addr: mine.into(),
                val: 1u64.into(),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: theirs.into(),
            },
        ])
    };
    Program::new(vec![t(0, 1), t(1, 0)])
}

/// Figure 10's bypass program: each thread stores to its own variable,
/// loads it back (forwardable), then loads the other thread's.
fn forwarding() -> Program {
    let t = |mine: u64, theirs: u64| {
        ThreadProgram::new(vec![
            Instr::Store {
                addr: mine.into(),
                val: 1u64.into(),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: mine.into(),
            },
            Instr::Load {
                dst: Reg::new(1),
                addr: theirs.into(),
            },
        ])
    };
    Program::new(vec![t(0, 1), t(1, 0)])
}

fn policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("SC", Policy::sequential_consistency()),
        ("TSO", Policy::tso()),
        ("PSO", Policy::pso()),
        ("Weak", Policy::weak()),
    ]
}

#[test]
fn every_enumerated_sb_outcome_is_witnessable_under_every_model() {
    let program = sb();
    let config = EnumConfig::default();
    for (name, policy) in policies() {
        let result = enumerate(&program, &policy, &config).expect("enumeration succeeds");
        for outcome in result.outcomes.iter() {
            let goal = Goal::new(vec![
                (0, Reg::new(0), outcome.reg(0, Reg::new(0))),
                (1, Reg::new(0), outcome.reg(1, Reg::new(0))),
            ]);
            let witness = find_witness(&program, &policy, &config, &goal)
                .unwrap_or_else(|e| panic!("[{name}] {outcome}: {e}"))
                .unwrap_or_else(|| panic!("[{name}] {outcome}: enumerated but unwitnessable"));
            assert_eq!(witness.outcome, *outcome, "[{name}] witness outcome");
            witness
                .verify(&program, &policy, config.max_nodes_per_thread)
                .unwrap_or_else(|e| panic!("[{name}] {outcome}: replay failed: {e}"));
        }
    }
}

#[test]
fn tampered_outcome_is_rejected_on_replay() {
    let program = sb();
    let config = EnumConfig::default();
    let policy = Policy::weak();
    let goal = Goal::new(vec![
        (0, Reg::new(0), 0u64.into()),
        (1, Reg::new(0), 0u64.into()),
    ]);
    let mut witness = find_witness(&program, &policy, &config, &goal)
        .expect("enumeration succeeds")
        .expect("0/0 is Weak-allowed");
    // Claim a different final value than the replay produces.
    witness.outcome = samm_core::outcome::Outcome::new(vec![vec![1u64.into()], vec![1u64.into()]]);
    let err = witness
        .verify(&program, &policy, config.max_nodes_per_thread)
        .expect_err("forged outcome must fail verification");
    assert!(err.contains("outcome"), "unexpected error: {err}");
}

#[test]
fn tampered_serialization_is_rejected_on_replay() {
    let program = sb();
    let config = EnumConfig::default();
    let policy = Policy::sequential_consistency();
    let goal = Goal::new(vec![
        (0, Reg::new(0), 1u64.into()),
        (1, Reg::new(0), 1u64.into()),
    ]);
    let mut witness = find_witness(&program, &policy, &config, &goal)
        .expect("enumeration succeeds")
        .expect("1/1 is SC-allowed");
    let Serialization::Strict(order) = &mut witness.serialization else {
        panic!("SC witness must carry a strict serialization");
    };
    // Reversing the total order breaks the loads-see-latest-store rule.
    order.reverse();
    witness
        .verify(&program, &policy, config.max_nodes_per_thread)
        .expect_err("reversed serialization must fail verification");
}

#[test]
fn buffered_witness_survives_replay_but_not_reordering() {
    let program = forwarding();
    let config = EnumConfig::default();
    let policy = Policy::tso();
    // Both threads forward their own store and read 0 from the other:
    // Figure 10's outcome, which has no strict serialization.
    let goal = Goal::new(vec![
        (0, Reg::new(0), 1u64.into()),
        (0, Reg::new(1), 0u64.into()),
        (1, Reg::new(0), 1u64.into()),
        (1, Reg::new(1), 0u64.into()),
    ]);
    let mut witness = find_witness(&program, &policy, &config, &goal)
        .expect("enumeration succeeds")
        .expect("forwarding outcome is TSO-allowed");
    assert!(
        matches!(witness.serialization, Serialization::Buffered(_)),
        "bypass outcome needs a store-buffer serialization"
    );
    witness
        .verify(&program, &policy, config.max_nodes_per_thread)
        .expect("genuine buffered witness replays");
    let Serialization::Buffered(order) = &mut witness.serialization else {
        unreachable!()
    };
    order.reverse();
    witness
        .verify(&program, &policy, config.max_nodes_per_thread)
        .expect_err("reversed buffered serialization must fail");
}
