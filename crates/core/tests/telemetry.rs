//! Integration tests of the telemetry primitives: histogram quantiles
//! against an exact sorted-corpus oracle (the contract `samm-load`
//! relies on after dropping its sorted `Vec`), merge commutativity,
//! slow-log rotation, the Prometheus text-format checker, and the rate
//! window's deterministic clock hooks.

use samm_core::telemetry::{prom, Histogram, JsonlLog, RateCounter};

/// A deterministic LCG latency corpus spanning microseconds to seconds
/// — the shape a real request stream produces.
fn corpus(len: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Spread across ~6 decades: 1µs .. ~4s in nanoseconds.
        let magnitude = 10u64.pow(3 + (state >> 60) as u32 % 7);
        values.push(1 + (state >> 8) % magnitude);
    }
    values
}

/// The exact oracle the histogram replaces: nearest-rank percentile on
/// the fully sorted corpus.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantiles_agree_with_the_exact_oracle_within_error_bounds() {
    let values = corpus(10_000, 0xC0FFEE);
    let histogram = Histogram::new();
    for &v in &values {
        histogram.record(v);
    }
    let snap = histogram.snapshot();
    let mut sorted = values.clone();
    sorted.sort_unstable();

    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
        let exact = exact_percentile(&sorted, q) as f64;
        let approx = snap.quantile(q) as f64;
        // The bucket containing the exact value is at most
        // RELATIVE_ERROR wide relative to its lower bound, and the
        // estimate is that bucket's midpoint.
        let bound = exact * Histogram::RELATIVE_ERROR + 1.0;
        assert!(
            (approx - exact).abs() <= bound,
            "q={q}: exact {exact} vs histogram {approx} (bound {bound})"
        );
    }
    // The max is tracked exactly, not bucketed.
    assert_eq!(snap.max, *sorted.last().unwrap());
    assert_eq!(snap.quantile(1.0), snap.max);
    // The mean is exact too: sum and count are plain counters.
    let exact_mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    assert!((snap.mean() - exact_mean).abs() < 1e-6);
}

#[test]
fn small_values_are_recorded_exactly() {
    let histogram = Histogram::new();
    for v in 0..16u64 {
        histogram.record(v);
    }
    let snap = histogram.snapshot();
    // Below 16 every value owns its own unit bucket: quantiles are
    // exact (bucket midpoint of a width-1 bucket is the value itself).
    for (i, q) in (1..=16).map(|r| (r as u64 - 1, r as f64 / 16.0)) {
        assert_eq!(snap.quantile(q), i, "q={q}");
    }
}

#[test]
fn merge_is_order_independent_and_lossless() {
    let all = corpus(6_000, 7);
    let (a, rest) = all.split_at(1_000);
    let (b, c) = rest.split_at(2_500);

    let mut snaps = Vec::new();
    for part in [a, b, c] {
        let h = Histogram::new();
        for &v in part {
            h.record(v);
        }
        snaps.push(h.snapshot());
    }

    // Merge in two different orders.
    let mut forward = snaps[0].clone();
    forward.merge(&snaps[1]);
    forward.merge(&snaps[2]);
    let mut backward = snaps[2].clone();
    backward.merge(&snaps[1]);
    backward.merge(&snaps[0]);
    assert_eq!(forward, backward);

    // And against recording everything into one histogram directly.
    let whole = Histogram::new();
    for &v in &all {
        whole.record(v);
    }
    assert_eq!(forward, whole.snapshot());
}

#[test]
fn jsonl_log_rotates_at_the_size_limit() {
    use samm_core::telemetry::EventSink;
    let dir = std::env::temp_dir().join(format!("samm-telemetry-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slow.jsonl");
    let _ = std::fs::remove_file(&path);

    let log = JsonlLog::open(&path, 256).unwrap();
    let rotated = log.rotated_path();
    let line = format!("{{\"pad\":\"{}\"}}", "x".repeat(60));
    for _ in 0..12 {
        log.emit(&line);
    }
    assert_eq!(log.dropped(), 0);
    assert!(path.exists());
    assert!(rotated.exists(), "rotation must have produced {rotated:?}");
    // One rotation generation is kept: both files hold intact JSONL
    // lines and each stays within the limit (plus the line that tipped
    // it over).
    for file in [&path, &rotated] {
        let content = std::fs::read_to_string(file).unwrap();
        assert!(content.lines().count() > 0, "{file:?} must be non-empty");
        for l in content.lines() {
            assert_eq!(l, line);
        }
        assert!(content.len() as u64 <= 256 + line.len() as u64 + 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prom_checker_accepts_valid_and_rejects_malformed_expositions() {
    let valid = "# HELP samm_up Whether the server is up.\n\
                 # TYPE samm_up gauge\n\
                 samm_up 1\n\
                 # HELP samm_requests_total Requests.\n\
                 # TYPE samm_requests_total counter\n\
                 samm_requests_total{kind=\"enumerate\"} 3\n\
                 samm_requests_total{kind=\"verdict\"} 4\n";
    let summary = prom::check(valid).expect("valid exposition");
    assert!(summary.has_family("samm_up"));
    assert!(summary.has_family("samm_requests_total"));
    assert_eq!(summary.samples, 3);

    for (broken, why) in [
        ("samm_up{bad-label=\"x\"} 1\n", "invalid label name"),
        ("9samm_up 1\n", "invalid metric name"),
        ("samm_up not-a-number\n", "invalid value"),
        (
            "# TYPE samm_h histogram\nsamm_h_bucket{le=\"1\"} 5\n\
             samm_h_bucket{le=\"2\"} 3\nsamm_h_bucket{le=\"+Inf\"} 5\n\
             samm_h_sum 1\nsamm_h_count 5\n",
            "non-monotone histogram",
        ),
        (
            "# TYPE samm_h histogram\nsamm_h_bucket{le=\"+Inf\"} 5\n\
             samm_h_sum 1\nsamm_h_count 7\n",
            "+Inf bucket disagrees with count",
        ),
    ] {
        assert!(prom::check(broken).is_err(), "must reject: {why}");
    }
}

#[test]
fn rate_counter_windows_are_deterministic_under_the_test_clock() {
    let rate = RateCounter::new();
    // Three events in second 100, one in 101, none in 102.
    rate.record_at(100);
    rate.record_at(100);
    rate.record_at(100);
    rate.record_at(101);
    // From second 102 the 5s window covers complete seconds 97..=101.
    assert!((rate.rate_at(102, 5) - 4.0 / 5.0).abs() < 1e-9);
    // A 1s window at second 101 sees the last complete second, 100.
    assert!((rate.rate_at(101, 1) - 3.0).abs() < 1e-9);
    // Far in the future every slot has been recycled.
    assert!((rate.rate_at(100 + 1000, 5) - 0.0).abs() < 1e-9);
}
