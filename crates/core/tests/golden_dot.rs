//! Golden snapshot of the DOT rendering for a small litmus execution.
//!
//! Guards the exporter's stable node ordering and edge styling: the
//! witness search is deterministic, node ids are assigned in generation
//! order, and edges are emitted in insertion order, so the rendering of
//! a fixed execution must be byte-identical across runs and refactors.
//! If the format changes *intentionally*, update the golden string.

use samm_core::dot::{render, DotOptions};
use samm_core::enumerate::EnumConfig;
use samm_core::explain::{find_witness, Goal};
use samm_core::ids::{Reg, Value};
use samm_core::instr::{Instr, Program, ThreadProgram};
use samm_core::policy::Policy;

fn sb() -> Program {
    let t = |mine: u64, theirs: u64| {
        ThreadProgram::new(vec![
            Instr::Store {
                addr: mine.into(),
                val: 1u64.into(),
            },
            Instr::Load {
                dst: Reg::new(0),
                addr: theirs.into(),
            },
        ])
    };
    Program::new(vec![t(0, 1), t(1, 0)])
}

#[test]
fn sb_sc_witness_renders_to_golden_dot() {
    let config = EnumConfig::default();
    let sc = Policy::sequential_consistency();
    // 1/1 — both stores drain before both loads; allowed under SC.
    let goal = Goal::new(vec![
        (0, Reg::new(0), Value::new(1)),
        (1, Reg::new(0), Value::new(1)),
    ]);
    let witness = find_witness(&sb(), &sc, &config, &goal)
        .expect("enumeration succeeds")
        .expect("1/1 is SC-allowed");
    let options = DotOptions {
        title: "SB [SC] 1/1".to_owned(),
        ..DotOptions::default()
    };
    let dot = render(&witness.execution, &options);
    let golden = "digraph execution {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n  label=\"SB [SC] 1/1\";\n  labelloc=t;\n  subgraph cluster_t0 {\n    label=\"Thread T0\"; style=rounded;\n    n0 [label=\"T0.0: S @0,1\"];\n    n1 [label=\"T0.1: L @1 = 1\"];\n  }\n  subgraph cluster_t1 {\n    label=\"Thread T1\"; style=rounded;\n    n2 [label=\"T1.0: S @1,1\"];\n    n3 [label=\"T1.1: L @0 = 1\"];\n  }\n  subgraph cluster_init {\n    label=\"initial memory\"; style=dotted;\n    n4 [label=\"init @0,0\"];\n    n5 [label=\"init @1,0\"];\n  }\n  n0 -> n1 [color=black /* program */];\n  n2 -> n3 [color=black /* program */];\n  n0 -> n3 [color=black, penwidth=2, arrowhead=odot /* source */];\n  n2 -> n1 [color=black, penwidth=2, arrowhead=odot /* source */];\n}\n";
    assert_eq!(dot, golden, "rendered:\n{dot}");
}

#[test]
fn sb_sc_witness_with_rule_labelled_atomicity_edge() {
    // 0/1: T0 runs to completion first, so T0's load observes the
    // initial value and closure rule b then orders it before T1's
    // store. That Store Atomicity consequence renders as a dashed edge
    // labelled with its Figure 6 rule.
    let config = EnumConfig::default();
    let sc = Policy::sequential_consistency();
    let goal = Goal::new(vec![
        (0, Reg::new(0), Value::new(0)),
        (1, Reg::new(0), Value::new(1)),
    ]);
    let witness = find_witness(&sb(), &sc, &config, &goal)
        .expect("enumeration succeeds")
        .expect("0/1 is SC-allowed");
    let options = DotOptions {
        title: "SB [SC] 0/1".to_owned(),
        ..DotOptions::default()
    };
    let dot = render(&witness.execution, &options);
    let golden = "digraph execution {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n  label=\"SB [SC] 0/1\";\n  labelloc=t;\n  subgraph cluster_t0 {\n    label=\"Thread T0\"; style=rounded;\n    n0 [label=\"T0.0: S @0,1\"];\n    n1 [label=\"T0.1: L @1 = 0\"];\n  }\n  subgraph cluster_t1 {\n    label=\"Thread T1\"; style=rounded;\n    n2 [label=\"T1.0: S @1,1\"];\n    n3 [label=\"T1.1: L @0 = 1\"];\n  }\n  subgraph cluster_init {\n    label=\"initial memory\"; style=dotted;\n    n4 [label=\"init @0,0\"];\n    n5 [label=\"init @1,0\"];\n  }\n  n0 -> n1 [color=black /* program */];\n  n2 -> n3 [color=black /* program */];\n  n0 -> n3 [color=black, penwidth=2, arrowhead=odot /* source */];\n  n5 -> n1 [color=black, penwidth=2, arrowhead=odot /* source */];\n  n1 -> n2 [color=black, style=dashed, label=\"b\" /* atomicity */];\n}\n";
    assert_eq!(dot, golden, "rendered:\n{dot}");
}
