//! Graphviz (DOT) rendering of execution graphs.
//!
//! Edge styling follows the paper's Figure 2 legend:
//!
//! * solid black — local ordering `≺` (program/data/alias edges);
//! * bold with a dot decoration ("ringed" in print) — observation
//!   `source(L) → L`;
//! * dashed — Store Atomicity edges;
//! * dotted thin — the non-speculative address-disambiguation edges;
//! * gray — TSO bypass edges (not part of `@`).
//!
//! Nodes are grouped per thread into clusters, so the output of a litmus
//! figure visually matches the paper's drawings.

use std::fmt::Write as _;

use crate::exec::Behavior;
use crate::graph::{EdgeKind, ExecutionGraph};
use crate::ids::ThreadId;

/// Options for [`render`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph title (rendered as a label).
    pub title: String,
    /// Hide fence and compute nodes, connecting their neighbours — the
    /// paper's "Load-Store graph" view ("all the graphs pictured in this
    /// paper are actually Load-Store graphs; we have erased the Fence
    /// instructions").
    pub loads_and_stores_only: bool,
    /// Skip `Init` edges (they clutter the picture; init nodes precede
    /// everything by construction).
    pub hide_init_edges: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            title: String::new(),
            loads_and_stores_only: false,
            hide_init_edges: true,
        }
    }
}

/// Renders a behaviour's execution graph as DOT.
///
/// # Examples
///
/// ```
/// use samm_core::dot::{render, DotOptions};
/// use samm_core::exec::Behavior;
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::policy::Policy;
///
/// let prog = Program::new(vec![ThreadProgram::new(vec![
///     Instr::Store { addr: 0u64.into(), val: 1u64.into() },
/// ])]);
/// let mut b = Behavior::new(&prog);
/// b.settle(&prog, &Policy::weak(), 64).unwrap();
/// let dot = render(&b, &DotOptions::default());
/// assert!(dot.starts_with("digraph"));
/// ```
pub fn render(behavior: &Behavior, options: &DotOptions) -> String {
    render_graph(behavior.graph(), options)
}

/// Renders a raw execution graph as DOT (see [`render`]).
pub fn render_graph(graph: &ExecutionGraph, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph execution {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    if !options.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", escape(&options.title));
        let _ = writeln!(out, "  labelloc=t;");
    }

    let visible = |id: crate::ids::NodeId| -> bool {
        !options.loads_and_stores_only || graph.node(id).is_memory()
    };

    // Group nodes per thread.
    let mut threads: Vec<ThreadId> = graph
        .iter()
        .map(|(_, n)| n.thread())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    threads.sort();
    for thread in threads {
        let members: Vec<_> = graph
            .iter()
            .filter(|(id, n)| n.thread() == thread && visible(*id))
            .collect();
        if members.is_empty() {
            continue;
        }
        if thread.is_init() {
            let _ = writeln!(out, "  subgraph cluster_init {{");
            let _ = writeln!(out, "    label=\"initial memory\"; style=dotted;");
        } else {
            let _ = writeln!(out, "  subgraph cluster_t{} {{", thread.index());
            let _ = writeln!(out, "    label=\"Thread {}\"; style=rounded;", thread);
        }
        for (id, node) in members {
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\"];",
                id.index(),
                escape(&node.label())
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for edge in graph.edges() {
        if options.hide_init_edges && edge.kind == EdgeKind::Init {
            continue;
        }
        if !visible(edge.from) || !visible(edge.to) {
            continue;
        }
        let style = match edge.kind {
            EdgeKind::Program | EdgeKind::Data | EdgeKind::Alias | EdgeKind::Init => "color=black",
            EdgeKind::Source => "color=black, penwidth=2, arrowhead=odot",
            EdgeKind::Atomicity => "color=black, style=dashed",
            EdgeKind::AddrResolve => "color=black, style=dotted",
            EdgeKind::Bypass => "color=gray, constraint=false",
        };
        // Atomicity edges carry the Figure 6 closure rule that inserted
        // them; surface it as an edge label.
        let rule_label = match edge.rule {
            Some(rule) => format!(", label=\"{rule}\""),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}{} /* {} */];",
            edge.from.index(),
            edge.to.index(),
            style,
            rule_label,
            edge.kind
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::instr::{Instr, Program, ThreadProgram};
    use crate::policy::Policy;

    fn sample() -> Behavior {
        let prog = Program::new(vec![
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: 0u64.into(),
                    val: 1u64.into(),
                },
                Instr::Fence,
                Instr::Load {
                    dst: Reg::new(0),
                    addr: 1u64.into(),
                },
            ]),
            ThreadProgram::new(vec![Instr::Store {
                addr: 1u64.into(),
                val: 1u64.into(),
            }]),
        ]);
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &Policy::weak(), 64).unwrap();
        b
    }

    #[test]
    fn renders_clusters_per_thread() {
        let dot = render(&sample(), &DotOptions::default());
        assert!(dot.contains("cluster_t0"));
        assert!(dot.contains("cluster_t1"));
        assert!(dot.contains("cluster_init"));
        assert!(dot.contains("digraph execution"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn loads_and_stores_only_erases_fences() {
        let full = render(&sample(), &DotOptions::default());
        assert!(full.contains("fence"));
        let ls = render(
            &sample(),
            &DotOptions {
                loads_and_stores_only: true,
                ..DotOptions::default()
            },
        );
        assert!(!ls.contains("fence"));
        assert!(ls.contains("S @0,1"));
    }

    #[test]
    fn titles_are_escaped() {
        let dot = render(
            &sample(),
            &DotOptions {
                title: "he said \"hi\"".to_owned(),
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("he said \\\"hi\\\""));
    }

    #[test]
    fn source_edges_render_after_resolution() {
        let mut b = sample();
        let l = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_load())
            .map(|(id, _)| id)
            .unwrap();
        let c = b.candidates(l);
        b.resolve_load(l, c[0]).unwrap();
        let dot = render(&b, &DotOptions::default());
        assert!(dot.contains("arrowhead=odot"), "observation edge styling");
    }
}
