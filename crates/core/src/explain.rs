//! Witnesses for allowed outcomes, refutations for forbidden ones.
//!
//! The paper argues about litmus tests by exhibiting executions (Figures
//! 3–5, 7–11): an *allowed* outcome is justified by a concrete execution
//! graph plus a serialization, and a *forbidden* outcome by showing that
//! the Store Atomicity rules (Figure 6) leave some load with no candidate
//! store producing the required value. This module mechanizes both
//! directions on top of the traced enumerator:
//!
//! * [`find_witness`] streams the serial enumeration through a
//!   [`MemoryTrace`] and, at the first complete behaviour matching a
//!   [`Goal`], packages the resolution path, the final outcome, every
//!   load's observed store, and a serialization into a [`Witness`]. The
//!   witness is *checkable*: [`Witness::verify`] replays the path from a
//!   fresh root and re-validates the serialization, so a stored witness
//!   re-executes to the same final values.
//! * [`refute`] proves a goal unobservable. When the goal registers are
//!   written by unique loads in branch-free threads it runs a guided
//!   depth-first search that only ever resolves a goal load to a store
//!   carrying the required value; the first state in which a goal load is
//!   resolvable but has no such candidate becomes a [`BlockedRefutation`]
//!   naming the store that was excluded and the closure rule ([`Rule`])
//!   responsible. [`BlockedRefutation::verify`] replays the prefix and
//!   machine-checks that the candidate set is indeed empty of the
//!   required value and that the named rule's edge is present.
//!
//! ```
//! use samm_core::explain::{find_witness, refute, Goal, RefuteOutcome};
//! use samm_core::enumerate::EnumConfig;
//! use samm_core::instr::{Instr, Program, ThreadProgram};
//! use samm_core::ids::{Reg, Value};
//! use samm_core::policy::Policy;
//!
//! // Store-buffering: both loads reading 0 is allowed weak, forbidden SC.
//! let t = |a: u64, b: u64| ThreadProgram::new(vec![
//!     Instr::Store { addr: a.into(), val: 1u64.into() },
//!     Instr::Load { dst: Reg::new(0), addr: b.into() },
//! ]);
//! let sb = Program::new(vec![t(0, 1), t(1, 0)]);
//! let goal = Goal::new(vec![
//!     (0, Reg::new(0), Value::ZERO),
//!     (1, Reg::new(0), Value::ZERO),
//! ]);
//! let config = EnumConfig::default();
//!
//! let w = find_witness(&sb, &Policy::weak(), &config, &goal).unwrap().unwrap();
//! assert!(w.verify(&sb, &Policy::weak(), config.max_nodes_per_thread).is_ok());
//!
//! let r = refute(&sb, &Policy::sequential_consistency(), &config, &goal).unwrap();
//! assert!(matches!(r, RefuteOutcome::Refuted(_)));
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::atomicity::Rule;
use crate::enumerate::{behaviors_traced, EnumConfig};
use crate::error::EnumError;
use crate::exec::{Behavior, StepError};
use crate::graph::{EdgeKind, ExecutionGraph};
use crate::ids::{NodeId, Reg, Value};
use crate::instr::{Instr, Program};
use crate::obs::MemoryTrace;
use crate::outcome::Outcome;
use crate::policy::Policy;
use crate::serialize::{
    find_serialization, tso_serializations, validate_serialization, validate_tso_serialization,
};

/// A conjunction of final-register constraints, the machine form of a
/// litmus condition such as `0:r0=0 /\ 1:r0=0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    clauses: Vec<(usize, Reg, Value)>,
}

impl Goal {
    /// Creates a goal from `(thread, register, value)` clauses.
    pub fn new(clauses: Vec<(usize, Reg, Value)>) -> Self {
        Goal { clauses }
    }

    /// The `(thread, register, value)` clauses.
    pub fn clauses(&self) -> &[(usize, Reg, Value)] {
        &self.clauses
    }

    /// Whether `outcome` satisfies every clause.
    pub fn matches(&self, outcome: &Outcome) -> bool {
        self.clauses.iter().all(|&(t, r, v)| outcome.reg(t, r) == v)
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (t, r, v)) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{t}:{r}={v}")?;
        }
        Ok(())
    }
}

/// The serialization component of a [`Witness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Serialization {
    /// A strict serialization: every load reads the most recent store in
    /// the total order (paper §3.1).
    Strict(Vec<NodeId>),
    /// A store-buffer (TSO) serialization: loads may forward from a
    /// program-earlier pending store (paper §6, Figure 10) — the
    /// execution has no strict serialization.
    Buffered(Vec<NodeId>),
    /// No serialization was found within the search budget. Never
    /// produced for behaviours of the built-in store-atomic models.
    None,
}

impl Serialization {
    /// The serialization order, if one was found.
    pub fn order(&self) -> Option<&[NodeId]> {
        match self {
            Serialization::Strict(o) | Serialization::Buffered(o) => Some(o),
            Serialization::None => None,
        }
    }
}

/// A checkable explanation of an *allowed* outcome: the paper's "exhibit
/// an execution" argument, in data.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The `(load, store)` resolutions, in order, that reach the
    /// execution from the root behaviour. Replaying them is
    /// deterministic (see [`Witness::verify`]).
    pub path: Vec<(NodeId, NodeId)>,
    /// The final register files.
    pub outcome: Outcome,
    /// A serialization of the execution graph.
    pub serialization: Serialization,
    /// Every load's observed store: `(load, source, bypassed)`. These are
    /// the `@` source edges justifying each loaded value.
    pub observations: Vec<(NodeId, NodeId, bool)>,
    /// The complete behaviour itself (execution graph + register files).
    pub execution: Behavior,
}

impl Witness {
    /// Replays [`path`](Witness::path) from a fresh root and checks that
    /// the replay (a) completes, (b) produces
    /// [`outcome`](Witness::outcome), and (c) admits
    /// [`serialization`](Witness::serialization) as a valid (strict or
    /// store-buffer) serialization.
    ///
    /// Node ids are assigned deterministically by graph generation, so a
    /// stored path replays against the same ids.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first replay divergence.
    pub fn verify(
        &self,
        program: &Program,
        policy: &Policy,
        max_nodes_per_thread: u32,
    ) -> Result<(), String> {
        let behavior = replay(program, policy, max_nodes_per_thread, &self.path)?;
        if !behavior.is_complete() {
            return Err("replayed behaviour is incomplete".into());
        }
        let outcome = behavior.outcome();
        if outcome != self.outcome {
            return Err(format!(
                "replayed outcome {outcome} differs from witness outcome {}",
                self.outcome
            ));
        }
        match &self.serialization {
            Serialization::Strict(order) => validate_serialization(&behavior, order)
                .map_err(|e| format!("strict serialization invalid: {e}")),
            Serialization::Buffered(order) => validate_tso_serialization(&behavior, order)
                .map_err(|e| format!("store-buffer serialization invalid: {e}")),
            Serialization::None => Err("witness carries no serialization".into()),
        }
    }

    /// Renders the witness as a JSON object (hand-rolled; no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self
            .path
            .iter()
            .map(|(l, s)| format!("[{},{}]", l.index(), s.index()))
            .collect();
        let obsv: Vec<String> = self
            .observations
            .iter()
            .map(|(l, s, b)| format!("[{},{},{b}]", l.index(), s.index()))
            .collect();
        let ser = match &self.serialization {
            Serialization::Strict(o) => format!("{{\"kind\":\"strict\",\"order\":{}}}", ids(o)),
            Serialization::Buffered(o) => {
                format!("{{\"kind\":\"buffered\",\"order\":{}}}", ids(o))
            }
            Serialization::None => "null".to_owned(),
        };
        format!(
            "{{\"outcome\":\"{}\",\"path\":[{}],\"observations\":[{}],\"serialization\":{}}}",
            self.outcome,
            path.join(","),
            obsv.join(","),
            ser,
        )
    }
}

fn ids(order: &[NodeId]) -> String {
    let parts: Vec<String> = order.iter().map(|n| n.index().to_string()).collect();
    format!("[{}]", parts.join(","))
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "witness for outcome {}", self.outcome)?;
        let graph = self.execution.graph();
        for &(load, source, bypass) in &self.observations {
            writeln!(
                f,
                "  {} observes {}{}",
                graph.node(load).label(),
                graph.node(source).label(),
                if bypass {
                    "  (store-buffer bypass)"
                } else {
                    ""
                },
            )?;
        }
        match &self.serialization {
            Serialization::Strict(order) => {
                writeln!(f, "  strict serialization:")?;
                for n in order {
                    writeln!(f, "    {}", graph.node(*n).label())?;
                }
            }
            Serialization::Buffered(order) => {
                writeln!(f, "  store-buffer serialization (no strict one exists):")?;
                for n in order {
                    writeln!(f, "    {}", graph.node(*n).label())?;
                }
            }
            Serialization::None => writeln!(f, "  no serialization found")?,
        }
        Ok(())
    }
}

/// Why a store carrying the required value is missing from a goal load's
/// candidate set (paper §4: the conditions of `candidates(L)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefuteReason {
    /// The store is certainly overwritten for this load:
    /// `store @ blocker @ load` with `blocker` a same-address store.
    /// `rule` names the first Store Atomicity edge that contributes to
    /// the ordering (`None` when local reordering constraints alone
    /// produce it).
    Overwritten {
        /// The excluded store carrying the required value.
        store: NodeId,
        /// The same-address store that certainly overwrites it.
        blocker: NodeId,
        /// The closure rule that inserted an edge on the blocking chain.
        rule: Option<Rule>,
    },
    /// The store is ordered after the load (`load @ store`), so it can
    /// never be its source.
    AfterLoad {
        /// The excluded store.
        store: NodeId,
        /// The closure rule that inserted an edge on the `load @ store`
        /// chain (`None` for local ordering).
        rule: Option<Rule>,
    },
    /// The store had not yet executed at the decision point (it, or an
    /// `@`-predecessor of it, is unresolved; paper §4 condition 1).
    Unready {
        /// The excluded store.
        store: NodeId,
    },
    /// No store to the load's address ever produces the required value.
    NoSuchStore,
    /// Candidates with the required value exist, but resolving the load
    /// to any of them closes an ordering cycle (bypass/speculation
    /// rollback).
    ResolutionCycle {
        /// The first candidate whose resolution was inconsistent.
        store: NodeId,
    },
}

impl fmt::Display for RefuteReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule_str = |r: &Option<Rule>| match r {
            Some(r) => format!("closure rule {r}"),
            None => "local ordering constraints".to_owned(),
        };
        match self {
            RefuteReason::Overwritten {
                store,
                blocker,
                rule,
            } => write!(
                f,
                "store {store} is certainly overwritten by {blocker} ({})",
                rule_str(rule)
            ),
            RefuteReason::AfterLoad { store, rule } => write!(
                f,
                "store {store} is ordered after the load ({})",
                rule_str(rule)
            ),
            RefuteReason::Unready { store } => {
                write!(f, "store {store} had not executed at the decision point")
            }
            RefuteReason::NoSuchStore => write!(f, "no store ever produces the required value"),
            RefuteReason::ResolutionCycle { store } => {
                write!(f, "observing store {store} closes an ordering cycle")
            }
        }
    }
}

/// A machine-checkable proof obligation that a goal is unobservable: in
/// the state reached by [`prefix`](BlockedRefutation::prefix), the goal
/// load is resolvable but no candidate store carries the required value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRefutation {
    /// The `(load, store)` resolutions reaching the blocked state.
    pub prefix: Vec<(NodeId, NodeId)>,
    /// The goal load whose candidate set lacks the required value.
    pub load: NodeId,
    /// The value the goal requires the load to observe.
    pub required: Value,
    /// Why the required value is missing from `candidates(load)`.
    pub reason: RefuteReason,
}

impl BlockedRefutation {
    /// Replays [`prefix`](BlockedRefutation::prefix) and machine-checks
    /// the blocked site: the load is resolvable, its candidate set
    /// contains no store with the required value, and the
    /// [`reason`](BlockedRefutation::reason) — including any named
    /// closure [`Rule`] edge — holds in the replayed graph.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first check that fails.
    pub fn verify(
        &self,
        program: &Program,
        policy: &Policy,
        max_nodes_per_thread: u32,
    ) -> Result<(), String> {
        let behavior = replay(program, policy, max_nodes_per_thread, &self.prefix)?;
        let graph = behavior.graph();
        if !graph.node(self.load).is_load() {
            return Err(format!("{} is not a load", self.load));
        }
        if !crate::candidates::load_resolvable(graph, self.load) {
            return Err(format!(
                "{} is not resolvable in the replayed state",
                self.load
            ));
        }
        let cands = behavior.candidates(self.load);
        let valued: Vec<NodeId> = cands
            .iter()
            .copied()
            .filter(|&s| graph.node(s).stored_value() == Some(self.required))
            .collect();
        if !matches!(self.reason, RefuteReason::ResolutionCycle { .. }) && !valued.is_empty() {
            return Err(format!(
                "candidate {} does supply the required value {}",
                valued[0], self.required
            ));
        }
        let addr = graph
            .node(self.load)
            .addr()
            .ok_or_else(|| format!("load {} has no resolved address", self.load))?;
        match &self.reason {
            RefuteReason::NoSuchStore => {
                let produced: Vec<NodeId> = graph
                    .stores_to(addr)
                    .filter(|&s| graph.node(s).stored_value() == Some(self.required))
                    .collect();
                if produced.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "store {} does produce the required value",
                        produced[0]
                    ))
                }
            }
            RefuteReason::Unready { store } => {
                let s = graph.node(*store);
                let unready = !s.is_resolved()
                    || graph.predecessors(*store).iter().map(NodeId::new).any(|p| {
                        let pn = graph.node(p);
                        pn.is_memory() && !pn.is_resolved()
                    });
                if unready {
                    Ok(())
                } else {
                    Err(format!("store {store} is ready after all"))
                }
            }
            RefuteReason::AfterLoad { store, rule } => {
                if !graph.precedes(self.load, *store) {
                    return Err(format!("{} does not precede {}", self.load, store));
                }
                check_rule_on(graph, self.load, *store, *rule)
            }
            RefuteReason::Overwritten {
                store,
                blocker,
                rule,
            } => {
                if graph.node(*blocker).addr() != Some(addr) {
                    return Err(format!("blocker {blocker} stores to a different address"));
                }
                if !graph.precedes(*store, *blocker) || !graph.precedes(*blocker, self.load) {
                    return Err(format!(
                        "no {store} @ {blocker} @ {} overwrite chain",
                        self.load
                    ));
                }
                // The rule edge must lie on one of the two chain segments.
                check_rule_on(graph, *store, *blocker, *rule)
                    .or_else(|_| check_rule_on(graph, *blocker, self.load, *rule))
            }
            RefuteReason::ResolutionCycle { store } => {
                if !valued.contains(store) {
                    return Err(format!("{store} is not a required-value candidate"));
                }
                for &s in &valued {
                    let mut fork = behavior.clone();
                    let step = fork
                        .resolve_load(self.load, s)
                        .and_then(|()| fork.settle(program, policy, max_nodes_per_thread));
                    match step {
                        Err(StepError::Inconsistent(_)) => {}
                        Ok(()) => {
                            return Err(format!("resolving {} to {s} is consistent", self.load))
                        }
                        Err(e) => return Err(format!("replay failed: {e:?}")),
                    }
                }
                Ok(())
            }
        }
    }

    /// Renders the refutation as a JSON object (hand-rolled).
    pub fn to_json(&self) -> String {
        let prefix: Vec<String> = self
            .prefix
            .iter()
            .map(|(l, s)| format!("[{},{}]", l.index(), s.index()))
            .collect();
        let reason = match &self.reason {
            RefuteReason::Overwritten {
                store,
                blocker,
                rule,
            } => format!(
                "{{\"kind\":\"overwritten\",\"store\":{},\"blocker\":{},\"rule\":{}}}",
                store.index(),
                blocker.index(),
                rule_json(*rule)
            ),
            RefuteReason::AfterLoad { store, rule } => format!(
                "{{\"kind\":\"after_load\",\"store\":{},\"rule\":{}}}",
                store.index(),
                rule_json(*rule)
            ),
            RefuteReason::Unready { store } => {
                format!("{{\"kind\":\"unready\",\"store\":{}}}", store.index())
            }
            RefuteReason::NoSuchStore => "{\"kind\":\"no_such_store\"}".to_owned(),
            RefuteReason::ResolutionCycle { store } => {
                format!(
                    "{{\"kind\":\"resolution_cycle\",\"store\":{}}}",
                    store.index()
                )
            }
        };
        format!(
            "{{\"prefix\":[{}],\"load\":{},\"required\":\"{}\",\"reason\":{}}}",
            prefix.join(","),
            self.load.index(),
            self.required,
            reason,
        )
    }
}

fn rule_json(rule: Option<Rule>) -> String {
    match rule {
        Some(r) => format!("\"{r}\""),
        None => "null".to_owned(),
    }
}

/// A proof that a goal is unobservable under a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refutation {
    /// The guided search found a state in which a goal load's candidate
    /// set lacks the required value, and exhausted every alternative.
    Blocked(BlockedRefutation),
    /// The goal fell outside the guided-search fragment (branching
    /// control flow or multiply-written goal registers); the full
    /// enumeration was exhausted without observing it.
    Exhaustive {
        /// Behaviours explored by the enumeration.
        explored: usize,
        /// Distinct complete executions found.
        distinct: usize,
    },
}

impl fmt::Display for Refutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refutation::Blocked(b) => {
                writeln!(
                    f,
                    "refuted: after {} resolution(s), load {} cannot observe {}",
                    b.prefix.len(),
                    b.load,
                    b.required
                )?;
                write!(f, "  because {}", b.reason)
            }
            Refutation::Exhaustive { explored, distinct } => write!(
                f,
                "refuted by exhaustion: {explored} behaviours explored, \
                 {distinct} complete executions, none matches"
            ),
        }
    }
}

/// The result of [`refute`]: either the goal is observable after all
/// (with a [`Witness`]), or a [`Refutation`] proves it is not.
#[derive(Debug, Clone)]
pub enum RefuteOutcome {
    /// The goal is observable; here is the witness.
    Observable(Box<Witness>),
    /// The goal is unobservable; here is the proof.
    Refuted(Refutation),
}

/// Searches for the first complete behaviour matching `goal` and packages
/// it as a replayable [`Witness`]. Returns `Ok(None)` when the goal is
/// unobservable (see [`refute`] for an explanation instead).
///
/// # Errors
///
/// As for [`crate::enumerate::behaviors`].
pub fn find_witness(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    goal: &Goal,
) -> Result<Option<Witness>, EnumError> {
    let trace = Arc::new(MemoryTrace::new());
    let stream = behaviors_traced(program, policy, config, trace.clone())?;
    for item in stream {
        let behavior = item?;
        if goal.matches(&behavior.outcome()) {
            let path = trace.path_to(behavior.trace_id()).unwrap_or_default();
            return Ok(Some(make_witness(behavior, path)));
        }
    }
    Ok(None)
}

/// Packages a complete behaviour and its resolution path as a [`Witness`],
/// choosing a strict serialization when one exists and falling back to a
/// store-buffer one (paper Figure 10: TSO bypass executions have no
/// strict serialization).
fn make_witness(behavior: Behavior, path: Vec<(NodeId, NodeId)>) -> Witness {
    let serialization = match find_serialization(&behavior) {
        Some(order) => Serialization::Strict(order),
        None => match tso_serializations(&behavior, 1).into_iter().next() {
            Some(order) => Serialization::Buffered(order),
            None => Serialization::None,
        },
    };
    let observations: Vec<(NodeId, NodeId, bool)> = behavior
        .graph()
        .iter()
        .filter(|(_, n)| n.is_load())
        .filter_map(|(id, n)| n.source().map(|s| (id, s, n.is_bypass_source())))
        .collect();
    Witness {
        path,
        outcome: behavior.outcome(),
        serialization,
        observations,
        execution: behavior,
    }
}

/// Proves `goal` unobservable under `policy`, or returns its witness.
///
/// When every goal register is written by exactly one Load/Rmw in a
/// branch-free thread, a guided depth-first search resolves goal loads
/// *only* to stores carrying the required value — pruned branches can
/// never match (the register is written once), so exhausting the search
/// is a sound unobservability proof, and the first blocked state yields
/// a [`BlockedRefutation`] naming the closure rule that emptied the
/// candidate set. Otherwise the full enumeration runs and
/// [`Refutation::Exhaustive`] is returned.
///
/// # Errors
///
/// As for [`crate::enumerate::behaviors`].
pub fn refute(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    goal: &Goal,
) -> Result<RefuteOutcome, EnumError> {
    let may_roll_back = policy.alias_speculation() || policy.has_bypass() || program.uses_rmw();
    let mut root = Behavior::new(program);
    match root.settle(program, policy, config.max_nodes_per_thread) {
        Ok(()) => {}
        Err(StepError::NodeLimit { thread, limit }) => {
            return Err(EnumError::NodeLimit { thread, limit })
        }
        Err(StepError::Inconsistent(e)) => return Err(EnumError::UnexpectedCycle(e)),
    }

    let Some(goal_loads) = goal_load_nodes(program, root.graph(), goal) else {
        return refute_exhaustive(program, policy, config, goal);
    };

    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    if config.dedup {
        seen.insert(root.canonical_key());
    }
    let mut stack: Vec<(Behavior, Vec<(NodeId, NodeId)>)> = vec![(root, Vec::new())];
    let mut blocked: Option<BlockedRefutation> = None;
    let mut explored = 0usize;

    while let Some((behavior, prefix)) = stack.pop() {
        explored += 1;
        if explored > config.max_behaviors {
            return Err(EnumError::BehaviorLimit {
                limit: config.max_behaviors,
            });
        }
        if behavior.is_complete() {
            if goal.matches(&behavior.outcome()) {
                return Ok(RefuteOutcome::Observable(Box::new(make_witness(
                    behavior, prefix,
                ))));
            }
            continue;
        }
        let loads = behavior.resolvable_loads();
        if loads.is_empty() {
            return Err(EnumError::Stuck);
        }
        for load in loads {
            let cands = behavior.candidates(load);
            let required = goal_loads.get(&load).copied();
            let chosen: Vec<NodeId> = match required {
                Some(v) => cands
                    .iter()
                    .copied()
                    .filter(|&s| behavior.graph().node(s).stored_value() == Some(v))
                    .collect(),
                None => cands,
            };
            if let Some(v) = required {
                if chosen.is_empty() && blocked.is_none() {
                    blocked = Some(BlockedRefutation {
                        prefix: prefix.clone(),
                        load,
                        required: v,
                        reason: diagnose(behavior.graph(), load, v),
                    });
                }
            }
            let mut survivors = 0usize;
            let mut first_cycle: Option<NodeId> = None;
            for store in chosen {
                let mut fork = behavior.clone();
                let step = fork
                    .resolve_load(load, store)
                    .and_then(|()| fork.settle(program, policy, config.max_nodes_per_thread));
                match step {
                    Ok(()) => {
                        survivors += 1;
                        if config.dedup && !seen.insert(fork.canonical_key()) {
                            continue; // duplicate of an explored state
                        }
                        let mut next = prefix.clone();
                        next.push((load, store));
                        stack.push((fork, next));
                    }
                    Err(StepError::Inconsistent(e)) => {
                        if may_roll_back {
                            first_cycle.get_or_insert(store);
                        } else {
                            return Err(EnumError::UnexpectedCycle(e));
                        }
                    }
                    Err(StepError::NodeLimit { thread, limit }) => {
                        return Err(EnumError::NodeLimit { thread, limit })
                    }
                }
            }
            if let (Some(v), Some(store)) = (required, first_cycle) {
                if survivors == 0 && blocked.is_none() {
                    blocked = Some(BlockedRefutation {
                        prefix: prefix.clone(),
                        load,
                        required: v,
                        reason: RefuteReason::ResolutionCycle { store },
                    });
                }
            }
        }
    }

    Ok(RefuteOutcome::Refuted(match blocked {
        Some(b) => Refutation::Blocked(b),
        None => Refutation::Exhaustive {
            explored,
            distinct: 0,
        },
    }))
}

/// The fall-back full enumeration for goals outside the guided fragment.
fn refute_exhaustive(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    goal: &Goal,
) -> Result<RefuteOutcome, EnumError> {
    let trace = Arc::new(MemoryTrace::new());
    let mut stream = behaviors_traced(program, policy, config, trace.clone())?;
    for item in &mut stream {
        let behavior = item?;
        if goal.matches(&behavior.outcome()) {
            let path = trace.path_to(behavior.trace_id()).unwrap_or_default();
            return Ok(RefuteOutcome::Observable(Box::new(make_witness(
                behavior, path,
            ))));
        }
    }
    let stats = stream.stats();
    Ok(RefuteOutcome::Refuted(Refutation::Exhaustive {
        explored: stats.explored,
        distinct: stats.distinct_executions,
    }))
}

/// Maps each goal clause to its load node in the settled root graph, or
/// `None` when the goal falls outside the guided fragment: a clause's
/// thread must be branch-free (no `BranchNz`/`Jump`) and its register
/// written by exactly one instruction, a `Load` or `Rmw`.
fn goal_load_nodes(
    program: &Program,
    graph: &ExecutionGraph,
    goal: &Goal,
) -> Option<HashMap<NodeId, Value>> {
    let mut map = HashMap::new();
    for &(thread, reg, value) in goal.clauses() {
        let tp = program.threads().get(thread)?;
        let mut writers = 0usize;
        // Ordinal of the goal load among the thread's Load/Rmw instructions.
        let mut load_ordinal = None;
        let mut loads_in_program = 0usize;
        for instr in tp.instrs() {
            match instr {
                Instr::BranchNz { .. } | Instr::Jump { .. } => return None,
                Instr::Load { dst, .. } | Instr::Rmw { dst, .. } => {
                    if *dst == reg {
                        writers += 1;
                        load_ordinal = Some(loads_in_program);
                    }
                    loads_in_program += 1;
                }
                Instr::Mov { dst, .. } | Instr::Binop { dst, .. } => {
                    if *dst == reg {
                        return None;
                    }
                }
                Instr::Store { .. } | Instr::Fence | Instr::Halt => {}
            }
        }
        if writers != 1 {
            return None;
        }
        let ordinal = load_ordinal.expect("writers == 1 implies an ordinal");
        // Straight-line code generates each instruction exactly once, in
        // order, so the ordinal-th load node of the thread is the writer.
        let mut loads: Vec<NodeId> = graph
            .iter()
            .filter(|(_, n)| n.is_load() && !n.thread().is_init() && n.thread().index() == thread)
            .map(|(id, _)| id)
            .collect();
        loads.sort_by_key(|&id| graph.node(id).index_in_thread());
        if loads.len() != loads_in_program {
            // Generation is not complete for this thread; stay sound by
            // falling back to the exhaustive search.
            return None;
        }
        let node = *loads.get(ordinal)?;
        if let Some(prev) = map.insert(node, value) {
            if prev != value {
                return None; // contradictory clauses on one load
            }
        }
    }
    Some(map)
}

/// Explains why no candidate of `load` carries `required`, naming the
/// first Store Atomicity edge (in insertion order) on the blocking chain
/// when one exists.
fn diagnose(graph: &ExecutionGraph, load: NodeId, required: Value) -> RefuteReason {
    let addr = match graph.node(load).addr() {
        Some(a) => a,
        None => return RefuteReason::NoSuchStore,
    };
    let same_addr: Vec<NodeId> = graph.stores_to(addr).collect();
    let valued: Vec<NodeId> = same_addr
        .iter()
        .copied()
        .filter(|&s| graph.node(s).stored_value() == Some(required))
        .collect();
    if valued.is_empty() {
        return RefuteReason::NoSuchStore;
    }
    for &store in &valued {
        if graph.precedes(load, store) {
            return RefuteReason::AfterLoad {
                store,
                rule: blame(graph, &[(load, store)]),
            };
        }
        if let Some(&blocker) = same_addr.iter().find(|&&other| {
            other != store && graph.precedes(store, other) && graph.precedes(other, load)
        }) {
            return RefuteReason::Overwritten {
                store,
                blocker,
                rule: blame(graph, &[(store, blocker), (blocker, load)]),
            };
        }
    }
    RefuteReason::Unready { store: valued[0] }
}

/// The rule of the first insertion-order Store Atomicity edge lying on
/// any of the given `(from, to)` ordering segments (reach-or-equal at
/// both ends), or `None` when only local edges produce the ordering.
fn blame(graph: &ExecutionGraph, segments: &[(NodeId, NodeId)]) -> Option<Rule> {
    graph
        .edges()
        .iter()
        .find(|e| {
            e.kind == EdgeKind::Atomicity
                && segments
                    .iter()
                    .any(|&(from, to)| reach_eq(graph, from, e.from) && reach_eq(graph, e.to, to))
        })
        .and_then(|e| e.rule)
}

/// `a == b` or `a @ b`.
fn reach_eq(graph: &ExecutionGraph, a: NodeId, b: NodeId) -> bool {
    a == b || graph.precedes(a, b)
}

/// Checks that `rule`'s claim about the `from @ to` chain holds: when
/// `Some`, an Atomicity edge with that rule tag lies on the chain; when
/// `None`, the ordering merely needs to exist.
fn check_rule_on(
    graph: &ExecutionGraph,
    from: NodeId,
    to: NodeId,
    rule: Option<Rule>,
) -> Result<(), String> {
    match rule {
        None => Ok(()),
        Some(r) => {
            let found = graph.edges().iter().any(|e| {
                e.kind == EdgeKind::Atomicity
                    && e.rule == Some(r)
                    && reach_eq(graph, from, e.from)
                    && reach_eq(graph, e.to, to)
            });
            if found {
                Ok(())
            } else {
                Err(format!("no rule-{r} edge lies on {from} @ {to}"))
            }
        }
    }
}

/// Replays a resolution path from a fresh root: settle, then
/// resolve-and-settle each `(load, store)` pair.
fn replay(
    program: &Program,
    policy: &Policy,
    max_nodes_per_thread: u32,
    path: &[(NodeId, NodeId)],
) -> Result<Behavior, String> {
    let mut behavior = Behavior::new(program);
    behavior
        .settle(program, policy, max_nodes_per_thread)
        .map_err(|e| format!("root settle failed: {e:?}"))?;
    for &(load, store) in path {
        behavior
            .resolve_load(load, store)
            .and_then(|()| behavior.settle(program, policy, max_nodes_per_thread))
            .map_err(|e| format!("replaying {load} <- {store} failed: {e:?}"))?;
    }
    Ok(behavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::Rule;
    use crate::instr::{Instr, Operand, RmwOp, ThreadProgram};

    fn sb() -> Program {
        let t = |a: u64, b: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: a.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: b.into(),
                },
            ])
        };
        Program::new(vec![t(0, 1), t(1, 0)])
    }

    fn zero_zero() -> Goal {
        Goal::new(vec![
            (0, Reg::new(0), Value::ZERO),
            (1, Reg::new(0), Value::ZERO),
        ])
    }

    #[test]
    fn weak_sb_witness_is_found_and_replays() {
        let config = EnumConfig::default();
        let w = find_witness(&sb(), &Policy::weak(), &config, &zero_zero())
            .unwrap()
            .expect("0/0 is allowed weak");
        assert!(matches!(w.serialization, Serialization::Strict(_)));
        w.verify(&sb(), &Policy::weak(), config.max_nodes_per_thread)
            .unwrap();
        assert!(w.to_json().contains("\"serialization\""));
    }

    #[test]
    fn sc_sb_refutation_names_rule_b() {
        let config = EnumConfig::default();
        let sc = Policy::sequential_consistency();
        let r = refute(&sb(), &sc, &config, &zero_zero()).unwrap();
        let RefuteOutcome::Refuted(Refutation::Blocked(b)) = r else {
            panic!("expected a blocked refutation, got {r:?}");
        };
        // The paper's argument: rule b orders the first-resolved load
        // before the other thread's store, which then certainly
        // overwrites the initial value for the remaining load.
        match &b.reason {
            RefuteReason::Overwritten { rule, .. } => assert_eq!(*rule, Some(Rule::B)),
            other => panic!("unexpected reason {other:?}"),
        }
        b.verify(&sb(), &sc, config.max_nodes_per_thread).unwrap();
        assert!(b.to_json().contains("overwritten"));
    }

    #[test]
    fn tso_forwarding_witness_needs_a_buffered_serialization() {
        // Figure 10: each thread forwards its own store and then misses
        // the other thread's — an execution with no strict serialization.
        let t = |mine: u64, theirs: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: mine.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: mine.into(),
                },
                Instr::Load {
                    dst: Reg::new(1),
                    addr: theirs.into(),
                },
            ])
        };
        let program = Program::new(vec![t(0, 1), t(1, 0)]);
        let goal = Goal::new(vec![
            (0, Reg::new(0), Value::new(1)),
            (0, Reg::new(1), Value::ZERO),
            (1, Reg::new(0), Value::new(1)),
            (1, Reg::new(1), Value::ZERO),
        ]);
        let config = EnumConfig::default();
        let tso = Policy::tso();
        let r = refute(&program, &tso, &config, &goal).unwrap();
        let RefuteOutcome::Observable(w) = r else {
            panic!("the Figure 10 outcome is allowed under TSO");
        };
        assert!(matches!(w.serialization, Serialization::Buffered(_)));
        w.verify(&program, &tso, config.max_nodes_per_thread)
            .unwrap();
    }

    #[test]
    fn impossible_value_refutes_with_no_such_store() {
        let config = EnumConfig::default();
        let goal = Goal::new(vec![(0, Reg::new(0), Value::new(7))]);
        let r = refute(&sb(), &Policy::weak(), &config, &goal).unwrap();
        let RefuteOutcome::Refuted(Refutation::Blocked(b)) = r else {
            panic!("value 7 is never stored");
        };
        assert_eq!(b.reason, RefuteReason::NoSuchStore);
        b.verify(&sb(), &Policy::weak(), config.max_nodes_per_thread)
            .unwrap();
    }

    #[test]
    fn branching_goal_falls_back_to_exhaustive() {
        // A thread with a branch is outside the guided fragment.
        let t0 = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: 0u64.into(),
            },
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            Instr::Store {
                addr: 1u64.into(),
                val: 1u64.into(),
            },
            Instr::Halt,
        ]);
        let program = Program::new(vec![t0]);
        let goal = Goal::new(vec![(0, Reg::new(0), Value::new(3))]);
        let r = refute(
            &program,
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
            &goal,
        )
        .unwrap();
        assert!(matches!(
            r,
            RefuteOutcome::Refuted(Refutation::Exhaustive { .. })
        ));
    }

    #[test]
    fn rmw_goal_register_is_guided() {
        // dst of a CAS receives the *old* value; requiring old = 1 on a
        // location only ever holding 0 or 2 is refutable via NoSuchStore.
        let t0 = ThreadProgram::new(vec![Instr::Rmw {
            dst: Reg::new(0),
            addr: 0u64.into(),
            op: RmwOp::Cas {
                expect: Operand::Imm(0u64.into()),
            },
            src: Operand::Imm(2u64.into()),
        }]);
        let program = Program::new(vec![t0]);
        let goal = Goal::new(vec![(0, Reg::new(0), Value::new(1))]);
        let r = refute(&program, &Policy::weak(), &EnumConfig::default(), &goal).unwrap();
        let RefuteOutcome::Refuted(Refutation::Blocked(b)) = r else {
            panic!("old value 1 unobservable");
        };
        assert_eq!(b.reason, RefuteReason::NoSuchStore);
    }

    #[test]
    fn witness_outcome_mismatch_is_detected() {
        let config = EnumConfig::default();
        let mut w = find_witness(&sb(), &Policy::weak(), &config, &zero_zero())
            .unwrap()
            .unwrap();
        w.outcome = Outcome::new(vec![vec![Value::new(9)], vec![Value::new(9)]]);
        assert!(w
            .verify(&sb(), &Policy::weak(), config.max_nodes_per_thread)
            .is_err());
    }
}
