//! Observability: enumeration counters, per-phase timings, and a
//! structured event-trace sink.
//!
//! The enumerators answer "which behaviours exist"; this module answers
//! *how* they were found. Two independent facilities:
//!
//! * [`Obs`] — a block of relaxed atomic counters shared (via `Arc`) by
//!   every fork of a [`crate::exec::Behavior`]. It counts closure-rule
//!   applications by rule (a/b/c of the paper's Figure 6), closure
//!   rounds, `candidates(L)` queries, and accumulates wall-clock nanos
//!   per enumeration phase. Disabled (`Option::None`) it costs one
//!   pointer-null check per site — see experiment E19 for the measured
//!   overhead.
//! * [`TraceSink`] — a structured event stream of fork / prune / commit
//!   events emitted by the *serial* enumerator. Replaying the fork
//!   ancestry of a committed behaviour reconstructs exactly which
//!   `(load, store)` resolutions produced it; [`crate::explain`] builds
//!   witnesses and refutations on top of it.
//!
//! No external dependencies: the JSON emitted by [`ObsStats::to_json`]
//! is hand-rolled (flat objects of unsigned integers only).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ids::NodeId;

/// Live atomic counters, shared by every fork of an instrumented
/// enumeration. All updates use [`Ordering::Relaxed`]: the counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Obs {
    /// Store Atomicity rule-a edge insertions (Figure 6 left).
    pub rule_a: AtomicU64,
    /// Store Atomicity rule-b edge insertions (Figure 6 middle).
    pub rule_b: AtomicU64,
    /// Store Atomicity rule-c edge insertions (Figure 6 right).
    pub rule_c: AtomicU64,
    /// Fixpoint rounds executed by [`crate::atomicity::enforce`].
    pub closure_rounds: AtomicU64,
    /// Calls to [`crate::candidates::candidates`] made by the fork loops.
    pub candidate_calls: AtomicU64,
    /// Total candidate stores those calls returned (i.e. forks offered).
    pub candidate_stores: AtomicU64,
    /// Nanoseconds inside the Store Atomicity closure.
    pub closure_nanos: AtomicU64,
    /// Nanoseconds inside [`crate::exec::Behavior::settle`] (includes the
    /// closure time of the calls it makes).
    pub settle_nanos: AtomicU64,
    /// Nanoseconds inside [`crate::exec::Behavior::resolve_load`]
    /// (includes the closure time of the calls it makes).
    pub resolve_nanos: AtomicU64,
}

impl Obs {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Obs::default()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time plain-value snapshot.
    pub fn snapshot(&self) -> ObsStats {
        ObsStats {
            rule_a: self.rule_a.load(Ordering::Relaxed),
            rule_b: self.rule_b.load(Ordering::Relaxed),
            rule_c: self.rule_c.load(Ordering::Relaxed),
            closure_rounds: self.closure_rounds.load(Ordering::Relaxed),
            candidate_calls: self.candidate_calls.load(Ordering::Relaxed),
            candidate_stores: self.candidate_stores.load(Ordering::Relaxed),
            closure_nanos: self.closure_nanos.load(Ordering::Relaxed),
            settle_nanos: self.settle_nanos.load(Ordering::Relaxed),
            resolve_nanos: self.resolve_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A serializable snapshot of [`Obs`], carried on
/// [`crate::enumerate::EnumStats::obs`] when instrumentation is on.
///
/// The counter fields are deterministic for a fixed program/policy/config
/// (both engines apply the same closure to the same fork set); the
/// `*_nanos` timings are wall-clock and vary run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsStats {
    /// Rule-a edge insertions.
    pub rule_a: u64,
    /// Rule-b edge insertions.
    pub rule_b: u64,
    /// Rule-c edge insertions.
    pub rule_c: u64,
    /// Closure fixpoint rounds.
    pub closure_rounds: u64,
    /// `candidates(L)` queries.
    pub candidate_calls: u64,
    /// Candidate stores returned across all queries.
    pub candidate_stores: u64,
    /// Nanoseconds inside the Store Atomicity closure.
    pub closure_nanos: u64,
    /// Nanoseconds inside `settle` (superset of its closure time).
    pub settle_nanos: u64,
    /// Nanoseconds inside `resolve_load` (superset of its closure time).
    pub resolve_nanos: u64,
}

impl ObsStats {
    /// Renders the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule_a\":{},\"rule_b\":{},\"rule_c\":{},\"closure_rounds\":{},\
             \"candidate_calls\":{},\"candidate_stores\":{},\"closure_nanos\":{},\
             \"settle_nanos\":{},\"resolve_nanos\":{}}}",
            self.rule_a,
            self.rule_b,
            self.rule_c,
            self.closure_rounds,
            self.candidate_calls,
            self.candidate_stores,
            self.closure_nanos,
            self.settle_nanos,
            self.resolve_nanos,
        )
    }

    /// The counter fields only, with timings zeroed — the deterministic
    /// part suitable for cross-engine and cross-run comparison.
    pub fn counters(&self) -> ObsStats {
        ObsStats {
            closure_nanos: 0,
            settle_nanos: 0,
            resolve_nanos: 0,
            ..*self
        }
    }

    /// Total closure-rule edge insertions (a + b + c).
    pub fn rule_edges(&self) -> u64 {
        self.rule_a + self.rule_b + self.rule_c
    }
}

impl fmt::Display for ObsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules a/b/c {}/{}/{} over {} rounds, {} candidate queries \
             yielding {} stores, closure {}µs, settle {}µs, resolve {}µs",
            self.rule_a,
            self.rule_b,
            self.rule_c,
            self.closure_rounds,
            self.candidate_calls,
            self.candidate_stores,
            self.closure_nanos / 1_000,
            self.settle_nanos / 1_000,
            self.resolve_nanos / 1_000,
        )
    }
}

/// Why a forked behaviour was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The fork settled to a canonical key already seen (dedup hit).
    Duplicate,
    /// The resolution violated Store Atomicity (closure cycle) and was
    /// rolled back — or, for non-speculative models, failed outright.
    Inconsistent,
    /// Prune-before-expand: the fork's observation set was already
    /// claimed by an equal partial behaviour, so it was skipped without
    /// ever being materialized (dominance / sleep-set pruning).
    Dominated,
    /// Prune-before-expand: the fork's observation set is a thread
    /// permutation of a claimed one; its executions are credited to the
    /// representative's orbit instead of being explored.
    Symmetric,
}

impl fmt::Display for PruneReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PruneReason::Duplicate => "duplicate",
            PruneReason::Inconsistent => "inconsistent",
            PruneReason::Dominated => "dominated",
            PruneReason::Symmetric => "symmetric",
        })
    }
}

/// One structured event from the serial enumerator's fork loop.
///
/// Behaviour ids are assigned in fork order starting from the root's
/// id 0, so the serial engine's trace is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `parent` forked `child` by resolving `load` to `store`.
    Fork {
        /// Trace id of the behaviour that forked.
        parent: u64,
        /// Trace id assigned to the fork.
        child: u64,
        /// The load being resolved.
        load: NodeId,
        /// The candidate store it observes.
        store: NodeId,
    },
    /// The fork `child` was discarded.
    Prune {
        /// Trace id of the discarded fork.
        child: u64,
        /// Why it was discarded.
        reason: PruneReason,
    },
    /// Behaviour `id` completed (every load resolved) and was yielded.
    Commit {
        /// Trace id of the completed behaviour.
        id: u64,
    },
}

/// A sink for [`TraceEvent`]s. Implementations must be thread-safe even
/// though only the serial engine currently emits events, so a sink can
/// be shared across harness threads.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// The vendored in-memory sink: an append-only event log.
#[derive(Debug, Default)]
pub struct MemoryTrace {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemoryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        MemoryTrace::default()
    }

    /// A copy of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace poisoned").clone()
    }

    /// Reconstructs the resolution path of behaviour `id`: the
    /// `(load, store)` pairs applied from the root (trace id 0) down to
    /// `id`, in application order. Returns `None` if `id` never appeared
    /// as a fork child (i.e. it is the root or unknown).
    pub fn path_to(&self, id: u64) -> Option<Vec<(NodeId, NodeId)>> {
        let events = self.events.lock().expect("trace poisoned");
        let mut path = Vec::new();
        let mut cursor = id;
        while cursor != 0 {
            let fork = events.iter().find_map(|e| match *e {
                TraceEvent::Fork {
                    parent,
                    child,
                    load,
                    store,
                } if child == cursor => Some((parent, load, store)),
                _ => None,
            })?;
            path.push((fork.1, fork.2));
            cursor = fork.0;
        }
        path.reverse();
        Some(path)
    }
}

impl TraceSink for MemoryTrace {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let obs = Obs::new();
        Obs::add(&obs.rule_a, 2);
        Obs::add(&obs.rule_c, 1);
        Obs::add(&obs.closure_rounds, 3);
        let snap = obs.snapshot();
        assert_eq!(snap.rule_a, 2);
        assert_eq!(snap.rule_b, 0);
        assert_eq!(snap.rule_c, 1);
        assert_eq!(snap.rule_edges(), 3);
        assert_eq!(snap.closure_rounds, 3);
    }

    #[test]
    fn counters_zeroes_timings() {
        let snap = ObsStats {
            rule_a: 1,
            closure_nanos: 99,
            settle_nanos: 7,
            resolve_nanos: 3,
            ..ObsStats::default()
        };
        let counters = snap.counters();
        assert_eq!(counters.rule_a, 1);
        assert_eq!(counters.closure_nanos, 0);
        assert_eq!(counters.settle_nanos, 0);
        assert_eq!(counters.resolve_nanos, 0);
    }

    #[test]
    fn json_is_flat_and_complete() {
        let json = ObsStats::default().to_json();
        for key in [
            "rule_a",
            "rule_b",
            "rule_c",
            "closure_rounds",
            "candidate_calls",
            "candidate_stores",
            "closure_nanos",
            "settle_nanos",
            "resolve_nanos",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    #[test]
    fn memory_trace_rebuilds_fork_paths() {
        let trace = MemoryTrace::new();
        let (l1, s1) = (NodeId::new(4), NodeId::new(1));
        let (l2, s2) = (NodeId::new(5), NodeId::new(2));
        trace.record(TraceEvent::Fork {
            parent: 0,
            child: 1,
            load: l1,
            store: s1,
        });
        trace.record(TraceEvent::Prune {
            child: 1,
            reason: PruneReason::Duplicate,
        });
        trace.record(TraceEvent::Fork {
            parent: 0,
            child: 2,
            load: l1,
            store: s2,
        });
        trace.record(TraceEvent::Fork {
            parent: 2,
            child: 3,
            load: l2,
            store: s1,
        });
        trace.record(TraceEvent::Commit { id: 3 });
        assert_eq!(trace.path_to(3), Some(vec![(l1, s2), (l2, s1)]));
        assert_eq!(trace.path_to(1), Some(vec![(l1, s1)]));
        assert_eq!(trace.path_to(7), None);
        assert_eq!(trace.events().len(), 5);
    }
}
