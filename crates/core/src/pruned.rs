//! Prune-before-expand enumeration.
//!
//! The serial engine of [`mod@crate::enumerate`] discovers duplicate
//! behaviours *after* paying for them: it clones the parent, resolves the
//! load, re-settles, computes the canonical Load-Store-graph key, and only
//! then discards the fork. This module reorders the search so every prune
//! happens *before* the clone:
//!
//! * **Dominance pruning.** A partial behaviour is determined, up to
//!   isomorphism, by its *observation set* — the set of
//!   `(load ident, store ident)` resolutions taken so far, with idents
//!   stable across enumeration orders (`(thread, issue index)` for
//!   program nodes, the address for init stores). Graph generation,
//!   dataflow execution, and the Store Atomicity closure are all
//!   deterministic given the observations, so two forks with equal
//!   observation sets settle to equal behaviours. The engine therefore
//!   claims each fork's observation set in a seen-table *first* and only
//!   clones, resolves, and settles the claim winners.
//! * **Sleep-set / DPOR-style commute pruning.** Two independent
//!   resolutions `(L₁,S₁)`, `(L₂,S₂)` reach the same observation set in
//!   either order, so the second order loses the claim race at zero graph
//!   cost. The claim table *is* the sleep set: no commuting fork is ever
//!   expanded twice, without tracking per-state sleep sets explicitly.
//! * **Symmetry reduction.** Threads with identical instruction sequences
//!   induce program automorphisms. Observation sets are canonicalized to
//!   the lexicographic minimum over the automorphism group before
//!   claiming, so only one representative per orbit is explored; at
//!   commit time the representative's orbit is expanded by permuting its
//!   outcome rows, restoring the exact execution count and outcome set.
//!   (Active only when executions are not kept; see
//!   [`EnumConfig::keep_executions`].)
//!
//! Soundness arguments for each rule live in `DESIGN.md`; the
//! differential test fortress (`tests/pruned_differential.rs`,
//! `tests/proptests.rs`, `tests/golden_pruning.rs`) pins behaviour-set
//! equality against the untouched serial oracle.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::enumerate::{EnumConfig, EnumResult, EnumStats};
use crate::error::EnumError;
use crate::exec::{Behavior, StepError};
use crate::graph::ExecutionGraph;
use crate::ids::{Addr, NodeId};
use crate::instr::Program;
use crate::obs::{Obs, PruneReason, TraceEvent, TraceSink};
use crate::outcome::Outcome;
use crate::policy::Policy;

/// Stable identity of a graph node across enumeration orders, packed into
/// one word for cheap hashing/comparison on the claim hot path: program
/// nodes are `(thread, issue index)`, init stores are the address. Layout:
/// kind in bits 120..128, a 64-bit payload (thread index or raw address) in
/// bits 32..96, and the 32-bit issue index in bits 0..32.
type Ident = u128;

const KIND_PROGRAM: u128 = 0;
const KIND_INIT: u128 = 1;

fn pack(kind: u128, a: u64, b: u32) -> Ident {
    kind << 120 | (a as u128) << 32 | b as u128
}

fn ident(graph: &ExecutionGraph, id: NodeId) -> Ident {
    let node = graph.node(id);
    if node.is_init() {
        pack(
            KIND_INIT,
            node.addr().expect("init stores have addresses").raw(),
            0,
        )
    } else {
        pack(
            KIND_PROGRAM,
            node.thread().index() as u64,
            node.index_in_thread(),
        )
    }
}

/// An observation set: the resolutions taken so far, sorted. Each load
/// ident appears at most once, so sorting by pair sorts by load.
type ObsSet = Vec<(Ident, Ident)>;

/// Applies a thread permutation to an ident (init stores are fixed).
fn permute_ident(perm: &[usize], id: Ident) -> Ident {
    if id >> 120 == KIND_PROGRAM {
        let thread = (id >> 32) as u64 as usize;
        pack(KIND_PROGRAM, perm[thread] as u64, id as u32)
    } else {
        id
    }
}

/// The multiply-rotate hasher popularized by rustc (`FxHasher`): claim
/// keys are short vectors of packed words, where SipHash's per-call
/// overhead dominates the whole claim race. Not DoS-resistant, which is
/// fine for a table keyed by enumeration-internal idents.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash of one observation pair, mixed well enough that the commutative
/// set hash below distributes. Summing per-pair hashes makes the child
/// key's hash an O(1) update of its parent's (`insert` commutes), so a
/// claim never re-hashes the whole set.
#[inline]
fn pair_hash(pair: (Ident, Ident)) -> u64 {
    let mut h = FxHasher::default();
    h.write_u128(pair.0);
    h.write_u128(pair.1);
    h.finish()
}

/// Commutative hash of a whole observation set (root/orbit entries only;
/// the hot path updates incrementally via [`pair_hash`]).
fn set_hash(set: &ObsSet) -> u64 {
    set.iter()
        .fold(0u64, |acc, &p| acc.wrapping_add(pair_hash(p)))
}

/// The claim table: observation sets keyed by commutative hash, with
/// exact set equality inside each (nearly always singleton) bucket — a
/// collision costs a memcmp, never a wrong prune.
#[derive(Default)]
struct SeenTable {
    buckets: FxHashMap<u64, Vec<ObsSet>>,
}

impl SeenTable {
    fn contains(&self, hash: u64, set: &ObsSet) -> bool {
        self.buckets
            .get(&hash)
            .is_some_and(|b| b.iter().any(|s| s == set))
    }

    fn insert(&mut self, hash: u64, set: ObsSet) {
        self.buckets.entry(hash).or_default().push(set);
    }
}

/// Maps `set` through `perm` into `out`, sorted.
fn permute_set(perm: &[usize], set: &ObsSet, out: &mut ObsSet) {
    out.clear();
    out.extend(
        set.iter()
            .map(|&(l, s)| (permute_ident(perm, l), permute_ident(perm, s))),
    );
    out.sort_unstable();
}

/// Writes the lexicographically minimal image of `set` under `group` into
/// `best`, using `scratch` for the per-permutation images (no allocation
/// once the buffers have grown).
fn canonicalize_into(group: &[Vec<usize>], set: &ObsSet, scratch: &mut ObsSet, best: &mut ObsSet) {
    best.clear();
    best.extend_from_slice(set);
    for perm in &group[1..] {
        permute_set(perm, set, scratch);
        if *scratch < *best {
            std::mem::swap(best, scratch);
        }
    }
}

/// The program's thread-symmetry group: all products of permutations
/// within classes of structurally identical threads, identity first.
/// Falls back to the identity-only group when the full group would
/// exceed `limit` elements (the orbit bookkeeping would stop paying for
/// itself).
fn symmetry_group(program: &Program, limit: usize) -> Vec<Vec<usize>> {
    let threads = program.threads();
    let n = threads.len();
    let identity: Vec<usize> = (0..n).collect();
    // Group threads into classes of identical instruction sequences.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    'threads: for (t, prog) in threads.iter().enumerate() {
        for class in &mut classes {
            if threads[class[0]] == *prog {
                class.push(t);
                continue 'threads;
            }
        }
        classes.push(vec![t]);
    }
    if classes.iter().all(|c| c.len() == 1) {
        return vec![identity];
    }
    // |G| = product of class factorials; bail out when too large.
    let mut size: usize = 1;
    for class in &classes {
        for k in 2..=class.len() {
            size = size.saturating_mul(k);
            if size > limit {
                return vec![identity];
            }
        }
    }
    // Build the group as the product of per-class permutations.
    let mut group = vec![identity];
    for class in &classes {
        if class.len() < 2 {
            continue;
        }
        let arrangements = permutations(class);
        let mut next = Vec::with_capacity(group.len() * arrangements.len());
        for base in &group {
            for arrangement in &arrangements {
                let mut perm = base.clone();
                for (&slot, &value) in class.iter().zip(arrangement.iter()) {
                    perm[slot] = value;
                }
                next.push(perm);
            }
        }
        group = next;
    }
    // Keep the identity first so callers can skip it cheaply.
    if let Some(pos) = group
        .iter()
        .position(|p| p.iter().enumerate().all(|(i, &v)| i == v))
    {
        group.swap(0, pos);
    }
    group
}

/// All orderings of `items` (small inputs only).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Counters specific to the prune-before-expand engine, reported next to
/// the shared [`EnumStats`] (whose `forks`/`deduped` fields count claim
/// attempts and pre-expansion claim hits respectively).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// `(load, store)` claim attempts (equals `EnumStats::forks`).
    pub claims: u64,
    /// Claims lost to an already-claimed identical observation set.
    pub pruned_dominated: u64,
    /// Claims lost to a thread-permuted observation set's claim.
    pub pruned_symmetric: u64,
    /// Claims that won and were actually cloned/resolved/settled.
    pub expanded: u64,
    /// Expansions that consumed the parent in place instead of cloning
    /// (always the last surviving fork of each explored behaviour).
    pub in_place: u64,
    /// Expanded forks rolled back for violating Store Atomicity.
    pub rolled_back: u64,
    /// Executions credited through orbit expansion beyond the explored
    /// representatives.
    pub orbit_commits: u64,
    /// Size of the thread-symmetry group in effect (1 = no symmetry).
    pub symmetry_group: u64,
}

impl PruneStats {
    /// Serializes into a JSON object (same hand-rolled style as
    /// [`EnumStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"claims\":{},\"pruned_dominated\":{},\"pruned_symmetric\":{},\
             \"expanded\":{},\"in_place\":{},\"rolled_back\":{},\
             \"orbit_commits\":{},\"symmetry_group\":{}}}",
            self.claims,
            self.pruned_dominated,
            self.pruned_symmetric,
            self.expanded,
            self.in_place,
            self.rolled_back,
            self.orbit_commits,
            self.symmetry_group,
        )
    }
}

/// [`enumerate_pruned`] returning the engine-specific [`PruneStats`]
/// next to the ordinary result.
///
/// # Errors
///
/// As for [`enumerate_pruned`].
pub fn enumerate_pruned_stats(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<(EnumResult, PruneStats), EnumError> {
    run(program, policy, config, None)
}

/// Enumerates every behaviour of `program` under `policy` with the
/// prune-before-expand engine.
///
/// Produces the same outcome set and the same `distinct_executions`
/// count as the serial oracle [`crate::enumerate::enumerate`] (with
/// dedup enabled), typically exploring far fewer behaviours. Note that
/// this engine *always* deduplicates — pruning is its search strategy,
/// so [`EnumConfig::dedup`] is ignored — and its `explored`/`forks`/
/// `deduped` statistics count pruned-search work, not serial-search
/// work. Timing-free statistics are deterministic.
///
/// # Errors
///
/// As for [`crate::enumerate::enumerate`]; the fork budget counts claim
/// attempts, so a budget that suffices for the serial engine always
/// suffices here.
///
/// # Examples
///
/// ```
/// use samm_core::enumerate::{enumerate, EnumConfig};
/// use samm_core::pruned::enumerate_pruned;
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::Reg;
/// use samm_core::policy::Policy;
///
/// let t = |a: u64, b: u64| ThreadProgram::new(vec![
///     Instr::Store { addr: a.into(), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: b.into() },
/// ]);
/// let sb = Program::new(vec![t(0, 1), t(1, 0)]);
/// let config = EnumConfig::default();
/// let serial = enumerate(&sb, &Policy::weak(), &config).unwrap();
/// let pruned = enumerate_pruned(&sb, &Policy::weak(), &config).unwrap();
/// assert_eq!(serial.outcomes, pruned.outcomes);
/// assert_eq!(
///     serial.stats.distinct_executions,
///     pruned.stats.distinct_executions,
/// );
/// ```
pub fn enumerate_pruned(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<EnumResult, EnumError> {
    run(program, policy, config, None).map(|(result, _)| result)
}

/// [`enumerate_pruned`], additionally streaming fork/prune/commit events
/// into `sink`. Unlike the serial trace, claim-pruned forks emit a
/// [`TraceEvent::Prune`] with reason [`PruneReason::Dominated`] or
/// [`PruneReason::Symmetric`] *without* a preceding fork event — they
/// were never materialized.
///
/// # Errors
///
/// As for [`enumerate_pruned`].
pub fn enumerate_pruned_traced(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<(EnumResult, PruneStats), EnumError> {
    run(program, policy, config, Some(sink))
}

/// Maximum symmetry-group size before the engine falls back to
/// identity-only (the per-claim canonicalization cost scales with |G|).
const SYMMETRY_LIMIT: usize = 64;

struct Engine<'a> {
    program: &'a Program,
    policy: &'a Policy,
    config: &'a EnumConfig,
    may_roll_back: bool,
    group: Vec<Vec<usize>>,
    seen: SeenTable,
    frontier: Vec<(Behavior, ObsSet, u64)>,
    stats: EnumStats,
    pstats: PruneStats,
    result: EnumResult,
    obs: Option<Arc<Obs>>,
    trace: Option<Arc<dyn TraceSink>>,
    next_trace_id: u64,
    // Reusable scratch buffers for the hot loop.
    loads_buf: Vec<NodeId>,
    stores_buf: Vec<NodeId>,
    stores_scratch: Vec<NodeId>,
    perm_buf: ObsSet,
    survivors_buf: Vec<(NodeId, NodeId, ObsSet, u64)>,
    /// Unresolved memory operations of the behavior under expansion
    /// (filled by `completeness_scan`, read by the candidate gate).
    unresolved_buf: Vec<NodeId>,
    /// Retired observation sets, recycled into survivor child keys.
    set_pool: Vec<ObsSet>,
    /// Addressed stores of the behavior under expansion, in node order
    /// (filled by `completeness_scan`, read by the candidate gate).
    stores_index_buf: Vec<(Addr, NodeId)>,
}

impl Engine<'_> {
    fn record(&self, event: TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.record(event);
        }
    }

    /// Commits a complete representative: counts and inserts the outcome
    /// of every distinct orbit image (just the behaviour itself when the
    /// group is trivial).
    /// Returns the behaviour back to the caller (for the fork pool)
    /// unless it was retained as a kept execution.
    fn commit(&mut self, behavior: Behavior, set: &ObsSet) -> Option<Behavior> {
        self.record(TraceEvent::Commit {
            id: behavior.trace_id(),
        });
        if self.group.len() == 1 {
            self.stats.distinct_executions += 1;
            self.result.outcomes.insert(behavior.outcome());
            if self.config.keep_executions {
                self.result.executions.push(behavior);
                return None;
            }
            return Some(behavior);
        }
        let rows = behavior.outcome_rows();
        let mut images: FxHashSet<ObsSet> =
            FxHashSet::with_capacity_and_hasher(self.group.len(), Default::default());
        for perm in &self.group {
            permute_set(perm, set, &mut self.perm_buf);
            if !images.contains(&self.perm_buf) {
                images.insert(self.perm_buf.clone());
                self.stats.distinct_executions += 1;
                let mut permuted = vec![Vec::new(); rows.len()];
                for (t, row) in rows.iter().enumerate() {
                    permuted[perm[t]] = row.clone();
                }
                self.result.outcomes.insert(Outcome::new(permuted));
            }
        }
        self.pstats.orbit_commits += images.len() as u64 - 1;
        Some(behavior)
    }

    fn run(&mut self) -> Result<(), EnumError> {
        // Loop-local scratch: the candidate child key and its canonical
        // image are built in place, so a pruned claim allocates nothing.
        let mut child_buf: ObsSet = Vec::new();
        let mut canon_buf: ObsSet = Vec::new();
        while let Some((behavior, set, set_h)) = self.frontier.pop() {
            self.stats.explored += 1;
            if self.stats.explored > self.config.max_behaviors {
                return Err(EnumError::BehaviorLimit {
                    limit: self.config.max_behaviors,
                });
            }
            self.stats.max_graph_nodes = self.stats.max_graph_nodes.max(behavior.graph().len());

            if behavior.completeness_scan(
                &mut self.unresolved_buf,
                &mut self.stores_index_buf,
                &mut self.loads_buf,
            ) {
                drop(self.commit(behavior, &set));
                self.set_pool.push(set);
                continue;
            }

            if self.loads_buf.is_empty() {
                return Err(EnumError::Stuck);
            }

            // Phase 1: claim. Every (load, candidate) pair computes its
            // child observation set and races for it in the seen-table;
            // losers are pruned here, before any clone or graph work.
            let loads = std::mem::take(&mut self.loads_buf);
            let mut survivors = std::mem::take(&mut self.survivors_buf);
            for &load in &loads {
                behavior.candidates_gated_into(
                    load,
                    &self.unresolved_buf,
                    &self.stores_index_buf,
                    &mut self.stores_scratch,
                    &mut self.stores_buf,
                );
                if let Some(obs) = behavior.obs() {
                    Obs::add(&obs.candidate_calls, 1);
                    Obs::add(&obs.candidate_stores, self.stores_buf.len() as u64);
                }
                let load_ident = ident(behavior.graph(), load);
                let stores = std::mem::take(&mut self.stores_buf);
                for &store in &stores {
                    self.stats.forks += 1;
                    self.pstats.claims += 1;
                    if let Some(budget) = self.config.budget {
                        if self.stats.forks as u64 > budget {
                            return Err(EnumError::Overbudget {
                                budget,
                                forks: self.stats.forks as u64,
                            });
                        }
                    }
                    let pair = (load_ident, ident(behavior.graph(), store));
                    let at = set.partition_point(|p| p < &pair);
                    child_buf.clear();
                    child_buf.reserve(set.len() + 1);
                    child_buf.extend_from_slice(&set[..at]);
                    child_buf.push(pair);
                    child_buf.extend_from_slice(&set[at..]);
                    let child_h = set_h.wrapping_add(pair_hash(pair));
                    let (canonical, canonical_h): (&ObsSet, u64) = if self.group.len() == 1 {
                        (&child_buf, child_h)
                    } else {
                        canonicalize_into(
                            &self.group,
                            &child_buf,
                            &mut self.perm_buf,
                            &mut canon_buf,
                        );
                        let h = if canon_buf == child_buf {
                            child_h
                        } else {
                            set_hash(&canon_buf)
                        };
                        (&canon_buf, h)
                    };
                    if self.seen.contains(canonical_h, canonical) {
                        self.stats.deduped += 1;
                        self.next_trace_id += 1;
                        if *canonical == child_buf {
                            self.pstats.pruned_dominated += 1;
                            self.record(TraceEvent::Prune {
                                child: self.next_trace_id,
                                reason: PruneReason::Dominated,
                            });
                        } else {
                            self.pstats.pruned_symmetric += 1;
                            self.record(TraceEvent::Prune {
                                child: self.next_trace_id,
                                reason: PruneReason::Symmetric,
                            });
                        }
                        continue;
                    }
                    self.seen.insert(canonical_h, canonical.clone());
                    let mut child_set = self.set_pool.pop().unwrap_or_default();
                    child_set.clone_from(&child_buf);
                    survivors.push((load, store, child_set, child_h));
                }
                self.stores_buf = stores;
            }
            self.loads_buf = loads;

            // Phase 2: expand the claim winners. The final winner takes
            // the parent by move — a behaviour with a single surviving
            // fork (the common case late in the search) never clones.
            let total = survivors.len();
            let mut parent = Some(behavior);
            for (k, (load, store, child_set, child_h)) in survivors.drain(..).enumerate() {
                let source = parent.as_ref().expect("parent consumed early");
                let parent_id = source.trace_id();
                let mut fork = if k + 1 == total {
                    self.pstats.in_place += 1;
                    parent.take().expect("parent consumed early")
                } else {
                    source.clone()
                };
                self.pstats.expanded += 1;
                if self.trace.is_some() {
                    self.next_trace_id += 1;
                    fork.set_trace_id(self.next_trace_id);
                    self.record(TraceEvent::Fork {
                        parent: parent_id,
                        child: self.next_trace_id,
                        load,
                        store,
                    });
                }
                let step = fork.resolve_load(load, store).and_then(|()| {
                    fork.settle(self.program, self.policy, self.config.max_nodes_per_thread)
                });
                match step {
                    Ok(()) => self.frontier.push((fork, child_set, child_h)),
                    Err(StepError::Inconsistent(e)) => {
                        if self.may_roll_back {
                            // The claim stays: any other path to this
                            // observation set fails identically.
                            self.stats.rolled_back += 1;
                            self.pstats.rolled_back += 1;
                            self.record(TraceEvent::Prune {
                                child: fork.trace_id(),
                                reason: PruneReason::Inconsistent,
                            });
                        } else {
                            return Err(EnumError::UnexpectedCycle(e));
                        }
                    }
                    Err(StepError::NodeLimit { thread, limit }) => {
                        return Err(EnumError::NodeLimit { thread, limit });
                    }
                }
            }
            self.survivors_buf = survivors;
            self.set_pool.push(set);
        }
        Ok(())
    }
}

fn run(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    trace: Option<Arc<dyn TraceSink>>,
) -> Result<(EnumResult, PruneStats), EnumError> {
    let may_roll_back = policy.alias_speculation() || policy.has_bypass() || program.uses_rmw();
    let obs = config.observe.then(|| Arc::new(Obs::new()));
    let mut root = Behavior::new(program);
    if let Some(obs) = &obs {
        root.enable_obs(Arc::clone(obs));
    }
    match root.settle(program, policy, config.max_nodes_per_thread) {
        Ok(()) => {}
        Err(StepError::NodeLimit { thread, limit }) => {
            return Err(EnumError::NodeLimit { thread, limit })
        }
        Err(StepError::Inconsistent(e)) => return Err(EnumError::UnexpectedCycle(e)),
    }

    // Orbit expansion reconstructs counts and outcomes, but not the
    // permuted Behavior values themselves — so symmetry is only enabled
    // when the caller does not keep executions.
    let group = if config.keep_executions {
        vec![(0..program.threads().len()).collect()]
    } else {
        symmetry_group(program, SYMMETRY_LIMIT)
    };

    let mut engine = Engine {
        program,
        policy,
        config,
        may_roll_back,
        pstats: PruneStats {
            symmetry_group: group.len() as u64,
            ..PruneStats::default()
        },
        group,
        seen: {
            let mut seen = SeenTable::default();
            seen.insert(0, ObsSet::new());
            seen
        },
        frontier: vec![(root, ObsSet::new(), 0)],
        stats: EnumStats::default(),
        result: EnumResult::default(),
        obs,
        trace,
        next_trace_id: 0,
        loads_buf: Vec::new(),
        stores_buf: Vec::new(),
        stores_scratch: Vec::new(),
        perm_buf: ObsSet::new(),
        survivors_buf: Vec::new(),
        unresolved_buf: Vec::new(),
        set_pool: Vec::new(),
        stores_index_buf: Vec::new(),
    };
    engine.run()?;

    let Engine {
        mut stats,
        pstats,
        mut result,
        obs,
        ..
    } = engine;
    if let Some(obs) = &obs {
        stats.obs = Some(obs.snapshot());
    }
    if config.keep_executions {
        // Deterministic execution order, like the parallel engine.
        let mut keyed: Vec<(Vec<u8>, Behavior)> = result
            .executions
            .drain(..)
            .map(|b| (b.canonical_key(), b))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        result.executions = keyed.into_iter().map(|(_, b)| b).collect();
    }
    result.stats = stats;
    Ok((result, pstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate;
    use crate::ids::{Reg, Value};
    use crate::instr::{Instr, ThreadProgram};

    fn sb() -> Program {
        let t = |a: u64, b: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: a.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: b.into(),
                },
            ])
        };
        Program::new(vec![t(0, 1), t(1, 0)])
    }

    /// Message passing with distinct per-thread code (no symmetry).
    fn mp() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: 0u64.into(),
                    val: 42u64.into(),
                },
                Instr::Store {
                    addr: 1u64.into(),
                    val: 1u64.into(),
                },
            ]),
            ThreadProgram::new(vec![
                Instr::Load {
                    dst: Reg::new(0),
                    addr: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(1),
                    addr: 0u64.into(),
                },
            ]),
        ])
    }

    /// Two identical threads racing on one location: symmetric by
    /// construction, with asymmetric complete executions (each load may
    /// observe its own or the other thread's store), so orbit expansion
    /// has real work to do.
    fn symmetric_sb() -> Program {
        let t = || {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: 0u64.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: 0u64.into(),
                },
            ])
        };
        Program::new(vec![t(), t()])
    }

    fn policies() -> [Policy; 4] {
        [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
            Policy::weak(),
        ]
    }

    #[test]
    fn agrees_with_serial_on_fixtures() {
        for program in [sb(), mp(), symmetric_sb()] {
            for policy in policies() {
                let config = EnumConfig::builder().keep_executions(false).build();
                let serial = enumerate(&program, &policy, &config).unwrap();
                let pruned = enumerate_pruned(&program, &policy, &config).unwrap();
                assert_eq!(serial.outcomes, pruned.outcomes, "{}", policy.name());
                assert_eq!(
                    serial.stats.distinct_executions,
                    pruned.stats.distinct_executions,
                    "{}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn symmetric_program_explores_fewer_behaviors() {
        let config = EnumConfig::builder().keep_executions(false).build();
        let policy = Policy::weak();
        let serial = enumerate(&symmetric_sb(), &policy, &config).unwrap();
        let (pruned, pstats) = enumerate_pruned_stats(&symmetric_sb(), &policy, &config).unwrap();
        assert_eq!(pstats.symmetry_group, 2);
        assert!(pstats.pruned_symmetric > 0, "symmetry must fire");
        assert!(pstats.orbit_commits > 0, "orbit expansion must fire");
        assert!(
            pruned.stats.explored < serial.stats.explored,
            "pruned {} vs serial {}",
            pruned.stats.explored,
            serial.stats.explored
        );
        assert_eq!(serial.outcomes, pruned.outcomes);
    }

    #[test]
    fn keep_executions_disables_symmetry_and_matches_serial_executions() {
        let config = EnumConfig::builder().keep_executions(true).build();
        let policy = Policy::weak();
        let (pruned, pstats) = enumerate_pruned_stats(&symmetric_sb(), &policy, &config).unwrap();
        assert_eq!(pstats.symmetry_group, 1);
        let serial = enumerate(&symmetric_sb(), &policy, &config).unwrap();
        assert_eq!(pruned.executions.len(), serial.executions.len());
        assert_eq!(
            pruned.stats.distinct_executions,
            serial.stats.distinct_executions
        );
        // Same executions up to order: compare sorted canonical keys.
        let keys = |r: &EnumResult| {
            let mut k: Vec<Vec<u8>> = r.executions.iter().map(|b| b.canonical_key()).collect();
            k.sort();
            k
        };
        assert_eq!(keys(&pruned), keys(&serial));
    }

    #[test]
    fn expands_fewer_forks_than_serial_attempts() {
        let config = EnumConfig::builder().keep_executions(false).build();
        let policy = Policy::weak();
        let serial = enumerate(&sb(), &policy, &config).unwrap();
        let (_, pstats) = enumerate_pruned_stats(&sb(), &policy, &config).unwrap();
        assert!(
            pstats.expanded < serial.stats.forks as u64,
            "expanded {} vs serial forks {}",
            pstats.expanded,
            serial.stats.forks
        );
        assert!(pstats.in_place > 0, "last fork must move, not clone");
        assert_eq!(
            pstats.claims,
            pstats.pruned_dominated + pstats.pruned_symmetric + pstats.expanded
        );
    }

    #[test]
    fn budget_aborts_with_overbudget() {
        let config = EnumConfig::builder()
            .keep_executions(false)
            .budget(Some(2))
            .build();
        let err = enumerate_pruned(&sb(), &Policy::weak(), &config).unwrap_err();
        assert!(matches!(err, EnumError::Overbudget { budget: 2, .. }));
    }

    #[test]
    fn behavior_limit_propagates() {
        let config = EnumConfig::builder()
            .keep_executions(false)
            .max_behaviors(1)
            .build();
        let err = enumerate_pruned(&sb(), &Policy::weak(), &config).unwrap_err();
        assert!(matches!(err, EnumError::BehaviorLimit { limit: 1 }));
    }

    #[test]
    fn deterministic_across_runs() {
        let config = EnumConfig::builder().keep_executions(false).build();
        let a = enumerate_pruned(&symmetric_sb(), &Policy::weak(), &config).unwrap();
        let b = enumerate_pruned(&symmetric_sb(), &Policy::weak(), &config).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn symmetry_group_shapes() {
        assert_eq!(symmetry_group(&mp(), 64).len(), 1);
        assert_eq!(symmetry_group(&symmetric_sb(), 64).len(), 2);
        let t = || {
            ThreadProgram::new(vec![Instr::Store {
                addr: 0u64.into(),
                val: 1u64.into(),
            }])
        };
        let triple = Program::new(vec![t(), t(), t()]);
        assert_eq!(symmetry_group(&triple, 64).len(), 6);
        // Over the limit: falls back to identity.
        assert_eq!(symmetry_group(&triple, 5).len(), 1);
    }

    #[test]
    fn outcome_rows_permute_correctly_under_symmetry() {
        // Identical threads racing to store distinct... not possible with
        // identical code; instead check the symmetric SB outcome set
        // explicitly contains the asymmetric outcomes both ways.
        let config = EnumConfig::builder().keep_executions(false).build();
        let result = enumerate_pruned(&symmetric_sb(), &Policy::weak(), &config).unwrap();
        let outcomes: Vec<(Value, Value)> = result
            .outcomes
            .iter()
            .map(|o| (o.reg(0, Reg::new(0)), o.reg(1, Reg::new(0))))
            .collect();
        for (a, b) in &outcomes {
            assert!(
                outcomes.contains(&(*b, *a)),
                "outcome set must be closed under the thread swap"
            );
        }
    }

    #[test]
    fn traced_pruned_run_emits_prune_reasons() {
        use crate::telemetry::TraceCounters;
        let counters = Arc::new(TraceCounters::new());
        let config = EnumConfig::builder().keep_executions(false).build();
        let (result, pstats) = enumerate_pruned_traced(
            &symmetric_sb(),
            &Policy::weak(),
            &config,
            Arc::clone(&counters) as Arc<dyn TraceSink>,
        )
        .unwrap();
        let (forks, _dups, _inc, commits) = counters.snapshot();
        let (dominated, symmetric) = counters.snapshot_pruned();
        assert_eq!(forks, pstats.expanded);
        assert_eq!(dominated, pstats.pruned_dominated);
        assert_eq!(symmetric, pstats.pruned_symmetric);
        assert!(commits > 0 && commits <= result.stats.distinct_executions as u64);
    }
}
