//! Execution graphs: partially ordered sets of instruction instances.
//!
//! An execution of a program is represented as a DAG whose nodes are
//! dynamic instruction instances and whose edges are the ordering
//! relationships of the paper's Figure 2:
//!
//! * solid local-ordering edges `A ≺ B` required by the reordering axioms
//!   and by data dependence;
//! * ringed observation edges `source(L) → L`;
//! * dotted Store Atomicity edges inserted by the closure rules; and
//! * (for TSO) gray bypass edges that do **not** participate in `@`.
//!
//! The graph keeps the strict transitive closure of all `@`-relevant edges
//! incrementally (see [`crate::closure`]), so `A @ B` is a bit test.

use std::fmt;

use crate::atomicity::Rule;
use crate::bitset::BitSetRef;
use crate::closure::Closure;
use crate::error::CycleError;
use crate::ids::{Addr, NodeId, Reg, ThreadId, Value};
use crate::instr::BinOp;
use crate::policy::OpClass;

/// A dataflow input of a node: an immediate constant or the value produced
/// by another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Input {
    /// A constant, available immediately.
    Const(Value),
    /// The value of another graph node, available once that node resolves.
    Node(NodeId),
}

impl Input {
    /// The producing node, when the input is not a constant.
    pub fn producer(self) -> Option<NodeId> {
        match self {
            Input::Const(_) => None,
            Input::Node(id) => Some(id),
        }
    }
}

/// The operation-specific payload of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeDetail {
    /// An ALU operation.
    Compute {
        /// The operation.
        op: BinOp,
        /// Left input.
        lhs: Input,
        /// Right input.
        rhs: Input,
    },
    /// A conditional branch; resolving it redirects the thread's PC.
    Branch {
        /// Branch condition (taken when non-zero).
        cond: Input,
        /// Instruction index when taken.
        target: usize,
        /// Instruction index when not taken.
        fallthrough: usize,
    },
    /// A memory load.
    Load {
        /// Address input.
        addr_in: Input,
        /// Destination register (informational; bindings live in the
        /// thread state).
        dst: Reg,
    },
    /// A memory store.
    Store {
        /// Address input.
        addr_in: Input,
        /// Value input.
        val_in: Input,
    },
    /// An atomic read-modify-write: one node acting as both Load and
    /// Store (paper section 8's Compare-and-Swap extension).
    Rmw {
        /// Address input.
        addr_in: Input,
        /// The combined/replacing operand.
        src_in: Input,
        /// Comparison operand for CAS.
        expect_in: Option<Input>,
        /// The flavour.
        kind: RmwKind,
        /// Destination register (informational).
        dst: Reg,
    },
    /// A memory fence (no data; resolves immediately).
    Fence,
    /// An initial-memory store, created before any thread runs.
    Init,
}

/// The flavour of a read-modify-write node (mirrors
/// [`crate::instr::RmwOp`] with operands lifted into inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwKind {
    /// Unconditional exchange.
    Swap,
    /// Atomic fetch-and-add.
    FetchAdd,
    /// Compare-and-swap; performs no store when the comparison fails.
    Cas,
}

/// One dynamic instruction instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    thread: ThreadId,
    index_in_thread: u32,
    detail: NodeDetail,
    addr: Option<Addr>,
    value: Option<Value>,
    /// For stores: same as `value`. For resolved RMWs: the value written
    /// (`None` = failed CAS, no store performed).
    store_value: Option<Value>,
    source: Option<NodeId>,
    bypass_source: bool,
    resolved: bool,
}

impl Node {
    /// The thread that issued this node ([`ThreadId::INIT`] for initial
    /// stores).
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Zero-based issue index of this node within its thread.
    pub fn index_in_thread(&self) -> u32 {
        self.index_in_thread
    }

    /// The operation payload.
    pub fn detail(&self) -> &NodeDetail {
        &self.detail
    }

    /// The primary instruction class, for display purposes. RMW nodes
    /// report [`OpClass::Load`]; use [`Node::classes`] for reordering-table
    /// lookups, which must consider both of an RMW's facets.
    pub fn class(&self) -> OpClass {
        match self.detail {
            NodeDetail::Compute { .. } => OpClass::Compute,
            NodeDetail::Branch { .. } => OpClass::Branch,
            NodeDetail::Load { .. } | NodeDetail::Rmw { .. } => OpClass::Load,
            NodeDetail::Store { .. } | NodeDetail::Init => OpClass::Store,
            NodeDetail::Fence => OpClass::Fence,
        }
    }

    /// Every instruction class this node belongs to: one for ordinary
    /// nodes, `[Load, Store]` for atomic read-modify-writes.
    pub fn classes(&self) -> &'static [OpClass] {
        match self.detail {
            NodeDetail::Compute { .. } => &[OpClass::Compute],
            NodeDetail::Branch { .. } => &[OpClass::Branch],
            NodeDetail::Load { .. } => &[OpClass::Load],
            NodeDetail::Store { .. } | NodeDetail::Init => &[OpClass::Store],
            NodeDetail::Rmw { .. } => &[OpClass::Load, OpClass::Store],
            NodeDetail::Fence => &[OpClass::Fence],
        }
    }

    /// Returns `true` for nodes with a load facet (loads and RMWs): they
    /// observe a source store and are resolved by load resolution.
    pub fn is_load(&self) -> bool {
        matches!(
            self.detail,
            NodeDetail::Load { .. } | NodeDetail::Rmw { .. }
        )
    }

    /// Returns `true` for nodes with an *active* store facet: stores,
    /// initial-memory stores, and resolved RMWs that actually wrote (a
    /// failed CAS performs no store). An unresolved RMW is not yet a
    /// store — it cannot serve as a source and does not overwrite — but
    /// its load facet keeps it on every candidate-blocking path.
    pub fn is_store(&self) -> bool {
        match self.detail {
            NodeDetail::Store { .. } | NodeDetail::Init => true,
            NodeDetail::Rmw { .. } => self.resolved && self.store_value.is_some(),
            _ => false,
        }
    }

    /// Returns `true` for loads, stores and RMWs.
    pub fn is_memory(&self) -> bool {
        matches!(
            self.detail,
            NodeDetail::Load { .. }
                | NodeDetail::Store { .. }
                | NodeDetail::Init
                | NodeDetail::Rmw { .. }
        )
    }

    /// Returns `true` for atomic read-modify-write nodes.
    pub fn is_rmw(&self) -> bool {
        matches!(self.detail, NodeDetail::Rmw { .. })
    }

    /// The value this node wrote to memory, once known: the stored value
    /// for stores, the new value for successful RMWs, `None` for failed
    /// CAS and for non-stores.
    pub fn stored_value(&self) -> Option<Value> {
        match self.detail {
            NodeDetail::Store { .. } | NodeDetail::Init => self.value,
            NodeDetail::Rmw { .. } => self.store_value,
            _ => None,
        }
    }

    /// Returns `true` for initial-memory stores.
    pub fn is_init(&self) -> bool {
        matches!(self.detail, NodeDetail::Init)
    }

    /// The memory address, once known.
    pub fn addr(&self) -> Option<Addr> {
        self.addr
    }

    /// The node's value, once computed: the loaded value for a load, the
    /// stored value for a store, the result for a compute node, the
    /// condition for a branch.
    pub fn value(&self) -> Option<Value> {
        self.value
    }

    /// For a resolved load, the store it observes (`source(L)`).
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }

    /// Returns `true` when the load observed its source through the TSO
    /// store-buffer bypass (gray edge; `source(L) ⊀ L`).
    pub fn is_bypass_source(&self) -> bool {
        self.bypass_source
    }

    /// Whether the node has executed (value known; for loads, source
    /// chosen).
    pub fn is_resolved(&self) -> bool {
        self.resolved
    }

    /// A short human-readable label such as `S @1,2` or `L @1`.
    pub fn label(&self) -> String {
        let pos = format!("{}.{}", self.thread, self.index_in_thread);
        match &self.detail {
            NodeDetail::Compute { op, .. } => format!("{pos}: {op}"),
            NodeDetail::Branch { .. } => format!("{pos}: bnz"),
            NodeDetail::Load { .. } => match (self.addr, self.value) {
                (Some(a), Some(v)) => format!("{pos}: L {a} = {v}"),
                (Some(a), None) => format!("{pos}: L {a}"),
                _ => format!("{pos}: L ?"),
            },
            NodeDetail::Store { .. } => match (self.addr, self.value) {
                (Some(a), Some(v)) => format!("{pos}: S {a},{v}"),
                (Some(a), None) => format!("{pos}: S {a},?"),
                (None, Some(v)) => format!("{pos}: S ?,{v}"),
                _ => format!("{pos}: S ?,?"),
            },
            NodeDetail::Rmw { kind, .. } => {
                let k = match kind {
                    RmwKind::Swap => "swap",
                    RmwKind::FetchAdd => "faa",
                    RmwKind::Cas => "cas",
                };
                match (self.addr, self.value, self.store_value) {
                    (Some(a), Some(old), Some(new)) => format!("{pos}: {k} {a} {old}->{new}"),
                    (Some(a), Some(old), None) if self.resolved => {
                        format!("{pos}: {k} {a} {old} (no store)")
                    }
                    (Some(a), _, _) => format!("{pos}: {k} {a}"),
                    _ => format!("{pos}: {k} ?"),
                }
            }
            NodeDetail::Fence => format!("{pos}: fence"),
            NodeDetail::Init => format!(
                "init {},{}",
                self.addr.map(|a| a.to_string()).unwrap_or_default(),
                self.value.map(|v| v.to_string()).unwrap_or_default()
            ),
        }
    }
}

/// The kind of an ordering edge (the paper's Figure 2, plus bookkeeping
/// kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Local ordering required by a `never` table entry.
    Program,
    /// Dataflow dependence (operand producer → consumer).
    Data,
    /// Non-speculative address disambiguation: the producer of an earlier
    /// potentially-aliasing operation's address precedes the later
    /// operation (section 5.1, the `L6 ≺ L8` edge).
    AddrResolve,
    /// Same-address local ordering inserted once both addresses are known
    /// (an `x ≠ y` table entry that fired).
    Alias,
    /// Observation: `source(L) → L` (ringed in the paper's figures).
    Source,
    /// Store Atomicity edge inserted by rules a/b/c (dotted).
    Atomicity,
    /// Initial store precedes every other operation.
    Init,
    /// TSO bypass (gray): records `source(L)` for a load satisfied from the
    /// local store pipeline. **Not** part of `@`.
    Bypass,
}

impl EdgeKind {
    /// Whether edges of this kind participate in the `@` ordering.
    #[inline]
    pub fn in_order(self) -> bool {
        !matches!(self, EdgeKind::Bypass)
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::Program => "program",
            EdgeKind::Data => "data",
            EdgeKind::AddrResolve => "addr-resolve",
            EdgeKind::Alias => "alias",
            EdgeKind::Source => "source",
            EdgeKind::Atomicity => "atomicity",
            EdgeKind::Init => "init",
            EdgeKind::Bypass => "bypass",
        };
        f.write_str(s)
    }
}

/// A recorded edge (for rendering and projection; ordering queries go
/// through the closure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
    /// For [`EdgeKind::Atomicity`] edges inserted through
    /// [`ExecutionGraph::add_atomicity_edge`]: which closure rule of the
    /// paper's Figure 6 demanded the edge. `None` for every other kind
    /// (and for atomicity edges built by hand in tests).
    pub rule: Option<Rule>,
}

/// A partially ordered execution: the node arena, the typed edge list, and
/// the transitive closure of `@`.
#[derive(Debug, Default)]
pub struct ExecutionGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    closure: Closure,
}

impl Clone for ExecutionGraph {
    fn clone(&self) -> Self {
        ExecutionGraph {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
            closure: self.closure.clone(),
        }
    }

    // Capacity-reusing clone for the enumeration fork pool.
    fn clone_from(&mut self, source: &Self) {
        self.nodes.clone_from(&source.nodes);
        self.edges.clone_from(&source.edges);
        self.closure.clone_from(&source.closure);
    }
}

impl ExecutionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ExecutionGraph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node issued by `thread` with payload `detail`.
    ///
    /// Fences resolve immediately (they carry no data); all other nodes
    /// start unresolved.
    pub fn add_node(
        &mut self,
        thread: ThreadId,
        index_in_thread: u32,
        detail: NodeDetail,
    ) -> NodeId {
        let resolved = matches!(detail, NodeDetail::Fence);
        let node = Node {
            thread,
            index_in_thread,
            detail,
            addr: None,
            value: if resolved { Some(Value::ZERO) } else { None },
            store_value: None,
            source: None,
            bypass_source: false,
            resolved,
        };
        let id = self.closure.add_node();
        debug_assert_eq!(id.index(), self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Adds a resolved initial-memory store for `addr` holding `value`.
    ///
    /// The caller is responsible for ordering it before other nodes (see
    /// [`ExecutionGraph::add_edge`] with [`EdgeKind::Init`]).
    pub fn add_init_store(&mut self, index: u32, addr: Addr, value: Value) -> NodeId {
        let id = self.closure.add_node();
        debug_assert_eq!(id.index(), self.nodes.len());
        self.nodes.push(Node {
            thread: ThreadId::INIT,
            index_in_thread: index,
            detail: NodeDetail::Init,
            addr: Some(addr),
            value: Some(value),
            store_value: Some(value),
            source: None,
            bypass_source: false,
            resolved: true,
        });
        id
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Ids of all memory operations (loads and stores, including init).
    pub fn memory_ops(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, n)| n.is_memory()).map(|(id, _)| id)
    }

    /// Ids of all stores (including init) whose address is known to equal
    /// `addr`.
    pub fn stores_to(&self, addr: Addr) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(move |(_, n)| n.is_store() && n.addr() == Some(addr))
            .map(|(id, _)| id)
    }

    /// Ids of all loads whose address is known to equal `addr`.
    pub fn loads_of(&self, addr: Addr) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(move |(_, n)| n.is_load() && n.addr() == Some(addr))
            .map(|(id, _)| id)
    }

    /// The typed edge list, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Inserts an ordering edge.
    ///
    /// [`EdgeKind::Bypass`] edges are recorded but not added to `@`. Any
    /// other kind updates the transitive closure.
    ///
    /// Returns `Ok(true)` when a genuinely new ordering pair (or bypass
    /// record) was added.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the edge would make `@` cyclic; the graph
    /// is unchanged in that case.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: EdgeKind,
    ) -> Result<bool, CycleError> {
        if kind == EdgeKind::Bypass {
            self.edges.push(Edge {
                from,
                to,
                kind,
                rule: None,
            });
            return Ok(true);
        }
        let added = self.closure.add_edge(from, to)?;
        // Record the direct edge even when redundant in the closure: the
        // drawn figures distinguish "required" edges from implied ones.
        self.edges.push(Edge {
            from,
            to,
            kind,
            rule: None,
        });
        Ok(added)
    }

    /// Inserts a Store Atomicity edge tagged with the closure [`Rule`]
    /// that demanded it, so witnesses and refutations can cite the rule.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the edge would make `@` cyclic; the
    /// graph is unchanged in that case.
    pub fn add_atomicity_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        rule: Rule,
    ) -> Result<bool, CycleError> {
        let added = self.closure.add_edge(from, to)?;
        self.edges.push(Edge {
            from,
            to,
            kind: EdgeKind::Atomicity,
            rule: Some(rule),
        });
        Ok(added)
    }

    /// Returns `true` when `a @ b` (strictly).
    #[inline]
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.closure.reaches(a, b)
    }

    /// Returns `true` when the nodes are ordered either way by `@`.
    #[inline]
    pub fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        self.closure.ordered(a, b)
    }

    /// The strict `@`-predecessor set of a node.
    pub fn predecessors(&self, id: NodeId) -> BitSetRef<'_> {
        self.closure.predecessors(id)
    }

    /// The strict `@`-successor set of a node.
    pub fn successors(&self, id: NodeId) -> BitSetRef<'_> {
        self.closure.successors(id)
    }

    /// The underlying closure (for algorithms that need set operations).
    pub fn order(&self) -> &Closure {
        &self.closure
    }

    /// The value carried by a dataflow input, when available.
    pub(crate) fn input_value(&self, input: Input) -> Option<Value> {
        match input {
            Input::Const(v) => Some(v),
            Input::Node(id) => {
                let n = self.node(id);
                if n.is_resolved() {
                    n.value()
                } else {
                    None
                }
            }
        }
    }

    /// Marks load (or RMW) `load` as observing store `source`; sets its
    /// loaded value, computes and records an RMW's written value, and
    /// resolves it. `bypass` records a TSO store-buffer observation.
    ///
    /// This only mutates the node; the caller inserts the corresponding
    /// [`EdgeKind::Source`] or [`EdgeKind::Bypass`] edge and re-closes
    /// Store Atomicity.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not an unresolved load/RMW, `source` is not a
    /// resolved store, or an RMW's operands are not yet available (the
    /// resolution gate guarantees they are).
    pub(crate) fn set_source(&mut self, load: NodeId, source: NodeId, bypass: bool) {
        let loaded = {
            let src = self.node(source);
            assert!(
                src.is_store() && src.is_resolved(),
                "source must be a resolved store"
            );
            src.stored_value().expect("active store has a stored value")
        };
        // Compute an RMW's written value before mutating the node.
        let store_value = match *self.node(load).detail() {
            NodeDetail::Rmw {
                src_in,
                expect_in,
                kind,
                ..
            } => {
                let src = self
                    .input_value(src_in)
                    .expect("RMW operand resolved before resolution");
                match kind {
                    RmwKind::Swap => Some(src),
                    RmwKind::FetchAdd => Some(Value::new(loaded.raw().wrapping_add(src.raw()))),
                    RmwKind::Cas => {
                        let expect = self
                            .input_value(expect_in.expect("CAS carries an expect operand"))
                            .expect("CAS operand resolved before resolution");
                        if loaded == expect {
                            Some(src)
                        } else {
                            None
                        }
                    }
                }
            }
            _ => None,
        };
        let node = self.node_mut(load);
        assert!(
            node.is_load() && !node.is_resolved(),
            "target must be an unresolved load"
        );
        node.source = Some(source);
        node.bypass_source = bypass;
        node.value = Some(loaded);
        node.store_value = store_value;
        node.resolved = true;
    }

    pub(crate) fn set_addr(&mut self, id: NodeId, addr: Addr) {
        let node = self.node_mut(id);
        debug_assert!(node.addr.is_none() || node.addr == Some(addr));
        node.addr = Some(addr);
    }

    pub(crate) fn set_value(&mut self, id: NodeId, value: Value) {
        let node = self.node_mut(id);
        debug_assert!(node.value.is_none() || node.value == Some(value));
        node.value = Some(value);
    }

    pub(crate) fn mark_resolved(&mut self, id: NodeId) {
        self.node_mut(id).resolved = true;
    }

    /// Returns `true` when every node in the graph is resolved.
    pub fn fully_resolved(&self) -> bool {
        self.nodes.iter().all(Node::is_resolved)
    }

    // --- Observed-execution construction -------------------------------
    //
    // Public constructors for building a graph out of an *observed*
    // execution (a hardware or simulator trace) and checking it against
    // Store Atomicity — the TSOtool-style use case of the paper's
    // section 8 ("Tools for verifying memory model violations"). The
    // coherence-protocol checker in `samm-coherence` is built on these.

    /// Adds an already-executed store observed in a trace.
    pub fn add_store_event(
        &mut self,
        thread: ThreadId,
        index_in_thread: u32,
        addr: Addr,
        value: Value,
    ) -> NodeId {
        let id = self.add_node(
            thread,
            index_in_thread,
            NodeDetail::Store {
                addr_in: Input::Const(addr.into()),
                val_in: Input::Const(value),
            },
        );
        self.set_addr(id, addr);
        self.set_value(id, value);
        self.mark_resolved(id);
        id
    }

    /// Adds a load observed in a trace; its source is attached with
    /// [`ExecutionGraph::observe`].
    pub fn add_load_event(&mut self, thread: ThreadId, index_in_thread: u32, addr: Addr) -> NodeId {
        let id = self.add_node(
            thread,
            index_in_thread,
            NodeDetail::Load {
                addr_in: Input::Const(addr.into()),
                dst: Reg::new(0),
            },
        );
        self.set_addr(id, addr);
        id
    }

    /// Adds an already-executed atomic read-modify-write observed in a
    /// trace. `stored` is `Some(new_value)` for a successful operation and
    /// `None` for a failed CAS. Its source is attached with
    /// [`ExecutionGraph::observe`], which recomputes nothing — the trace's
    /// own values are kept.
    pub fn add_rmw_event(
        &mut self,
        thread: ThreadId,
        index_in_thread: u32,
        addr: Addr,
        stored: Option<Value>,
    ) -> NodeId {
        let id = self.add_node(
            thread,
            index_in_thread,
            NodeDetail::Rmw {
                addr_in: Input::Const(addr.into()),
                src_in: Input::Const(stored.unwrap_or(Value::ZERO)),
                expect_in: None,
                kind: RmwKind::Swap,
                dst: Reg::new(0),
            },
        );
        self.set_addr(id, addr);
        // Pre-record the traced written value; attach the source with
        // [`ExecutionGraph::observe_recorded`], which preserves it (plain
        // `observe` would recompute it and lose failed-CAS shapes).
        self.node_mut(id).store_value = stored;
        id
    }

    /// Like [`ExecutionGraph::observe`], but preserves the written value
    /// pre-recorded by [`ExecutionGraph::add_rmw_event`] instead of
    /// recomputing it — for observed-trace RMW events.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the observation contradicts the
    /// ordering already present.
    ///
    /// # Panics
    ///
    /// Panics if `rmw` is not an unresolved RMW or `source` is not a
    /// resolved store.
    pub fn observe_recorded(&mut self, rmw: NodeId, source: NodeId) -> Result<bool, CycleError> {
        let loaded = {
            let src = self.node(source);
            assert!(
                src.is_store() && src.is_resolved(),
                "source must be a resolved store"
            );
            src.stored_value().expect("active store has a stored value")
        };
        let added = self.add_edge(source, rmw, EdgeKind::Source)?;
        let node = self.node_mut(rmw);
        assert!(
            node.is_rmw() && !node.is_resolved(),
            "target must be an unresolved RMW"
        );
        node.source = Some(source);
        node.value = Some(loaded);
        node.resolved = true;
        Ok(added)
    }

    /// Records that `load` observed `source` (an [`EdgeKind::Source`]
    /// edge) and resolves the load with the store's value.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when the observation contradicts the
    /// ordering already present.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not an unresolved load or `source` is not a
    /// resolved store.
    pub fn observe(&mut self, load: NodeId, source: NodeId) -> Result<bool, CycleError> {
        let added = self.add_edge(source, load, EdgeKind::Source)?;
        self.set_source(load, source, false);
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(g: &mut ExecutionGraph, t: usize, i: u32, addr: u64, val: u64) -> NodeId {
        let id = g.add_node(
            ThreadId::new(t),
            i,
            NodeDetail::Store {
                addr_in: Input::Const(Value::new(addr)),
                val_in: Input::Const(Value::new(val)),
            },
        );
        g.set_addr(id, Addr::new(addr));
        g.set_value(id, Value::new(val));
        g.mark_resolved(id);
        id
    }

    fn load(g: &mut ExecutionGraph, t: usize, i: u32, addr: u64) -> NodeId {
        let id = g.add_node(
            ThreadId::new(t),
            i,
            NodeDetail::Load {
                addr_in: Input::Const(Value::new(addr)),
                dst: Reg::new(0),
            },
        );
        g.set_addr(id, Addr::new(addr));
        id
    }

    #[test]
    fn nodes_report_classes() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 1, 7);
        let l = load(&mut g, 0, 1, 1);
        let f = g.add_node(ThreadId::new(0), 2, NodeDetail::Fence);
        let init = g.add_init_store(0, Addr::new(1), Value::ZERO);
        assert_eq!(g.node(s).class(), OpClass::Store);
        assert_eq!(g.node(l).class(), OpClass::Load);
        assert_eq!(g.node(f).class(), OpClass::Fence);
        assert_eq!(g.node(init).class(), OpClass::Store);
        assert!(g.node(init).is_init());
        assert!(g.node(init).is_resolved());
        assert!(g.node(f).is_resolved(), "fences resolve immediately");
        assert!(!g.node(l).is_resolved());
    }

    #[test]
    fn edges_update_reachability() {
        let mut g = ExecutionGraph::new();
        let a = store(&mut g, 0, 0, 1, 1);
        let b = store(&mut g, 0, 1, 2, 2);
        let c = store(&mut g, 0, 2, 3, 3);
        g.add_edge(a, b, EdgeKind::Program).unwrap();
        g.add_edge(b, c, EdgeKind::Program).unwrap();
        assert!(g.precedes(a, c));
        assert!(!g.precedes(c, a));
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn bypass_edges_do_not_enter_the_order() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 1, 1);
        let l = load(&mut g, 0, 1, 1);
        g.add_edge(s, l, EdgeKind::Bypass).unwrap();
        assert!(!g.precedes(s, l));
        assert!(!g.ordered(s, l));
        assert_eq!(g.edges().len(), 1);
        // The reverse direction can still be ordered later without a cycle.
        g.add_edge(l, s, EdgeKind::Atomicity).unwrap();
        assert!(g.precedes(l, s));
    }

    #[test]
    fn cycle_insertion_fails_cleanly() {
        let mut g = ExecutionGraph::new();
        let a = store(&mut g, 0, 0, 1, 1);
        let b = store(&mut g, 1, 0, 1, 2);
        g.add_edge(a, b, EdgeKind::Atomicity).unwrap();
        let before = g.edges().len();
        assert!(g.add_edge(b, a, EdgeKind::Atomicity).is_err());
        assert_eq!(g.edges().len(), before, "failed edge must not be recorded");
        assert!(g.precedes(a, b));
    }

    #[test]
    fn stores_to_and_loads_of_filter_by_address() {
        let mut g = ExecutionGraph::new();
        let s1 = store(&mut g, 0, 0, 1, 10);
        let _s2 = store(&mut g, 0, 1, 2, 20);
        let l1 = load(&mut g, 1, 0, 1);
        let init = g.add_init_store(0, Addr::new(1), Value::ZERO);
        let stores: Vec<_> = g.stores_to(Addr::new(1)).collect();
        assert_eq!(stores, vec![s1, init]);
        let loads: Vec<_> = g.loads_of(Addr::new(1)).collect();
        assert_eq!(loads, vec![l1]);
    }

    #[test]
    fn set_source_resolves_load_with_store_value() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 1, 99);
        let l = load(&mut g, 1, 0, 1);
        g.set_source(l, s, false);
        let n = g.node(l);
        assert!(n.is_resolved());
        assert_eq!(n.value(), Some(Value::new(99)));
        assert_eq!(n.source(), Some(s));
        assert!(!n.is_bypass_source());
    }

    #[test]
    #[should_panic(expected = "unresolved load")]
    fn set_source_rejects_double_resolution() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 1, 1);
        let l = load(&mut g, 1, 0, 1);
        g.set_source(l, s, false);
        g.set_source(l, s, false);
    }

    #[test]
    fn memory_ops_excludes_fences_and_computes() {
        let mut g = ExecutionGraph::new();
        let _f = g.add_node(ThreadId::new(0), 0, NodeDetail::Fence);
        let s = store(&mut g, 0, 1, 1, 1);
        let c = g.add_node(
            ThreadId::new(0),
            2,
            NodeDetail::Compute {
                op: BinOp::Add,
                lhs: Input::Const(Value::ZERO),
                rhs: Input::Const(Value::ZERO),
            },
        );
        assert_eq!(g.memory_ops().collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.node(c).class(), OpClass::Compute);
    }

    #[test]
    fn labels_are_nonempty_and_descriptive() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 3, 9);
        let l = load(&mut g, 1, 0, 3);
        assert!(g.node(s).label().contains("S @3,9"));
        assert!(g.node(l).label().contains("L @3"));
        let init = g.add_init_store(0, Addr::new(3), Value::new(0));
        assert!(g.node(init).label().contains("init"));
    }

    #[test]
    fn observe_builds_checked_executions() {
        let mut g = ExecutionGraph::new();
        let s = g.add_store_event(ThreadId::new(0), 0, Addr::new(1), Value::new(9));
        let l = g.add_load_event(ThreadId::new(1), 0, Addr::new(1));
        assert!(g.observe(l, s).is_ok());
        assert_eq!(g.node(l).value(), Some(Value::new(9)));
        assert_eq!(g.node(l).source(), Some(s));
        assert!(g.precedes(s, l));
    }

    #[test]
    fn observe_rejects_contradictory_orders() {
        let mut g = ExecutionGraph::new();
        let s = g.add_store_event(ThreadId::new(0), 0, Addr::new(1), Value::new(9));
        let l = g.add_load_event(ThreadId::new(1), 0, Addr::new(1));
        g.add_edge(l, s, EdgeKind::Program).unwrap();
        assert!(g.observe(l, s).is_err(), "source after the load is a cycle");
    }

    #[test]
    fn rmw_events_keep_recorded_store_values() {
        let mut g = ExecutionGraph::new();
        let s = g.add_store_event(ThreadId::new(0), 0, Addr::new(1), Value::new(5));
        // A successful traced RMW that wrote 7...
        let ok = g.add_rmw_event(ThreadId::new(1), 0, Addr::new(1), Some(Value::new(7)));
        g.observe_recorded(ok, s).unwrap();
        assert!(g.node(ok).is_store());
        assert_eq!(g.node(ok).stored_value(), Some(Value::new(7)));
        assert_eq!(
            g.node(ok).value(),
            Some(Value::new(5)),
            "loaded the old value"
        );
        // ...and a failed traced CAS that wrote nothing.
        let failed = g.add_rmw_event(ThreadId::new(1), 1, Addr::new(1), None);
        g.observe_recorded(failed, ok).unwrap();
        assert!(!g.node(failed).is_store());
        assert_eq!(g.node(failed).value(), Some(Value::new(7)));
        assert_eq!(g.node(failed).stored_value(), None);
    }

    #[test]
    fn rmw_nodes_report_both_classes() {
        let mut g = ExecutionGraph::new();
        let r = g.add_rmw_event(ThreadId::new(0), 0, Addr::new(1), Some(Value::new(1)));
        assert_eq!(g.node(r).classes(), &[OpClass::Load, OpClass::Store]);
        assert!(g.node(r).is_load());
        assert!(g.node(r).is_rmw());
        assert!(g.node(r).is_memory());
        assert!(!g.node(r).is_store(), "unresolved RMW is not yet a store");
        assert!(g.node(r).label().contains("swap"));
    }

    #[test]
    fn fully_resolved_tracks_all_nodes() {
        let mut g = ExecutionGraph::new();
        let s = store(&mut g, 0, 0, 1, 1);
        let l = load(&mut g, 1, 0, 1);
        assert!(!g.fully_resolved());
        g.set_source(l, s, false);
        assert!(g.fully_resolved());
    }
}
