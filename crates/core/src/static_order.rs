//! Static intra-thread ordering: the part of `≺` a reordering table
//! guarantees *before* any enumeration.
//!
//! The paper factors a memory model into a per-thread reordering table
//! (Figure 1) and the Store Atomicity closure (Figure 6). The table alone
//! already pins down a sub-relation of every execution's local order: a
//! `never` entry always inserts a `≺` edge, an `x ≠ y` entry inserts one
//! whenever the two addresses are statically known to be equal, and data
//! dependencies are respected by dataflow execution under every model.
//! This module extracts that *guaranteed* order — the foundation of the
//! static analyses in `samm-analyze` (race detection, DRF-SC
//! certification, dead-fence linting) and of the fence synthesizer's
//! vacuous-slot pruning.
//!
//! Everything here is a conservative under-approximation: an edge is
//! reported only when it is present in **every** execution of the thread
//! under the given policy. `Bypass` entries are never guaranteed (the
//! ordering decision is deferred to load resolution), and register-held
//! addresses are treated as statically unknown.

use std::collections::BTreeSet;

use crate::ids::Addr;
use crate::instr::{Instr, Operand, Program, RmwOp, ThreadProgram};
use crate::policy::{Constraint, OpClass, Policy};

/// The kind of a static event (an instruction that emits a graph node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An arithmetic/logic instruction (a Compute node).
    Compute,
    /// A conditional branch.
    Branch,
    /// A memory load.
    Load,
    /// A memory store.
    Store,
    /// An atomic read-modify-write (both Load and Store facets).
    Rmw,
    /// A memory fence.
    Fence,
}

impl EventKind {
    /// The [`OpClass`] facets this event presents to the reordering
    /// table — `[Load, Store]` for an RMW, a single class otherwise.
    pub fn classes(self) -> &'static [OpClass] {
        match self {
            EventKind::Compute => &[OpClass::Compute],
            EventKind::Branch => &[OpClass::Branch],
            EventKind::Load => &[OpClass::Load],
            EventKind::Store => &[OpClass::Store],
            EventKind::Rmw => &[OpClass::Load, OpClass::Store],
            EventKind::Fence => &[OpClass::Fence],
        }
    }

    /// Whether the event reads memory (loads and RMWs).
    pub fn reads_memory(self) -> bool {
        matches!(self, EventKind::Load | EventKind::Rmw)
    }

    /// Whether the event writes memory (stores and RMWs; a CAS is
    /// conservatively counted as a writer even though a failed CAS
    /// performs no store).
    pub fn writes_memory(self) -> bool {
        matches!(self, EventKind::Store | EventKind::Rmw)
    }

    /// Whether the event accesses memory at all.
    pub fn is_memory(self) -> bool {
        self.reads_memory() || self.writes_memory()
    }
}

/// One node-emitting instruction of a thread, with everything the static
/// analyses need: its facets, its statically-known address (if any) and
/// the events whose values feed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticEvent {
    /// Index of the instruction in the thread's listing.
    pub instr_index: usize,
    /// Issue index among node-emitting instructions — for a straight-line
    /// thread this equals the emitted node's `index_in_thread`.
    pub issue_index: u32,
    /// The event kind.
    pub kind: EventKind,
    /// The memory address when statically known (an immediate operand);
    /// `None` for non-memory events and register-held (pointer)
    /// addresses.
    pub addr: Option<Addr>,
    /// Indices (into the event list) of earlier events whose register
    /// results this event consumes, transitively through `mov` renaming.
    pub deps: Vec<usize>,
}

impl StaticEvent {
    /// Whether this is a memory access with a statically unknown
    /// (register-held) address.
    pub fn addr_unknown(&self) -> bool {
        self.kind.is_memory() && self.addr.is_none()
    }
}

/// The static events of one thread plus its shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadEvents {
    /// Events in listing order.
    pub events: Vec<StaticEvent>,
    /// `true` when the thread is straight-line: no branches or jumps, and
    /// `halt` only as the final instruction. Only straight-line threads
    /// admit a complete static order; analyses over branchy threads must
    /// stay pairwise-conservative.
    pub straight_line: bool,
}

/// Extracts the static events of a thread.
///
/// Register definitions are tracked through `mov` renaming so that
/// `deps` reflects true dataflow: `r1 = load x; mov r2, r1; store y, r2`
/// records the store as depending on the load.
pub fn thread_events(thread: &ThreadProgram) -> ThreadEvents {
    let mut events: Vec<StaticEvent> = Vec::new();
    let mut straight_line = true;
    // Producer sets per register, transitively through movs.
    let mut producers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); thread.reg_count()];
    let deps_of = |producers: &[BTreeSet<usize>], ops: &[&Operand]| -> Vec<usize> {
        let mut deps: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            if let Operand::Reg(r) = op {
                deps.extend(producers[r.index()].iter().copied());
            }
        }
        deps.into_iter().collect()
    };
    let static_addr = |addr: &Operand| match addr {
        Operand::Imm(v) => Some(Addr::from(*v)),
        Operand::Reg(_) => None,
    };
    let mut issue: u32 = 0;
    for (instr_index, instr) in thread.instrs().iter().enumerate() {
        let mut push = |kind: EventKind, addr: Option<Addr>, deps: Vec<usize>, issue: &mut u32| {
            events.push(StaticEvent {
                instr_index,
                issue_index: *issue,
                kind,
                addr,
                deps,
            });
            *issue += 1;
        };
        match instr {
            Instr::Mov { dst, src } => {
                producers[dst.index()] = match src {
                    Operand::Reg(r) => producers[r.index()].clone(),
                    Operand::Imm(_) => BTreeSet::new(),
                };
            }
            Instr::Binop { dst, lhs, rhs, .. } => {
                let deps = deps_of(&producers, &[lhs, rhs]);
                push(EventKind::Compute, None, deps, &mut issue);
                producers[dst.index()] = [events.len() - 1].into_iter().collect();
            }
            Instr::Load { dst, addr } => {
                let deps = deps_of(&producers, &[addr]);
                push(EventKind::Load, static_addr(addr), deps, &mut issue);
                producers[dst.index()] = [events.len() - 1].into_iter().collect();
            }
            Instr::Store { addr, val } => {
                let deps = deps_of(&producers, &[addr, val]);
                push(EventKind::Store, static_addr(addr), deps, &mut issue);
            }
            Instr::Rmw { dst, addr, op, src } => {
                let mut ops: Vec<&Operand> = vec![addr, src];
                if let RmwOp::Cas { expect } = op {
                    ops.push(expect);
                }
                let deps = deps_of(&producers, &ops);
                push(EventKind::Rmw, static_addr(addr), deps, &mut issue);
                producers[dst.index()] = [events.len() - 1].into_iter().collect();
            }
            Instr::Fence => push(EventKind::Fence, None, Vec::new(), &mut issue),
            Instr::BranchNz { cond, .. } => {
                straight_line = false;
                let deps = deps_of(&producers, &[cond]);
                push(EventKind::Branch, None, deps, &mut issue);
            }
            Instr::Jump { .. } => straight_line = false,
            Instr::Halt => {
                if instr_index + 1 != thread.len() {
                    straight_line = false;
                }
            }
        }
    }
    ThreadEvents {
        events,
        straight_line,
    }
}

/// The transitive closure of the *guaranteed* intra-thread order over a
/// thread's static events under one policy.
///
/// Base edges, for a program-ordered pair `(i, j)`:
///
/// * `Never` combined constraint — always an edge;
/// * `SameAddr` combined constraint with both addresses statically known
///   and equal — the alias pair resolves to an edge in every execution;
/// * a data dependency (`j` consumes `i`'s result) — dataflow execution
///   respects it under every model.
///
/// `Bypass` pairs contribute nothing: the gray edge is excluded from `@`
/// and the ordering decision is deferred to load resolution.
#[derive(Debug, Clone)]
pub struct StaticOrder {
    n: usize,
    ordered: Vec<bool>,
}

impl StaticOrder {
    /// Computes the guaranteed order over `events` under `policy`.
    pub fn compute(events: &[StaticEvent], policy: &Policy) -> StaticOrder {
        let n = events.len();
        let mut ordered = vec![false; n * n];
        for j in 0..n {
            for i in 0..j {
                if guaranteed_edge(&events[i], &events[j], policy) {
                    ordered[i * n + j] = true;
                }
            }
        }
        // Transitive closure; base edges only point forward, so a single
        // forward sweep per intermediate node suffices.
        for k in 0..n {
            for i in 0..k {
                if ordered[i * n + k] {
                    for j in (k + 1)..n {
                        if ordered[k * n + j] {
                            ordered[i * n + j] = true;
                        }
                    }
                }
            }
        }
        StaticOrder { n, ordered }
    }

    /// Whether event `i` is guaranteed to precede event `j` in every
    /// execution.
    pub fn ordered(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && self.ordered[i * self.n + j]
    }

    /// Whether the order is total over the thread's *memory* events —
    /// the certifiable shape where the policy's local edge structure
    /// collapses to full program order.
    pub fn total_over_memory(&self, events: &[StaticEvent]) -> bool {
        let mems: Vec<usize> = (0..events.len())
            .filter(|&i| events[i].kind.is_memory())
            .collect();
        mems.windows(2).all(|w| self.ordered(w[0], w[1]))
    }

    /// A shortest chain of guaranteed *base* edges from `i` to `j`, or
    /// `None` when unordered — the checkable witness used by DRF-SC
    /// certificates.
    pub fn chain(
        &self,
        events: &[StaticEvent],
        policy: &Policy,
        i: usize,
        j: usize,
    ) -> Option<Vec<usize>> {
        if i >= events.len() || j >= events.len() {
            return None;
        }
        // BFS over base edges.
        let mut prev: Vec<Option<usize>> = vec![None; events.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(i);
        prev[i] = Some(i);
        while let Some(cur) = queue.pop_front() {
            if cur == j {
                let mut path = vec![j];
                let mut at = j;
                while at != i {
                    at = prev[at].expect("reached nodes have predecessors");
                    path.push(at);
                }
                path.reverse();
                return Some(path);
            }
            for next in (cur + 1)..events.len() {
                if prev[next].is_none() && guaranteed_edge(&events[cur], &events[next], policy) {
                    prev[next] = Some(cur);
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// Whether the table guarantees a `≺` edge for the program-ordered event
/// pair `(first, second)` in every execution. This is the base relation
/// of [`StaticOrder`]; see the struct docs for the three edge sources.
pub fn guaranteed_edge(first: &StaticEvent, second: &StaticEvent, policy: &Policy) -> bool {
    // `deps` holds event-list indices, which coincide with issue indices
    // (events are pushed in issue order); it is sorted, being built from
    // a `BTreeSet`.
    if second
        .deps
        .binary_search(&(first.issue_index as usize))
        .is_ok()
    {
        return true;
    }
    match policy.combined_constraint(first.kind.classes(), second.kind.classes()) {
        Constraint::Never => true,
        Constraint::SameAddr => match (first.addr, second.addr) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
        Constraint::Bypass | Constraint::Free | Constraint::DataOnly => false,
    }
}

/// Would a fence inserted at instruction boundary `pos` (between
/// instructions `pos - 1` and `pos`) of `thread` add any guaranteed
/// memory-memory order not already present under `policy`?
///
/// Returns `true` only when the fence is *provably* inert: the thread is
/// straight-line, and every memory pair the fence would order (one side
/// per boundary, for classes the fence row/column actually orders) is
/// already guaranteed. Branchy threads and unknown addresses always
/// report `false` — conservatively "useful".
pub fn fence_slot_is_vacuous(thread: &ThreadProgram, policy: &Policy, pos: usize) -> bool {
    let ThreadEvents {
        events,
        straight_line,
    } = thread_events(thread);
    if !straight_line {
        return false;
    }
    let order = StaticOrder::compute(&events, policy);
    let fence_orders = |e: &StaticEvent, before: bool| -> bool {
        let c = if before {
            policy.combined_constraint(e.kind.classes(), &[OpClass::Fence])
        } else {
            policy.combined_constraint(&[OpClass::Fence], e.kind.classes())
        };
        c == Constraint::Never
    };
    for (i, a) in events.iter().enumerate() {
        if a.instr_index >= pos || !a.kind.is_memory() || !fence_orders(a, true) {
            continue;
        }
        for (j, b) in events.iter().enumerate() {
            if b.instr_index < pos || !b.kind.is_memory() || !fence_orders(b, false) {
                continue;
            }
            if !order.ordered(i, j) {
                return false;
            }
        }
    }
    true
}

/// Whether the existing fence at `fence_instr_index` is dead: removing
/// it changes no guaranteed memory-memory order. Only claims death for
/// straight-line threads; returns `false` (alive) otherwise or when the
/// index is not a fence.
pub fn fence_is_dead(thread: &ThreadProgram, policy: &Policy, fence_instr_index: usize) -> bool {
    if !matches!(thread.instrs().get(fence_instr_index), Some(Instr::Fence)) {
        return false;
    }
    let ThreadEvents { straight_line, .. } = thread_events(thread);
    if !straight_line {
        return false;
    }
    // Re-check vacuity on the thread without this fence (straight-line, so
    // no targets need remapping).
    let reduced: Vec<Instr> = thread
        .instrs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != fence_instr_index)
        .map(|(_, instr)| *instr)
        .collect();
    fence_slot_is_vacuous(&ThreadProgram::new(reduced), policy, fence_instr_index)
}

/// The synchronization skeleton of a program: where its fences and
/// atomic RMWs sit. This is the "sync-edge" raw material the static
/// analyses work from — fences generate guaranteed intra-thread edges,
/// RMWs participate in Store Atomicity as both load and store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncSkeleton {
    /// Per thread: instruction indices of fences.
    pub fences: Vec<Vec<usize>>,
    /// Per thread: instruction indices of atomic RMWs.
    pub rmws: Vec<Vec<usize>>,
}

/// Extracts the [`SyncSkeleton`] of a program.
pub fn sync_skeleton(program: &Program) -> SyncSkeleton {
    let mut skeleton = SyncSkeleton::default();
    for thread in program.threads() {
        let mut fences = Vec::new();
        let mut rmws = Vec::new();
        for (i, instr) in thread.instrs().iter().enumerate() {
            match instr {
                Instr::Fence => fences.push(i),
                Instr::Rmw { .. } => rmws.push(i),
                _ => {}
            }
        }
        skeleton.fences.push(fences);
        skeleton.rmws.push(rmws);
    }
    skeleton
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, Value};

    fn imm(v: u64) -> Operand {
        Operand::Imm(Value::new(v))
    }

    fn store(addr: u64, val: u64) -> Instr {
        Instr::Store {
            addr: imm(addr),
            val: imm(val),
        }
    }

    fn load(dst: usize, addr: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(dst),
            addr: imm(addr),
        }
    }

    #[test]
    fn events_track_issue_indices_and_movs() {
        let t = ThreadProgram::new(vec![
            load(0, 0),
            Instr::Mov {
                dst: Reg::new(1),
                src: Operand::Reg(Reg::new(0)),
            },
            Instr::Store {
                addr: imm(1),
                val: Operand::Reg(Reg::new(1)),
            },
        ]);
        let te = thread_events(&t);
        assert!(te.straight_line);
        assert_eq!(te.events.len(), 2, "mov emits no event");
        assert_eq!(te.events[1].issue_index, 1);
        assert_eq!(
            te.events[1].deps,
            vec![0],
            "store depends on the load through the mov"
        );
    }

    #[test]
    fn fenced_sb_thread_is_totally_ordered_under_weak() {
        let t = ThreadProgram::new(vec![store(0, 1), Instr::Fence, load(0, 1)]);
        let te = thread_events(&t);
        let order = StaticOrder::compute(&te.events, &Policy::weak());
        assert!(order.total_over_memory(&te.events));
        assert!(order.ordered(0, 2), "store before load through the fence");
        let chain = order
            .chain(&te.events, &Policy::weak(), 0, 2)
            .expect("chain exists");
        assert_eq!(chain, vec![0, 1, 2]);
    }

    #[test]
    fn unfenced_sb_thread_is_not_ordered_under_weak_but_is_under_sc() {
        let t = ThreadProgram::new(vec![store(0, 1), load(0, 1)]);
        let te = thread_events(&t);
        let weak = StaticOrder::compute(&te.events, &Policy::weak());
        assert!(!weak.total_over_memory(&te.events));
        let sc = StaticOrder::compute(&te.events, &Policy::sequential_consistency());
        assert!(sc.total_over_memory(&te.events));
    }

    #[test]
    fn same_address_pairs_are_ordered_under_weak() {
        let t = ThreadProgram::new(vec![store(0, 1), load(0, 0)]);
        let te = thread_events(&t);
        let order = StaticOrder::compute(&te.events, &Policy::weak());
        assert!(
            order.ordered(0, 1),
            "x != y entry orders the same-address pair"
        );
    }

    #[test]
    fn bypass_pairs_are_never_guaranteed() {
        // Same-address store->load under TSO resolves by bypass.
        let t = ThreadProgram::new(vec![store(0, 1), load(0, 0)]);
        let te = thread_events(&t);
        let order = StaticOrder::compute(&te.events, &Policy::tso());
        assert!(!order.ordered(0, 1));
    }

    #[test]
    fn data_dependencies_are_guaranteed_under_every_policy() {
        let t = ThreadProgram::new(vec![
            load(0, 0),
            Instr::Store {
                addr: imm(1),
                val: Operand::Reg(Reg::new(0)),
            },
        ]);
        let te = thread_events(&t);
        let order = StaticOrder::compute(&te.events, &Policy::weak());
        assert!(order.ordered(0, 1));
        assert!(order.total_over_memory(&te.events));
    }

    #[test]
    fn fence_between_independent_accesses_is_useful() {
        let t = ThreadProgram::new(vec![store(0, 1), load(0, 1)]);
        assert!(!fence_slot_is_vacuous(&t, &Policy::weak(), 1));
    }

    #[test]
    fn fence_between_same_address_accesses_is_vacuous_under_weak() {
        let t = ThreadProgram::new(vec![store(0, 1), load(0, 0)]);
        assert!(fence_slot_is_vacuous(&t, &Policy::weak(), 1));
    }

    #[test]
    fn duplicate_fence_is_dead() {
        let t = ThreadProgram::new(vec![store(0, 1), Instr::Fence, Instr::Fence, load(0, 1)]);
        assert!(fence_is_dead(&t, &Policy::weak(), 1));
        assert!(fence_is_dead(&t, &Policy::weak(), 2));
        // But a lone fence between the accesses is alive.
        let t2 = ThreadProgram::new(vec![store(0, 1), Instr::Fence, load(0, 1)]);
        assert!(!fence_is_dead(&t2, &Policy::weak(), 1));
    }

    #[test]
    fn branchy_threads_are_never_claimed_vacuous() {
        let t = ThreadProgram::new(vec![
            load(0, 0),
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            store(0, 1),
        ]);
        let te = thread_events(&t);
        assert!(!te.straight_line);
        assert!(!fence_slot_is_vacuous(&t, &Policy::weak(), 1));
        assert!(!fence_is_dead(&t, &Policy::weak(), 1));
    }

    #[test]
    fn sync_skeleton_lists_fences_and_rmws() {
        let t0 = ThreadProgram::new(vec![store(0, 1), Instr::Fence, load(0, 1)]);
        let t1 = ThreadProgram::new(vec![Instr::Rmw {
            dst: Reg::new(0),
            addr: imm(0),
            op: RmwOp::Swap,
            src: imm(1),
        }]);
        let skel = sync_skeleton(&Program::new(vec![t0, t1]));
        assert_eq!(skel.fences, vec![vec![1], vec![]]);
        assert_eq!(skel.rmws, vec![vec![], vec![0]]);
    }
}
