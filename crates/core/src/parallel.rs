//! Work-stealing parallel behaviour enumeration.
//!
//! The paper's enumeration procedure (section 4) is embarrassingly
//! parallel: every behaviour popped from the frontier is refined
//! independently, and the only shared state is the duplicate filter over
//! canonical Load-Store-graph keys. [`enumerate_parallel`] exploits this
//! with a pool of scoped workers sharing
//!
//! * a **global frontier** sharded into per-worker deques — owners push
//!   and pop LIFO (depth-first, keeping the frontier small); idle workers
//!   steal half a victim's deque FIFO (breadth-first, moving the largest
//!   subtrees); and
//! * a **sharded dedup set** — `N` mutex-protected `HashSet<Vec<u8>>`
//!   shards addressed by a hash of the canonical key, so concurrent
//!   inserts rarely contend.
//!
//! Per-worker [`EnumStats`] and outcome/execution sets are merged after
//! the pool drains. The merged result is **deterministic**: outcomes live
//! in an ordered set and executions are sorted by canonical key, so the
//! result is byte-identical run-to-run and its outcome/execution *sets*
//! equal the serial enumerator's exactly (the serial engine reports
//! executions in discovery order instead — same set, different order).
//! Scheduling-dependent counters ([`EnumStats::steals`],
//! [`EnumStats::shard_contention`], [`EnumStats::idle_wakeups`]) are the
//! only nondeterministic outputs.

use std::collections::{HashSet, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::enumerate::{enumerate, EnumConfig, EnumResult, EnumStats};
use crate::error::EnumError;
use crate::exec::{Behavior, StepError};
use crate::instr::Program;
use crate::obs::Obs;
use crate::outcome::OutcomeSet;
use crate::policy::Policy;

/// Duplicate filter sharded over `shards.len()` mutex-protected sets.
///
/// A behaviour's canonical key picks its shard by hash, so two workers
/// only contend when their keys collide on a shard. `try_lock` first and
/// count the fallback, making contention observable in the merged stats.
struct ShardedSeen {
    shards: Vec<Mutex<HashSet<Vec<u8>>>>,
}

impl ShardedSeen {
    fn new(shard_count: usize) -> Self {
        ShardedSeen {
            shards: (0..shard_count)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Inserts `key`; returns `(was_new, contended)`.
    fn insert(&self, key: Vec<u8>) -> (bool, bool) {
        let shard = &self.shards[self.shard_of(&key)];
        match shard.try_lock() {
            Ok(mut set) => (set.insert(key), false),
            Err(std::sync::TryLockError::WouldBlock) => (
                shard.lock().expect("dedup shard poisoned").insert(key),
                true,
            ),
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("dedup shard poisoned"),
        }
    }
}

/// Frontier state shared by the worker pool.
struct Pool {
    /// One deque per worker; the owner pushes/pops the back, thieves
    /// steal from the front.
    deques: Vec<Mutex<VecDeque<Behavior>>>,
    /// Behaviours alive: queued in some deque or being refined by a
    /// worker. The pool drains when this reaches zero.
    pending: AtomicUsize,
    /// Global pop counter enforcing [`EnumConfig::max_behaviors`].
    explored: AtomicUsize,
    /// Global fork counter enforcing [`EnumConfig::budget`] across
    /// workers.
    forks: AtomicU64,
    /// Raised on the first error; workers exit promptly.
    stop: AtomicBool,
    /// The first error raised, if any.
    error: Mutex<Option<EnumError>>,
    seen: ShardedSeen,
}

impl Pool {
    fn fail(&self, error: EnumError) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(error);
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Pops from `worker`'s own deque, or steals half of the first
    /// non-empty victim's deque (round-robin from `worker + 1`). Returns
    /// `None` when every deque looks empty.
    fn acquire(&self, worker: usize, stats: &mut EnumStats) -> Option<Behavior> {
        if let Some(b) = self.deques[worker]
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(b);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            let mut loot = {
                let mut deque = self.deques[victim].lock().expect("deque poisoned");
                let take = deque.len().div_ceil(2);
                deque.drain(..take).collect::<VecDeque<Behavior>>()
            };
            if let Some(b) = loot.pop_front() {
                stats.steals += 1;
                if !loot.is_empty() {
                    self.deques[worker]
                        .lock()
                        .expect("deque poisoned")
                        .extend(loot);
                }
                return Some(b);
            }
        }
        None
    }
}

/// Everything one worker accumulated; merged after the pool drains.
#[derive(Default)]
struct WorkerResult {
    stats: EnumStats,
    outcomes: OutcomeSet,
    /// Keyed executions, so the merge can sort canonically.
    executions: Vec<(Vec<u8>, Behavior)>,
    /// Canonical keys of completed behaviours when executions are not
    /// kept and dedup is off, so the merge can still collapse
    /// `distinct_executions` to the true distinct count.
    final_keys: Vec<Vec<u8>>,
}

/// Refines one behaviour: counts it, emits it if complete, otherwise
/// forks every `(resolvable load, candidate store)` choice onto the
/// worker's own deque.
#[allow(clippy::too_many_arguments)]
fn refine(
    behavior: Behavior,
    worker: usize,
    pool: &Pool,
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    may_roll_back: bool,
    local: &mut WorkerResult,
) {
    let explored = pool.explored.fetch_add(1, Ordering::Relaxed) + 1;
    if explored > config.max_behaviors {
        pool.fail(EnumError::BehaviorLimit {
            limit: config.max_behaviors,
        });
        return;
    }
    local.stats.explored += 1;
    local.stats.max_graph_nodes = local.stats.max_graph_nodes.max(behavior.graph().len());

    if behavior.is_complete() {
        local.stats.distinct_executions += 1;
        local.outcomes.insert(behavior.outcome());
        if config.keep_executions {
            local.executions.push((behavior.canonical_key(), behavior));
        } else if !config.dedup {
            local.final_keys.push(behavior.canonical_key());
        }
        return;
    }

    let loads = behavior.resolvable_loads();
    if loads.is_empty() {
        pool.fail(EnumError::Stuck);
        return;
    }
    for load in loads {
        let stores = behavior.candidates(load);
        if let Some(obs) = behavior.obs() {
            Obs::add(&obs.candidate_calls, 1);
            Obs::add(&obs.candidate_stores, stores.len() as u64);
        }
        for store in stores {
            if pool.stop.load(Ordering::Relaxed) {
                return;
            }
            local.stats.forks += 1;
            let global_forks = pool.forks.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(budget) = config.budget {
                if global_forks > budget {
                    pool.fail(EnumError::Overbudget {
                        budget,
                        forks: global_forks,
                    });
                    return;
                }
            }
            let mut fork = behavior.clone();
            let step = fork
                .resolve_load(load, store)
                .and_then(|()| fork.settle(program, policy, config.max_nodes_per_thread));
            match step {
                Ok(()) => {
                    if config.dedup {
                        let (new, contended) = pool.seen.insert(fork.canonical_key());
                        if contended {
                            local.stats.shard_contention += 1;
                        }
                        if !new {
                            local.stats.deduped += 1;
                            continue;
                        }
                    }
                    pool.pending.fetch_add(1, Ordering::SeqCst);
                    pool.deques[worker]
                        .lock()
                        .expect("deque poisoned")
                        .push_back(fork);
                }
                Err(StepError::Inconsistent(e)) => {
                    if may_roll_back {
                        local.stats.rolled_back += 1;
                    } else {
                        pool.fail(EnumError::UnexpectedCycle(e));
                        return;
                    }
                }
                Err(StepError::NodeLimit { thread, limit }) => {
                    pool.fail(EnumError::NodeLimit { thread, limit });
                    return;
                }
            }
        }
    }
}

fn worker_loop(
    worker: usize,
    pool: &Pool,
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    may_roll_back: bool,
) -> WorkerResult {
    let mut local = WorkerResult::default();
    loop {
        if pool.stop.load(Ordering::SeqCst) {
            break;
        }
        match pool.acquire(worker, &mut local.stats) {
            Some(behavior) => {
                refine(
                    behavior,
                    worker,
                    pool,
                    program,
                    policy,
                    config,
                    may_roll_back,
                    &mut local,
                );
                // The parent is retired only after its forks are queued,
                // so `pending` can never dip to zero while refinements
                // are still owed.
                pool.pending.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if pool.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                local.stats.idle_wakeups += 1;
                std::thread::yield_now();
            }
        }
    }
    local
}

/// The worker count [`enumerate_parallel`] uses for `config`: the
/// explicit [`EnumConfig::parallelism`] if nonzero, otherwise
/// [`std::thread::available_parallelism`].
pub fn effective_parallelism(config: &EnumConfig) -> usize {
    if config.parallelism != 0 {
        config.parallelism
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Enumerates every behaviour of `program` under `policy` on a
/// work-stealing thread pool of [`EnumConfig::parallelism`] workers.
///
/// Equivalent to [`enumerate`] — the outcome set, execution set, and the
/// deterministic statistics (`explored`, `forks`, `deduped`,
/// `rolled_back`, `distinct_executions`, `max_graph_nodes`) match the
/// serial enumerator exactly — but wall-clock scales with workers on
/// large frontiers. `parallelism == 1` runs the serial enumerator on the
/// calling thread (no pool). Executions in the result are sorted by
/// canonical key regardless of worker count, so the result is
/// byte-identical run-to-run.
///
/// # Errors
///
/// The same failures as [`enumerate`]: [`EnumError::NodeLimit`],
/// [`EnumError::BehaviorLimit`], [`EnumError::UnexpectedCycle`],
/// [`EnumError::Stuck`]. When several workers fail concurrently, the
/// first error raised wins.
///
/// # Examples
///
/// ```
/// use samm_core::enumerate::{enumerate, EnumConfig};
/// use samm_core::parallel::enumerate_parallel;
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::Reg;
/// use samm_core::policy::Policy;
///
/// let t = |a: u64, b: u64| ThreadProgram::new(vec![
///     Instr::Store { addr: a.into(), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: b.into() },
/// ]);
/// let sb = Program::new(vec![t(0, 1), t(1, 0)]);
/// let config = EnumConfig { parallelism: 4, ..EnumConfig::default() };
/// let par = enumerate_parallel(&sb, &Policy::weak(), &config).unwrap();
/// let ser = enumerate(&sb, &Policy::weak(), &config).unwrap();
/// assert_eq!(par.outcomes, ser.outcomes);
/// assert_eq!(par.stats.distinct_executions, ser.stats.distinct_executions);
/// ```
pub fn enumerate_parallel(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<EnumResult, EnumError> {
    let workers = effective_parallelism(config);
    if workers <= 1 {
        let mut result = enumerate(program, policy, config)?;
        result.stats.workers = 1;
        sort_executions(&mut result);
        return Ok(result);
    }

    let may_roll_back = policy.alias_speculation() || policy.has_bypass() || program.uses_rmw();
    // A single Obs block shared by every fork on every worker: relaxed
    // atomic counters, so the merged snapshot equals the serial engine's
    // counter totals (the engines apply the same closure to the same fork
    // set). Trace events are serial-only — fork order here is
    // scheduling-dependent.
    let obs = config.observe.then(|| Arc::new(Obs::new()));
    let mut root = Behavior::new(program);
    if let Some(obs) = &obs {
        root.enable_obs(Arc::clone(obs));
    }
    match root.settle(program, policy, config.max_nodes_per_thread) {
        Ok(()) => {}
        Err(StepError::NodeLimit { thread, limit }) => {
            return Err(EnumError::NodeLimit { thread, limit })
        }
        Err(StepError::Inconsistent(e)) => return Err(EnumError::UnexpectedCycle(e)),
    }

    // Over-shard relative to the worker count so concurrent inserts of
    // different keys almost never share a lock.
    let pool = Pool {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(1),
        explored: AtomicUsize::new(0),
        forks: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
        seen: ShardedSeen::new((workers * 8).next_power_of_two()),
    };
    if config.dedup {
        pool.seen.insert(root.canonical_key());
    }
    pool.deques[0]
        .lock()
        .expect("deque poisoned")
        .push_back(root);

    let locals: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let pool = &pool;
                scope.spawn(move || {
                    worker_loop(worker, pool, program, policy, config, may_roll_back)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });

    if let Some(error) = pool.error.lock().expect("error slot poisoned").take() {
        return Err(error);
    }

    let mut result = EnumResult {
        stats: EnumStats {
            workers,
            ..EnumStats::default()
        },
        ..EnumResult::default()
    };
    let mut keyed: Vec<(Vec<u8>, Behavior)> = Vec::new();
    let mut final_keys: Vec<Vec<u8>> = Vec::new();
    for local in locals {
        result.stats.explored += local.stats.explored;
        result.stats.forks += local.stats.forks;
        result.stats.deduped += local.stats.deduped;
        result.stats.rolled_back += local.stats.rolled_back;
        result.stats.distinct_executions += local.stats.distinct_executions;
        result.stats.max_graph_nodes = result
            .stats
            .max_graph_nodes
            .max(local.stats.max_graph_nodes);
        result.stats.steals += local.stats.steals;
        result.stats.shard_contention += local.stats.shard_contention;
        result.stats.idle_wakeups += local.stats.idle_wakeups;
        result.outcomes.extend(local.outcomes.iter().cloned());
        keyed.extend(local.executions);
        final_keys.extend(local.final_keys);
    }
    result.stats.obs = obs.map(|o| o.snapshot());

    // Without dedup, equivalent complete behaviours are reached through
    // several resolution orders; collapse them exactly as the serial
    // enumerator does.
    if !config.dedup {
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.dedup_by(|a, b| a.0 == b.0);
        if config.keep_executions {
            result.stats.distinct_executions = keyed.len();
        } else {
            final_keys.sort();
            final_keys.dedup();
            result.stats.distinct_executions = final_keys.len();
        }
    } else {
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
    }
    result.executions = keyed.into_iter().map(|(_, b)| b).collect();
    Ok(result)
}

/// Sorts kept executions by canonical key (the parallel engine's
/// deterministic order).
fn sort_executions(result: &mut EnumResult) {
    result
        .executions
        .sort_by_cached_key(Behavior::canonical_key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::instr::{Instr, ThreadProgram};

    const X: u64 = 0;
    const Y: u64 = 1;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    fn sb() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ])
    }

    /// A 3-thread store-buffering ring — a frontier big enough that every
    /// worker gets work.
    fn sb_ring() -> Program {
        let t = |mine: u64, theirs: u64| ThreadProgram::new(vec![st(mine, 1), ld(0, theirs)]);
        Program::new(vec![t(0, 1), t(1, 2), t(2, 0)])
    }

    fn with_workers(workers: usize) -> EnumConfig {
        EnumConfig {
            parallelism: workers,
            ..EnumConfig::default()
        }
    }

    fn execution_keys(result: &EnumResult) -> Vec<Vec<u8>> {
        result
            .executions
            .iter()
            .map(Behavior::canonical_key)
            .collect()
    }

    #[test]
    fn matches_serial_across_models_and_worker_counts() {
        for prog in [sb(), sb_ring()] {
            for policy in [
                Policy::sequential_consistency(),
                Policy::tso(),
                Policy::pso(),
                Policy::weak(),
                Policy::weak().with_alias_speculation(true),
            ] {
                let serial = enumerate(&prog, &policy, &EnumConfig::default()).unwrap();
                for workers in [1, 2, 4, 8] {
                    let par = enumerate_parallel(&prog, &policy, &with_workers(workers)).unwrap();
                    assert_eq!(par.outcomes, serial.outcomes, "{} outcomes", policy.name());
                    assert_eq!(
                        par.stats.distinct_executions,
                        serial.stats.distinct_executions,
                        "{} executions at {workers} workers",
                        policy.name()
                    );
                    assert_eq!(par.stats.explored, serial.stats.explored);
                    assert_eq!(par.stats.forks, serial.stats.forks);
                    assert_eq!(par.stats.deduped, serial.stats.deduped);
                    assert_eq!(par.stats.rolled_back, serial.stats.rolled_back);
                    assert_eq!(par.stats.max_graph_nodes, serial.stats.max_graph_nodes);
                    let mut serial_keys: Vec<Vec<u8>> = serial
                        .executions
                        .iter()
                        .map(Behavior::canonical_key)
                        .collect();
                    serial_keys.sort();
                    assert_eq!(execution_keys(&par), serial_keys);
                }
            }
        }
    }

    #[test]
    fn results_are_byte_identical_run_to_run() {
        let prog = sb_ring();
        let config = with_workers(4);
        let first = enumerate_parallel(&prog, &Policy::weak(), &config).unwrap();
        for _ in 0..5 {
            let again = enumerate_parallel(&prog, &Policy::weak(), &config).unwrap();
            assert_eq!(again.outcomes, first.outcomes);
            assert_eq!(execution_keys(&again), execution_keys(&first));
            assert_eq!(
                again.stats.distinct_executions,
                first.stats.distinct_executions
            );
        }
    }

    #[test]
    fn dedup_off_matches_serial_collapse() {
        let config = EnumConfig {
            dedup: false,
            parallelism: 4,
            ..EnumConfig::default()
        };
        let serial = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig {
                dedup: false,
                ..EnumConfig::default()
            },
        )
        .unwrap();
        let par = enumerate_parallel(&sb(), &Policy::weak(), &config).unwrap();
        assert_eq!(par.outcomes, serial.outcomes);
        assert_eq!(
            par.stats.distinct_executions,
            serial.stats.distinct_executions
        );
        assert_eq!(par.executions.len(), serial.executions.len());
    }

    #[test]
    fn behavior_limit_propagates() {
        let err = enumerate_parallel(
            &sb(),
            &Policy::weak(),
            &EnumConfig {
                max_behaviors: 2,
                parallelism: 4,
                ..EnumConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EnumError::BehaviorLimit { limit: 2 });
    }

    #[test]
    fn node_limit_propagates() {
        let looping = Program::new(vec![ThreadProgram::new(vec![
            st(X, 1),
            Instr::Jump { target: 0 },
        ])]);
        let err = enumerate_parallel(
            &looping,
            &Policy::weak(),
            &EnumConfig {
                max_nodes_per_thread: 4,
                parallelism: 4,
                ..EnumConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EnumError::NodeLimit {
                thread: 0,
                limit: 4
            }
        ));
    }

    #[test]
    fn fork_budget_propagates() {
        let err = enumerate_parallel(
            &sb_ring(),
            &Policy::weak(),
            &EnumConfig::builder().budget(3).parallelism(4).build(),
        )
        .unwrap_err();
        assert!(
            matches!(err, EnumError::Overbudget { budget: 3, .. }),
            "expected Overbudget, got {err:?}"
        );
        // A budget covering the whole run changes nothing.
        let serial = enumerate(&sb_ring(), &Policy::weak(), &EnumConfig::default()).unwrap();
        let ok = enumerate_parallel(
            &sb_ring(),
            &Policy::weak(),
            &EnumConfig::builder()
                .budget(serial.stats.forks as u64)
                .parallelism(4)
                .build(),
        )
        .unwrap();
        assert_eq!(ok.outcomes, serial.outcomes);
    }

    #[test]
    fn parallel_stats_are_observable() {
        let r = enumerate_parallel(&sb_ring(), &Policy::weak(), &with_workers(4)).unwrap();
        assert_eq!(r.stats.workers, 4);
        // Steals / contention / wakeups are scheduling-dependent, so only
        // sanity-check that the counters exist and the run made progress.
        assert!(r.stats.explored > 0);
        let serial = enumerate_parallel(&sb(), &Policy::weak(), &with_workers(1)).unwrap();
        assert_eq!(serial.stats.workers, 1);
        assert_eq!(serial.stats.steals, 0);
    }

    #[test]
    fn zero_parallelism_means_auto() {
        let auto = with_workers(0);
        assert!(effective_parallelism(&auto) >= 1);
        let r = enumerate_parallel(&sb(), &Policy::weak(), &auto).unwrap();
        assert_eq!(r.outcomes.len(), 4);
    }
}
