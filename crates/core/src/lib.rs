//! # samm-core — memory models as instruction reordering + Store Atomicity
//!
//! An executable implementation of the framework of *"Memory Model =
//! Instruction Reordering + Store Atomicity"* (Arvind & Maessen, ISCA
//! 2006). A memory model is specified by two ingredients:
//!
//! 1. **Thread-local reordering axioms** — a table over instruction classes
//!    saying which program-ordered pairs may be reordered
//!    ([`policy::Policy`], the paper's Figure 1);
//! 2. **Store Atomicity** — inter-thread ordering rules describing which
//!    operations must be ordered in *every* serialization of an execution
//!    ([`atomicity`], the paper's Figure 6).
//!
//! Executions are partially ordered graphs ([`graph::ExecutionGraph`]); one
//! graph compactly stands for all of its serializations. The crate's main
//! entry point is [`enumerate::enumerate`], the paper's operational
//! procedure for generating **all** behaviours of a multithreaded program
//! under any store-atomic model — plus the TSO bypass extension (section 6)
//! and address-aliasing speculation (section 5).
//!
//! ## Quick start
//!
//! ```
//! use samm_core::enumerate::{enumerate, EnumConfig};
//! use samm_core::instr::{Instr, Program, ThreadProgram};
//! use samm_core::ids::Reg;
//! use samm_core::policy::Policy;
//!
//! // Dekker / store-buffering: may both loads read 0?
//! let thread = |mine: u64, theirs: u64| ThreadProgram::new(vec![
//!     Instr::Store { addr: mine.into(), val: 1u64.into() },
//!     Instr::Load { dst: Reg::new(0), addr: theirs.into() },
//! ]);
//! let program = Program::new(vec![thread(0, 1), thread(1, 0)]);
//!
//! let sc = enumerate(&program, &Policy::sequential_consistency(),
//!                    &EnumConfig::default()).unwrap();
//! let weak = enumerate(&program, &Policy::weak(),
//!                      &EnumConfig::default()).unwrap();
//! assert_eq!(sc.outcomes.len(), 3);   // 0/0 is forbidden
//! assert_eq!(weak.outcomes.len(), 4); // 0/0 is allowed
//! ```
//!
//! ## Module map
//!
//! | module | paper | contents |
//! |--------|-------|----------|
//! | [`ids`], [`instr`] | §2 | values, addresses, the instruction set |
//! | [`policy`] | §2, Fig 1 | reordering tables; SC/TSO/PSO/Weak models |
//! | [`graph`], [`closure`], [`bitset`] | §3, Fig 2 | execution DAGs with an incremental transitive closure |
//! | [`atomicity`] | §3.3, Fig 6–7 | Store Atomicity rules a/b/c to fixpoint |
//! | [`candidates`] | §4 | `candidates(L)` and the load-resolution gate |
//! | [`exec`] | §4.1 | graph generation + dataflow execution |
//! | [`mod@enumerate`] | §4.1 | the behaviour-enumeration procedure |
//! | [`parallel`] | §4.1 | work-stealing parallel enumeration |
//! | [`serialize`] | §3.1 | serializability: witnesses and validation |
//! | [`outcome`] | — | final register files, outcome sets |
//! | [`speculation`] | §5 | aliasing-speculation analysis helpers |
//! | [`static_order`] | §2, Fig 1 | the statically guaranteed part of `≺` |
//! | [`sync`] | §8 | well-synchronized-program discipline checker |
//! | [`dot`] | Fig 2 | Graphviz rendering of execution graphs |
//! | [`obs`] | — | enumeration counters, timings, and the event-trace sink |
//! | [`explain`] | Fig 3–11 | witnesses for allowed outcomes, refutations for forbidden ones |
//! | [`fingerprint`] | — | stable content hashes of enumeration queries |
//! | [`cache`] | — | content-addressed memoization of enumeration answers |
//! | [`telemetry`] | — | latency histograms, rate counters, JSONL logs, Prometheus exposition |

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod atomicity;
pub mod bitset;
pub mod cache;
pub mod candidates;
pub mod closure;
pub mod dot;
pub mod enumerate;
pub mod error;
pub mod exec;
pub mod explain;
pub mod fingerprint;
pub mod graph;
pub mod ids;
pub mod instr;
pub mod obs;
pub mod outcome;
pub mod parallel;
pub mod policy;
pub mod pruned;
pub mod serialize;
pub mod speculation;
pub mod static_order;
pub mod sync;
pub mod telemetry;

#[cfg(test)]
pub(crate) mod testutil;

pub use atomicity::Rule;
pub use cache::{cached_enumerate, CacheStats, CachedResult, EnumCache};
pub use enumerate::{
    behaviors, behaviors_traced, default_parallelism, enumerate, Behaviors, EnumConfig,
    EnumConfigBuilder, EnumResult, EnumStats,
};
pub use error::{CycleError, EnumError};
pub use exec::Behavior;
pub use explain::{
    find_witness, refute, BlockedRefutation, Goal, Refutation, RefuteOutcome, RefuteReason,
    Serialization, Witness,
};
pub use fingerprint::{query_fingerprint, Fingerprint};
pub use ids::{Addr, NodeId, Reg, ThreadId, Value};
pub use instr::{BinOp, Instr, Operand, Program, ThreadProgram};
pub use obs::{MemoryTrace, Obs, ObsStats, TraceEvent, TraceSink};
pub use outcome::{Outcome, OutcomeSet};
pub use parallel::enumerate_parallel;
pub use policy::{Constraint, ConstraintTable, OpClass, Policy};
pub use telemetry::{Histogram, HistogramSnapshot, JsonlLog, RateCounter, RequestIdGen};
