//! The instruction set and program representation.
//!
//! The paper works with an abstract RISC-like instruction set: arithmetic
//! ("+, etc."), `Branch`, `Load`, `Store` and `Fence` (Figure 1). Programs
//! here are straight-line per-thread instruction sequences with explicit
//! branch targets; registers are thread-local and read as zero until
//! written. Addresses are ordinary data, so a program can load a pointer
//! from memory and store through it — the ingredient needed for the
//! address-aliasing speculation study of section 5.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{Addr, Reg, Value};

/// An operand: either a register or an immediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a thread-local register (zero until first written).
    Reg(Reg),
    /// A constant value.
    Imm(Value),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Imm(v)
    }
}

impl From<u64> for Operand {
    fn from(raw: u64) -> Self {
        Operand::Imm(Value::new(raw))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Binary ALU operation ("+, etc." in the paper's table).
///
/// Comparisons produce `1` for true and `0` for false; arithmetic wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Equality test (1/0).
    Eq,
    /// Inequality test (1/0).
    Ne,
    /// Unsigned less-than test (1/0).
    Lt,
}

impl BinOp {
    /// Applies the operation to two values.
    ///
    /// # Examples
    ///
    /// ```
    /// use samm_core::instr::BinOp;
    /// use samm_core::ids::Value;
    /// let one = BinOp::Eq.apply(Value::new(5), Value::new(5));
    /// assert_eq!(one, Value::new(1));
    /// ```
    pub fn apply(self, lhs: Value, rhs: Value) -> Value {
        let (a, b) = (lhs.raw(), rhs.raw());
        let out = match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::Lt => u64::from(a < b),
        };
        Value::new(out)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
        };
        f.write_str(s)
    }
}

/// The flavour of an atomic read-modify-write instruction.
///
/// The paper lists atomic primitives that "atomically combine Load and
/// Store actions" as a straightforward extension (section 8); in this
/// framework an RMW is a single graph node that participates in Store
/// Atomicity both as a load (it observes a source) and as a store (it may
/// be observed and may overwrite). Rules a and b then give RMW atomicity
/// for free: every other same-address store is ordered either before the
/// observed source or after the whole operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `dst = old; Mem[addr] = src` — unconditional exchange.
    Swap,
    /// `dst = old; Mem[addr] = old + src` — atomic fetch-and-add.
    FetchAdd,
    /// `dst = old; if old == expect then Mem[addr] = src` —
    /// compare-and-swap. A failed CAS performs no store at all.
    Cas {
        /// The comparison operand.
        expect: Operand,
    },
}

impl fmt::Display for RmwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwOp::Swap => write!(f, "swap"),
            RmwOp::FetchAdd => write!(f, "faa"),
            RmwOp::Cas { expect } => write!(f, "cas[{expect}]"),
        }
    }
}

/// One instruction of a thread program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst := src`. Pure register renaming; creates no graph node.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst := op(lhs, rhs)`. Creates a Compute node.
    Binop {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst := Mem[addr]`. Creates a Load node.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand (may be a computed pointer).
        addr: Operand,
    },
    /// `Mem[addr] := val`. Creates a Store node.
    Store {
        /// Address operand.
        addr: Operand,
        /// Value operand.
        val: Operand,
    },
    /// `dst := Mem[addr]; Mem[addr] := f(old, src)` atomically. Creates a
    /// single Rmw node acting as both Load and Store.
    Rmw {
        /// Destination register (receives the *old* value).
        dst: Reg,
        /// Address operand.
        addr: Operand,
        /// The read-modify-write flavour.
        op: RmwOp,
        /// The operand combined with (or replacing) the old value.
        src: Operand,
    },
    /// Memory fence: orders all prior loads/stores before all later ones
    /// under the weak model's table.
    Fence,
    /// Branch to `target` when `cond` is non-zero; fall through otherwise.
    /// Creates a Branch node; graph generation stops at an unresolved
    /// branch (paper section 4.1).
    BranchNz {
        /// Condition operand; taken when non-zero.
        cond: Operand,
        /// Instruction index to jump to when taken.
        target: usize,
    },
    /// Unconditional jump. Pure control flow; creates no graph node.
    Jump {
        /// Instruction index to jump to.
        target: usize,
    },
    /// Stop the thread.
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Binop { dst, op, lhs, rhs } => write!(f, "{dst} := {lhs} {op} {rhs}"),
            Instr::Load { dst, addr } => write!(f, "{dst} := L [{addr}]"),
            Instr::Store { addr, val } => write!(f, "S [{addr}], {val}"),
            Instr::Rmw { dst, addr, op, src } => write!(f, "{dst} := {op} [{addr}], {src}"),
            Instr::Fence => write!(f, "fence"),
            Instr::BranchNz { cond, target } => write!(f, "bnz {cond}, {target}"),
            Instr::Jump { target } => write!(f, "jmp {target}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// The instruction sequence of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadProgram {
    instrs: Vec<Instr>,
}

impl ThreadProgram {
    /// Creates a thread program from an instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics if a branch or jump targets an instruction index past the end
    /// of the sequence (the index one past the end is allowed and means
    /// "halt").
    pub fn new(instrs: Vec<Instr>) -> Self {
        for (i, instr) in instrs.iter().enumerate() {
            let target = match instr {
                Instr::BranchNz { target, .. } | Instr::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    t <= instrs.len(),
                    "instruction {i} targets {t}, past the end of the {}-instruction thread",
                    instrs.len()
                );
            }
        }
        ThreadProgram { instrs }
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the thread has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Highest register index used, plus one (the register file size).
    pub fn reg_count(&self) -> usize {
        let mut max: Option<usize> = None;
        let mut see = |op: &Operand| {
            if let Operand::Reg(r) = op {
                max = Some(max.map_or(r.index(), |m| m.max(r.index())));
            }
        };
        for instr in &self.instrs {
            match instr {
                Instr::Mov { dst, src } => {
                    see(&Operand::Reg(*dst));
                    see(src);
                }
                Instr::Binop { dst, lhs, rhs, .. } => {
                    see(&Operand::Reg(*dst));
                    see(lhs);
                    see(rhs);
                }
                Instr::Load { dst, addr } => {
                    see(&Operand::Reg(*dst));
                    see(addr);
                }
                Instr::Store { addr, val } => {
                    see(addr);
                    see(val);
                }
                Instr::Rmw { dst, addr, op, src } => {
                    see(&Operand::Reg(*dst));
                    see(addr);
                    see(src);
                    if let RmwOp::Cas { expect } = op {
                        see(expect);
                    }
                }
                Instr::BranchNz { cond, .. } => see(cond),
                Instr::Fence | Instr::Jump { .. } | Instr::Halt => {}
            }
        }
        max.map_or(0, |m| m + 1)
    }
}

impl FromIterator<Instr> for ThreadProgram {
    fn from_iter<I: IntoIterator<Item = Instr>>(iter: I) -> Self {
        ThreadProgram::new(iter.into_iter().collect())
    }
}

/// A whole multithreaded program plus its initial memory image.
///
/// # Examples
///
/// Classic store-buffering (SB) shape:
///
/// ```
/// use samm_core::instr::{Instr, Operand, Program, ThreadProgram};
/// use samm_core::ids::{Addr, Reg, Value};
///
/// let x = Addr::new(0);
/// let y = Addr::new(1);
/// let t0 = ThreadProgram::new(vec![
///     Instr::Store { addr: Operand::Imm(Value::from(x)), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: Operand::Imm(Value::from(y)) },
/// ]);
/// let t1 = ThreadProgram::new(vec![
///     Instr::Store { addr: Operand::Imm(Value::from(y)), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: Operand::Imm(Value::from(x)) },
/// ]);
/// let prog = Program::new(vec![t0, t1]);
/// assert_eq!(prog.threads().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    threads: Vec<ThreadProgram>,
    init: BTreeMap<Addr, Value>,
}

impl Program {
    /// Creates a program with all memory initialized to zero.
    pub fn new(threads: Vec<ThreadProgram>) -> Self {
        Program {
            threads,
            init: BTreeMap::new(),
        }
    }

    /// Creates a program with an explicit initial-memory image; addresses
    /// not listed read as zero.
    pub fn with_init(threads: Vec<ThreadProgram>, init: BTreeMap<Addr, Value>) -> Self {
        Program { threads, init }
    }

    /// The per-thread instruction sequences.
    pub fn threads(&self) -> &[ThreadProgram] {
        &self.threads
    }

    /// Initial value of `addr` (zero unless set).
    pub fn initial_value(&self, addr: Addr) -> Value {
        self.init.get(&addr).copied().unwrap_or(Value::ZERO)
    }

    /// The explicit (non-zero-default) initial-memory entries.
    pub fn init_entries(&self) -> impl Iterator<Item = (Addr, Value)> + '_ {
        self.init.iter().map(|(&a, &v)| (a, v))
    }

    /// Sets the initial value at `addr`.
    pub fn set_init(&mut self, addr: Addr, value: Value) {
        self.init.insert(addr, value);
    }

    /// Total static instruction count across all threads.
    pub fn instr_count(&self) -> usize {
        self.threads.iter().map(ThreadProgram::len).sum()
    }

    /// Whether any thread uses an atomic read-modify-write instruction.
    ///
    /// Competing RMWs expose Store Atomicity conflicts that are only
    /// detectable when the closure runs (two CASes observing the same
    /// source contradict each other through rule b), so the enumerator
    /// treats inconsistent forks of RMW programs as rejected candidates
    /// rather than internal errors.
    pub fn uses_rmw(&self) -> bool {
        self.threads
            .iter()
            .flat_map(|t| t.instrs())
            .any(|i| matches!(i, Instr::Rmw { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        let v = |x: u64| Value::new(x);
        assert_eq!(BinOp::Add.apply(v(u64::MAX), v(1)), v(0));
        assert_eq!(BinOp::Sub.apply(v(0), v(1)), v(u64::MAX));
        assert_eq!(BinOp::Mul.apply(v(3), v(4)), v(12));
        assert_eq!(BinOp::And.apply(v(0b1100), v(0b1010)), v(0b1000));
        assert_eq!(BinOp::Or.apply(v(0b1100), v(0b1010)), v(0b1110));
        assert_eq!(BinOp::Xor.apply(v(0b1100), v(0b1010)), v(0b0110));
        assert_eq!(BinOp::Eq.apply(v(7), v(7)), v(1));
        assert_eq!(BinOp::Eq.apply(v(7), v(8)), v(0));
        assert_eq!(BinOp::Ne.apply(v(7), v(8)), v(1));
        assert_eq!(BinOp::Lt.apply(v(7), v(8)), v(1));
        assert_eq!(BinOp::Lt.apply(v(8), v(7)), v(0));
    }

    #[test]
    fn reg_count_covers_all_positions() {
        let t = ThreadProgram::new(vec![
            Instr::Mov {
                dst: Reg::new(4),
                src: Operand::Imm(Value::new(0)),
            },
            Instr::Load {
                dst: Reg::new(1),
                addr: Operand::Reg(Reg::new(9)),
            },
        ]);
        assert_eq!(t.reg_count(), 10);
    }

    #[test]
    fn reg_count_of_regless_thread_is_zero() {
        let t = ThreadProgram::new(vec![Instr::Fence, Instr::Halt]);
        assert_eq!(t.reg_count(), 0);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn branch_target_is_validated() {
        let _ = ThreadProgram::new(vec![Instr::Jump { target: 5 }]);
    }

    #[test]
    fn branch_target_one_past_end_means_halt() {
        let t = ThreadProgram::new(vec![Instr::Jump { target: 1 }]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn initial_memory_defaults_to_zero() {
        let mut p = Program::new(vec![]);
        assert_eq!(p.initial_value(Addr::new(9)), Value::ZERO);
        p.set_init(Addr::new(9), Value::new(42));
        assert_eq!(p.initial_value(Addr::new(9)), Value::new(42));
        assert_eq!(p.init_entries().count(), 1);
    }

    #[test]
    fn display_forms() {
        let i = Instr::Store {
            addr: Operand::Reg(Reg::new(0)),
            val: Operand::Imm(Value::new(7)),
        };
        assert_eq!(i.to_string(), "S [r0], #7");
        let l = Instr::Load {
            dst: Reg::new(2),
            addr: 5u64.into(),
        };
        assert_eq!(l.to_string(), "r2 := L [#5]");
    }

    #[test]
    fn thread_program_from_iterator() {
        let t: ThreadProgram = [Instr::Fence, Instr::Halt].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
