//! Candidate stores for load resolution (paper section 4).
//!
//! Resolving a load is the *only* source of non-determinism in a
//! store-atomic model. For a load `L`, `candidates(L)` is the set of stores
//! `S =ₐ L` such that
//!
//! 1. every load `L₀ @ S` and store `S₀ @ S` has already been resolved, and
//! 2. `S` has not certainly been overwritten: `¬∃ S₀ =ₐ L. S @ S₀ @ L`.
//!
//! The definition is only valid once every *predecessor load* of `L` has
//! been resolved ("resolving a Load early can introduce additional
//! inter-thread edges... By restricting Load resolution, we avoid this
//! possibility"), so [`load_resolvable`] implements that gate.

use crate::graph::ExecutionGraph;
use crate::ids::{Addr, NodeId};

/// Returns `true` when load `L` may be resolved now: its address is known,
/// it is still unresolved, and every load `@`-preceding it has been
/// resolved.
///
/// # Panics
///
/// Panics if `load` is not a load node.
pub fn load_resolvable(graph: &ExecutionGraph, load: NodeId) -> bool {
    let node = graph.node(load);
    assert!(node.is_load(), "{load} is not a load");
    if node.is_resolved() || node.addr().is_none() {
        return false;
    }
    graph
        .predecessors(load)
        .iter()
        .map(NodeId::new)
        .all(|p| !graph.node(p).is_load() || graph.node(p).is_resolved())
}

/// Computes `candidates(L)` for a load whose address is known.
///
/// Initial-memory stores guarantee the result is non-empty for any
/// consistent graph (the paper: "Memory is initialized with Store
/// operations before any thread is started. This guarantees that there will
/// always be at least one 'most recent Store'").
///
/// The returned stores are in node-id order.
///
/// # Panics
///
/// Panics if `load` is not an address-resolved, unresolved load.
pub fn candidates(graph: &ExecutionGraph, load: NodeId) -> Vec<NodeId> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    candidates_into(graph, load, &mut scratch, &mut out);
    out
}

/// [`candidates`] with caller-provided buffers, for enumeration hot loops
/// that compute candidate sets for many loads per explored behaviour.
/// `scratch` and `out` are cleared and reused; `out` receives the stores
/// in node-id order.
///
/// # Panics
///
/// Panics if `load` is not an address-resolved, unresolved load.
pub fn candidates_into(
    graph: &ExecutionGraph,
    load: NodeId,
    scratch: &mut Vec<NodeId>,
    out: &mut Vec<NodeId>,
) {
    let node = graph.node(load);
    assert!(node.is_load(), "{load} is not a load");
    assert!(!node.is_resolved(), "{load} is already resolved");
    let addr = node.addr().expect("candidates require a resolved address");
    scratch.clear();
    scratch.extend(graph.stores_to(addr));
    // Condition 1 via a predecessor-set walk per candidate store.
    candidates_core(graph, load, scratch, out, |store| {
        graph.predecessors(store).iter().map(NodeId::new).any(|p| {
            let pn = graph.node(p);
            pn.is_memory() && !pn.is_resolved()
        })
    });
}

/// [`candidates_into`] with the graph's unresolved memory operations and
/// per-address store index precomputed by the caller (one scan shared
/// across every load of a behaviour, see `Behavior::completeness_scan`).
/// Condition 1 becomes "no unresolved memory operation precedes S" — a
/// handful of O(1) reachability bit-tests instead of a predecessor-set
/// walk per store — and the same-address store list comes from the
/// prebuilt index instead of a graph scan per load.
pub fn candidates_gated_into(
    graph: &ExecutionGraph,
    load: NodeId,
    unresolved_mem: &[NodeId],
    all_stores: &[(Addr, NodeId)],
    scratch: &mut Vec<NodeId>,
    out: &mut Vec<NodeId>,
) {
    let node = graph.node(load);
    assert!(node.is_load(), "{load} is not a load");
    assert!(!node.is_resolved(), "{load} is already resolved");
    let addr = node.addr().expect("candidates require a resolved address");
    scratch.clear();
    scratch.extend(
        all_stores
            .iter()
            .filter(|&&(a, _)| a == addr)
            .map(|&(_, id)| id),
    );
    candidates_core(graph, load, scratch, out, |store| {
        // `store` itself is resolved, so `u == store` never occurs.
        unresolved_mem.iter().any(|&u| graph.precedes(u, store))
    });
}

/// Shared tail of the candidate computation: `same_addr_stores` already
/// holds the same-address stores in node order; `blocked` implements
/// condition 1.
fn candidates_core(
    graph: &ExecutionGraph,
    load: NodeId,
    same_addr_stores: &[NodeId],
    out: &mut Vec<NodeId>,
    blocked: impl Fn(NodeId) -> bool,
) {
    out.clear();

    'next_store: for &store in same_addr_stores {
        let s = graph.node(store);
        // The candidate itself must have executed: address and value known.
        if !s.is_resolved() {
            continue;
        }
        // A store already ordered after the load can never be its source.
        if graph.precedes(load, store) {
            continue;
        }
        // Condition 1: all memory operations @-preceding S are resolved.
        if blocked(store) {
            continue 'next_store;
        }
        // Condition 2: S must not have been overwritten between S and L.
        for &other in same_addr_stores {
            if other != store && graph.precedes(store, other) && graph.precedes(other, load) {
                continue 'next_store;
            }
        }
        out.push(store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExecutionGraph;
    use crate::testutil::{mk_init, mk_load, mk_store, observe, order};

    const X: u64 = 1;
    const Y: u64 = 2;

    #[test]
    fn unordered_store_and_init_are_both_candidates() {
        let mut g = ExecutionGraph::new();
        let s = mk_store(&mut g, 0, 0, X, 1);
        let l = mk_load(&mut g, 1, 0, X);
        let init = mk_init(&mut g, 0, X, 0);
        let mut c = candidates(&g, l);
        c.sort();
        assert_eq!(c, {
            let mut v = vec![s, init];
            v.sort();
            v
        });
    }

    #[test]
    fn overwritten_store_is_excluded() {
        // init @ s1 @ l: init is overwritten by s1 for this load.
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let l = mk_load(&mut g, 0, 1, X);
        order(&mut g, s1, l);
        let init = mk_init(&mut g, 0, X, 0);
        assert_eq!(candidates(&g, l), vec![s1]);
        let _ = init;
    }

    #[test]
    fn store_after_the_load_is_excluded() {
        let mut g = ExecutionGraph::new();
        let l = mk_load(&mut g, 0, 0, X);
        let s = mk_store(&mut g, 0, 1, X, 1);
        order(&mut g, l, s);
        let init = mk_init(&mut g, 0, X, 0);
        assert_eq!(candidates(&g, l), vec![init]);
    }

    #[test]
    fn store_with_unresolved_predecessor_load_is_excluded() {
        // Thread 0: L0 y ; S1 x (ordered), L0 unresolved.
        // Thread 1: L2 x — S1 is not yet a legal candidate.
        let mut g = ExecutionGraph::new();
        let l0 = mk_load(&mut g, 0, 0, Y);
        let s1 = mk_store(&mut g, 0, 1, X, 1);
        order(&mut g, l0, s1);
        let l2 = mk_load(&mut g, 1, 0, X);
        let init_x = mk_init(&mut g, 0, X, 0);
        let _init_y = mk_init(&mut g, 1, Y, 0);
        assert_eq!(candidates(&g, l2), vec![init_x]);

        // Resolving L0 makes S1 eligible.
        let inits: Vec<_> = g.stores_to(crate::ids::Addr::new(Y)).collect();
        observe(&mut g, inits[0], l0);
        let mut c = candidates(&g, l2);
        c.sort();
        let mut expect = vec![s1, init_x];
        expect.sort();
        assert_eq!(c, expect);
    }

    #[test]
    fn resolvable_gate_requires_predecessor_loads_resolved() {
        let mut g = ExecutionGraph::new();
        let l0 = mk_load(&mut g, 0, 0, X);
        let l1 = mk_load(&mut g, 0, 1, Y);
        order(&mut g, l0, l1);
        let init_x = mk_init(&mut g, 0, X, 0);
        let _init_y = mk_init(&mut g, 1, Y, 0);
        assert!(load_resolvable(&g, l0));
        assert!(
            !load_resolvable(&g, l1),
            "L1 waits for its predecessor load"
        );
        observe(&mut g, init_x, l0);
        assert!(load_resolvable(&g, l1));
        assert!(!load_resolvable(&g, l0), "already resolved");
    }

    #[test]
    fn resolvable_requires_known_address() {
        use crate::graph::{Input, NodeDetail};
        use crate::ids::{Reg, ThreadId};
        let mut g = ExecutionGraph::new();
        // A load whose address comes from another (unresolved) load.
        let pointer = mk_load(&mut g, 0, 0, X);
        let l = g.add_node(
            ThreadId::new(0),
            1,
            NodeDetail::Load {
                addr_in: Input::Node(pointer),
                dst: Reg::new(1),
            },
        );
        assert!(!load_resolvable(&g, l));
    }

    #[test]
    fn candidates_is_never_empty_with_init() {
        // Even when every "real" store is overwritten, init or the
        // overwriting store remains.
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 0, 1, X, 2);
        let l = mk_load(&mut g, 0, 2, X);
        order(&mut g, s1, s2);
        order(&mut g, s2, l);
        order(&mut g, s1, l);
        mk_init(&mut g, 0, X, 0);
        assert_eq!(candidates(&g, l), vec![s2]);
    }

    #[test]
    fn unresolved_store_is_not_a_candidate() {
        use crate::graph::{Input, NodeDetail};
        use crate::ids::{ThreadId, Value};
        let mut g = ExecutionGraph::new();
        // A store whose value input is a pending load: address known,
        // value not.
        let pending = mk_load(&mut g, 0, 0, Y);
        let s = g.add_node(
            ThreadId::new(0),
            1,
            NodeDetail::Store {
                addr_in: Input::Const(Value::new(X)),
                val_in: Input::Node(pending),
            },
        );
        g.set_addr(s, crate::ids::Addr::new(X));
        let l = mk_load(&mut g, 1, 0, X);
        let init_x = mk_init(&mut g, 0, X, 0);
        let _init_y = mk_init(&mut g, 1, Y, 0);
        assert_eq!(candidates(&g, l), vec![init_x]);
    }

    #[test]
    fn figure_3_candidate_narrowing() {
        // After L5 observes S3 in Figure 3, L6's candidates exclude the
        // overwritten S1.
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 0, 1, Y, 2);
        let l5 = mk_load(&mut g, 0, 2, Y);
        let s3 = mk_store(&mut g, 1, 0, Y, 3);
        let s4 = mk_store(&mut g, 1, 1, X, 4);
        let l6 = mk_load(&mut g, 1, 2, X);
        order(&mut g, s1, s2);
        order(&mut g, s1, l5);
        order(&mut g, s2, l5);
        order(&mut g, s3, s4);
        order(&mut g, s3, l6);
        order(&mut g, s4, l6);
        mk_init(&mut g, 0, X, 0);
        mk_init(&mut g, 1, Y, 0);

        // Before L5 resolves, both S1 and S4 are candidates for L6 — but
        // the resolvable gate does not yet matter for L6 (its predecessor
        // loads: none).
        let mut before = candidates(&g, l6);
        before.sort();
        assert_eq!(before, vec![s1, s4]);

        observe(&mut g, s3, l5);
        crate::atomicity::enforce(&mut g).unwrap();
        assert_eq!(candidates(&g, l6), vec![s4], "S1 was overwritten by S4");
    }
}
