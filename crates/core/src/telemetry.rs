//! Telemetry primitives: lock-free latency histograms, windowed rate
//! counters, request-scoped identifiers, a rotating JSONL event log,
//! and a Prometheus text-format writer/checker.
//!
//! [`crate::obs`] instruments a *single* enumeration run; this module
//! provides the building blocks for aggregating *across* runs — the
//! long-lived counters a server (or a load generator) keeps over its
//! lifetime:
//!
//! * [`Histogram`] — a lock-free log-linear histogram of `u64` samples
//!   (typically nanoseconds). Recording is one relaxed `fetch_add`;
//!   per-thread histograms merge exactly (bucket-wise addition), and
//!   reported quantiles are within a documented relative error bound
//!   ([`Histogram::RELATIVE_ERROR`], 1/16) of the exact sample
//!   quantiles.
//! * [`RateCounter`] — a ring of one-second slots answering "how many
//!   events in the last *w* seconds".
//! * [`RequestIdGen`] — cheap process-unique request identifiers.
//! * [`JsonlLog`] — an append-only JSONL file with size-based rotation,
//!   used for slow-query logs; [`MemorySink`] is the in-memory test
//!   double. [`jsonl_event`] renders one machine-parseable line.
//! * [`TraceCounters`] — an [`crate::obs::TraceSink`] adapter that reduces the
//!   serial enumerator's fork/prune/commit event stream to four
//!   counters, so a server can aggregate per-phase activity without
//!   buffering events.
//! * [`prom`] — rendering *and validation* of the Prometheus text
//!   exposition format (version 0.0.4), with no external dependencies.
//! * [`trace`] — distributed tracing spans: trace/span identifiers that
//!   propagate across the wire, a lock-free-cursor ring sink, and JSONL
//!   export for flamegraph aggregation.

pub mod trace;

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::obs::{PruneReason, TraceEvent, TraceSink};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range (16).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: values below [`SUB`] get exact unit buckets;
/// every exponent range above contributes [`SUB`] buckets.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Maps a sample to its bucket index (log-linear, monotone).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS
    let offset = (value >> (exp - SUB_BITS)) - SUB; // in [0, SUB)
    ((exp - SUB_BITS + 1) as u64 * SUB + offset) as usize
}

/// The inclusive lower bound and width of bucket `index` (inverse of
/// [`bucket_index`]).
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB {
        return (index, 1);
    }
    let block = index / SUB; // >= 1
    let offset = index % SUB;
    let width = 1u64 << (block - 1);
    ((SUB + offset) << (block - 1), width)
}

/// A lock-free log-linear histogram of `u64` samples.
///
/// Buckets are exact for values below 16 and split every power-of-two
/// range `[2^e, 2^(e+1))` into 16 linear sub-buckets above that, so a
/// bucket's width never exceeds 1/16 of its lower bound. Recording is a
/// relaxed `fetch_add` on one bucket plus the count/sum/max registers —
/// no locks, safe to share across threads via `&`/`Arc`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Upper bound on the relative error of reported quantiles against
    /// the exact sample quantiles: bucket width / bucket lower bound,
    /// i.e. `1/16` (the bound is loose; midpoint reporting halves it).
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time plain-value snapshot (drops empty tail buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-value snapshot of a [`Histogram`]: mergeable, queryable, and
/// renderable as Prometheus cumulative buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
    /// Per-bucket counts, indexed like the live histogram; empty tail
    /// buckets are trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Merging is exact and commutative:
    /// bucket-wise addition, so the merge of per-thread histograms
    /// equals the histogram of the combined sample stream.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The mean sample (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`) as a representative value
    /// (bucket midpoint), within [`Histogram::RELATIVE_ERROR`] of the
    /// exact sample quantile. `q = 1.0` returns the exact maximum;
    /// an empty histogram returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (low, width) = bucket_bounds(index);
                return low + width / 2;
            }
        }
        self.max
    }

    /// Cumulative counts at each threshold of `bounds` (inclusive
    /// `value <= bound`), for Prometheus `_bucket` samples. Bounds must
    /// be ascending. The count of samples in a bucket straddling a
    /// bound is attributed by the bucket's lower bound, consistent with
    /// the histogram's error envelope.
    pub fn cumulative_le(&self, bounds: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(bounds.len());
        for &bound in bounds {
            let mut total = 0u64;
            for (index, &n) in self.buckets.iter().enumerate() {
                let (low, _) = bucket_bounds(index);
                if low <= bound {
                    total += n;
                } else {
                    break;
                }
            }
            out.push(total);
        }
        out
    }
}

/// Default latency bucket thresholds in nanoseconds for Prometheus
/// exposition: 100µs to ~100s in decade steps of 1/2.5/5 plus a 10µs
/// floor — 14 bounds covering cache hits through deep enumerations.
pub const LATENCY_LE_NANOS: [u64; 14] = [
    10_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// Number of one-second slots a [`RateCounter`] retains.
const RATE_SLOTS: usize = 64;

/// A windowed event-rate counter: a ring of one-second slots, each
/// tagged with the absolute second it covers. Recording and querying
/// are lock-free; slots older than the ring length are recycled in
/// place.
#[derive(Debug)]
pub struct RateCounter {
    start: Instant,
    epochs: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
}

impl Default for RateCounter {
    fn default() -> Self {
        RateCounter::new()
    }
}

impl RateCounter {
    /// A fresh counter; second 0 is the moment of construction.
    pub fn new() -> Self {
        RateCounter {
            start: Instant::now(),
            // Epoch 0 is in-band for slot 0, so tag every slot as
            // already-current at second 0 with count 0.
            epochs: (0..RATE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..RATE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn now_sec(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Records one event at the current wall second.
    pub fn record(&self) {
        self.record_at(self.now_sec());
    }

    /// Records one event at absolute second `sec` (test hook; normal
    /// callers use [`RateCounter::record`]).
    pub fn record_at(&self, sec: u64) {
        let slot = (sec as usize) % RATE_SLOTS;
        let epoch = &self.epochs[slot];
        let count = &self.counts[slot];
        let seen = epoch.load(Ordering::Acquire);
        if seen != sec {
            // First writer of a new second resets the slot. A racing
            // recorder of the same second may lose its increment to the
            // reset — acceptable for a statistics counter.
            if epoch
                .compare_exchange(seen, sec, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                count.store(0, Ordering::Release);
            }
        }
        count.fetch_add(1, Ordering::Relaxed);
    }

    /// Events per second over the trailing `window` seconds (capped at
    /// the ring length), excluding the current (incomplete) second when
    /// at least one full second has elapsed.
    pub fn rate_per_sec(&self, window: u64) -> f64 {
        self.rate_at(self.now_sec(), window)
    }

    /// As [`RateCounter::rate_per_sec`] at an explicit current second
    /// (test hook).
    pub fn rate_at(&self, now_sec: u64, window: u64) -> f64 {
        let window = window.clamp(1, RATE_SLOTS as u64 - 1);
        // Average over the last `window` *complete* seconds; before any
        // second completes, fall back to the live one.
        let (first, last) = if now_sec == 0 {
            (0, 0)
        } else {
            (now_sec.saturating_sub(window), now_sec - 1)
        };
        let mut total = 0u64;
        for sec in first..=last {
            let slot = (sec as usize) % RATE_SLOTS;
            if self.epochs[slot].load(Ordering::Acquire) == sec {
                total += self.counts[slot].load(Ordering::Relaxed);
            }
        }
        total as f64 / (last - first + 1) as f64
    }
}

/// Process-unique request identifiers: a prefix plus a monotone
/// counter (`r1`, `r2`, …).
#[derive(Debug)]
pub struct RequestIdGen {
    prefix: &'static str,
    next: AtomicU64,
}

impl Default for RequestIdGen {
    fn default() -> Self {
        RequestIdGen::new("r")
    }
}

impl RequestIdGen {
    /// A generator whose ids start with `prefix`.
    pub fn new(prefix: &'static str) -> Self {
        RequestIdGen {
            prefix,
            next: AtomicU64::new(1),
        }
    }

    /// The next id.
    pub fn next_id(&self) -> String {
        format!(
            "{}{}",
            self.prefix,
            self.next.fetch_add(1, Ordering::Relaxed)
        )
    }
}

/// A value in a [`jsonl_event`] record.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    /// A JSON string (escaped on render).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with enough precision for milliseconds).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one flat JSONL event (no trailing newline): field order is
/// preserved as given.
pub fn jsonl_event(fields: &[(&str, FieldValue<'_>)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(key));
        out.push_str("\":");
        match value {
            FieldValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(x) => out.push_str(&format!("{x:.3}")),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// A sink for JSONL event lines.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// Appends one line (no trailing newline in `line`).
    fn emit(&self, line: &str);
}

/// In-memory sink for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("sink poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("sink poisoned")
            .push(line.to_owned());
    }
}

struct JsonlInner {
    file: Option<File>,
    written: u64,
}

/// An append-only JSONL file with size-based rotation: when the current
/// file exceeds `max_bytes` it is renamed to `<path>.1` (replacing any
/// previous rotation) and a fresh file is started, bounding disk use at
/// roughly twice `max_bytes`. Write errors are swallowed after being
/// counted — telemetry must never take the service down.
pub struct JsonlLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<JsonlInner>,
    dropped: AtomicU64,
}

impl fmt::Debug for JsonlLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlLog")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

impl JsonlLog {
    /// Opens (appending) or creates the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to open the file.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<JsonlLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(JsonlLog {
            path,
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(JsonlInner {
                file: Some(file),
                written,
            }),
            dropped: AtomicU64::new(0),
        })
    }

    /// The path rotated-out content is moved to.
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Lines that failed to be written (I/O errors).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn try_emit(&self, line: &str) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("log poisoned");
        if inner.written >= self.max_bytes {
            inner.file = None; // close before rename (Windows-friendly)
            std::fs::rename(&self.path, self.rotated_path())?;
            inner.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
            inner.written = 0;
        }
        if inner.file.is_none() {
            inner.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
        }
        let file = inner.file.as_mut().expect("file just opened");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        inner.written += line.len() as u64 + 1;
        Ok(())
    }
}

impl EventSink for JsonlLog {
    fn emit(&self, line: &str) {
        if self.try_emit(line).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reduces the serial enumerator's [`TraceEvent`] stream to phase
/// counters — the aggregation hook a server folds into its telemetry
/// instead of buffering every event like [`crate::obs::MemoryTrace`].
#[derive(Debug, Default)]
pub struct TraceCounters {
    /// Fork events (one per attempted `(load, store)` resolution).
    pub forks: AtomicU64,
    /// Prunes with [`PruneReason::Duplicate`] (dedup hits).
    pub prunes_duplicate: AtomicU64,
    /// Prunes with [`PruneReason::Inconsistent`] (rollbacks/failures).
    pub prunes_inconsistent: AtomicU64,
    /// Prunes with [`PruneReason::Dominated`] (pre-expansion claim hits).
    pub prunes_dominated: AtomicU64,
    /// Prunes with [`PruneReason::Symmetric`] (orbit-folded forks).
    pub prunes_symmetric: AtomicU64,
    /// Commit events (behaviours yielded).
    pub commits: AtomicU64,
}

impl TraceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TraceCounters::default()
    }

    /// A `(forks, dup prunes, inconsistent prunes, commits)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.forks.load(Ordering::Relaxed),
            self.prunes_duplicate.load(Ordering::Relaxed),
            self.prunes_inconsistent.load(Ordering::Relaxed),
            self.commits.load(Ordering::Relaxed),
        )
    }

    /// A `(dominated, symmetric)` snapshot of the prune-before-expand
    /// counters (zero for traces from the serial engine).
    pub fn snapshot_pruned(&self) -> (u64, u64) {
        (
            self.prunes_dominated.load(Ordering::Relaxed),
            self.prunes_symmetric.load(Ordering::Relaxed),
        )
    }
}

impl TraceSink for TraceCounters {
    fn record(&self, event: TraceEvent) {
        match event {
            TraceEvent::Fork { .. } => self.forks.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Prune {
                reason: PruneReason::Duplicate,
                ..
            } => self.prunes_duplicate.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Prune {
                reason: PruneReason::Inconsistent,
                ..
            } => self.prunes_inconsistent.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Prune {
                reason: PruneReason::Dominated,
                ..
            } => self.prunes_dominated.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Prune {
                reason: PruneReason::Symmetric,
                ..
            } => self.prunes_symmetric.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Commit { .. } => self.commits.fetch_add(1, Ordering::Relaxed),
        };
    }
}

pub mod prom {
    //! Prometheus text exposition format (0.0.4): a writer that renders
    //! metric families and a checker that validates a scraped payload —
    //! both hand-rolled, no external dependencies.

    use std::collections::BTreeMap;

    use super::HistogramSnapshot;

    /// Builds a text-format payload family by family.
    #[derive(Debug, Default)]
    pub struct PromText {
        out: String,
    }

    fn escape_help(s: &str) -> String {
        s.replace('\\', "\\\\").replace('\n', "\\n")
    }

    fn escape_label(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }

    fn render_labels(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    fn render_value(v: f64) -> String {
        if v.is_infinite() {
            if v > 0.0 {
                "+Inf".into()
            } else {
                "-Inf".into()
            }
        } else if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }

    impl PromText {
        /// An empty payload.
        pub fn new() -> Self {
            PromText::default()
        }

        fn header(&mut self, name: &str, help: &str, ty: &str) {
            self.out
                .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            self.out.push_str(&format!("# TYPE {name} {ty}\n"));
        }

        /// A counter family with one sample per label set.
        pub fn counter(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], f64)]) {
            self.header(name, help, "counter");
            for (labels, value) in samples {
                self.out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(labels),
                    render_value(*value)
                ));
            }
        }

        /// A gauge family with one sample per label set.
        pub fn gauge(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], f64)]) {
            self.header(name, help, "gauge");
            for (labels, value) in samples {
                self.out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(labels),
                    render_value(*value)
                ));
            }
        }

        /// A histogram family rendered from snapshots, one per label
        /// set. Sample values are nanoseconds; the exposition is in
        /// seconds with thresholds `le_nanos` (ascending) plus `+Inf`.
        pub fn histogram_nanos(
            &mut self,
            name: &str,
            help: &str,
            le_nanos: &[u64],
            series: &[(&[(&str, &str)], &HistogramSnapshot)],
        ) {
            self.histogram_scaled(name, help, le_nanos, series, 1e9);
        }

        /// A histogram family whose samples are plain values (batch
        /// sizes, hop counts), exposed with the thresholds as given —
        /// no unit scaling, unlike [`PromText::histogram_nanos`].
        pub fn histogram_values(
            &mut self,
            name: &str,
            help: &str,
            le: &[u64],
            series: &[(&[(&str, &str)], &HistogramSnapshot)],
        ) {
            self.histogram_scaled(name, help, le, series, 1.0);
        }

        fn histogram_scaled(
            &mut self,
            name: &str,
            help: &str,
            le_bounds: &[u64],
            series: &[(&[(&str, &str)], &HistogramSnapshot)],
            divisor: f64,
        ) {
            self.header(name, help, "histogram");
            for (labels, snap) in series {
                let cumulative = snap.cumulative_le(le_bounds);
                for (bound, cum) in le_bounds.iter().zip(&cumulative) {
                    let mut with_le: Vec<(&str, String)> =
                        labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
                    with_le.push(("le", render_value(*bound as f64 / divisor)));
                    let borrowed: Vec<(&str, &str)> =
                        with_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
                    self.out.push_str(&format!(
                        "{name}_bucket{} {cum}\n",
                        render_labels(&borrowed)
                    ));
                }
                let mut with_inf: Vec<(&str, String)> =
                    labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
                with_inf.push(("le", "+Inf".to_owned()));
                let borrowed: Vec<(&str, &str)> =
                    with_inf.iter().map(|(k, v)| (*k, v.as_str())).collect();
                self.out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    render_labels(&borrowed),
                    snap.count
                ));
                self.out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    render_labels(&labels.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()),
                    render_value(snap.sum as f64 / divisor)
                ));
                self.out.push_str(&format!(
                    "{name}_count{} {}\n",
                    render_labels(&labels.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()),
                    snap.count
                ));
            }
        }

        /// The finished payload.
        pub fn render(self) -> String {
            self.out
        }
    }

    /// What [`check`] learned about a valid payload.
    #[derive(Debug, Default, Clone, PartialEq)]
    pub struct CheckSummary {
        /// Metric family names seen (base names; `_bucket`/`_sum`/
        /// `_count` suffixes are folded into their histogram family).
        pub families: Vec<String>,
        /// Total sample lines.
        pub samples: usize,
    }

    impl CheckSummary {
        /// Whether `family` appeared in the payload.
        pub fn has_family(&self, family: &str) -> bool {
            self.families.iter().any(|f| f == family)
        }
    }

    fn valid_metric_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    fn valid_label_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }

    fn valid_value(v: &str) -> Option<f64> {
        match v {
            "+Inf" | "Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            "NaN" => Some(f64::NAN),
            other => other.parse().ok(),
        }
    }

    /// Parses one `{a="b",c="d"}` label block; returns pairs.
    fn parse_labels(block: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
        let mut labels = Vec::new();
        let mut rest = block;
        loop {
            rest = rest.trim_start_matches([',', ' ']);
            if rest.is_empty() {
                return Ok(labels);
            }
            let eq = rest
                .find('=')
                .ok_or_else(|| format!("line {line_no}: label without '='"))?;
            let name = rest[..eq].trim();
            if !valid_label_name(name) {
                return Err(format!("line {line_no}: invalid label name '{name}'"));
            }
            rest = &rest[eq + 1..];
            if !rest.starts_with('"') {
                return Err(format!("line {line_no}: label value must be quoted"));
            }
            rest = &rest[1..];
            let mut value = String::new();
            let mut chars = rest.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        match chars.next() {
                            Some((_, 'n')) => value.push('\n'),
                            Some((_, escaped @ ('\\' | '"'))) => value.push(escaped),
                            _ => return Err(format!("line {line_no}: bad escape in label value")),
                        };
                    }
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => value.push(c),
                }
            }
            let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
            labels.push((name.to_owned(), value));
            rest = &rest[end + 1..];
        }
    }

    /// Per-family bookkeeping while checking.
    #[derive(Default)]
    struct FamilyInfo {
        ty: Option<String>,
        // histogram invariants, keyed by the non-`le` label set
        hist_last_cum: BTreeMap<String, (f64, u64)>, // last (le, cumulative)
        hist_inf: BTreeMap<String, u64>,
        hist_count: BTreeMap<String, u64>,
    }

    /// Validates a Prometheus text-format payload: comment structure,
    /// metric/label name grammar, quoted/escaped label values, numeric
    /// sample values, `TYPE` consistency (a family's samples must match
    /// its declared type's suffix rules), and histogram invariants
    /// (cumulative buckets non-decreasing in `le` order as rendered,
    /// `+Inf` bucket equal to `_count`).
    ///
    /// # Errors
    ///
    /// The first violation, as a human-readable message naming the line.
    pub fn check(text: &str) -> Result<CheckSummary, String> {
        let mut families: BTreeMap<String, FamilyInfo> = BTreeMap::new();
        let mut order = Vec::new();
        let mut samples = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim_start();
                if let Some(rest) = comment.strip_prefix("TYPE ") {
                    let mut parts = rest.splitn(2, ' ');
                    let name = parts.next().unwrap_or("");
                    let ty = parts.next().unwrap_or("").trim();
                    if !valid_metric_name(name) {
                        return Err(format!(
                            "line {line_no}: invalid metric name '{name}' in TYPE"
                        ));
                    }
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {line_no}: unknown TYPE '{ty}'"));
                    }
                    let info = families.entry(name.to_owned()).or_default();
                    if info.ty.is_some() {
                        return Err(format!("line {line_no}: duplicate TYPE for '{name}'"));
                    }
                    info.ty = Some(ty.to_owned());
                    order.push(name.to_owned());
                } else if let Some(rest) = comment.strip_prefix("HELP ") {
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!(
                            "line {line_no}: invalid metric name '{name}' in HELP"
                        ));
                    }
                }
                // other comments are free-form
                continue;
            }
            // sample line: name[{labels}] value [timestamp]
            let (name_labels, value_ts) = match line.find([' ', '\t']) {
                Some(split) if !line[..split].contains('{') => {
                    (&line[..split], line[split..].trim_start())
                }
                _ => {
                    // label block may contain spaces; find the closing brace
                    match line.find('}') {
                        Some(close) => (&line[..=close], line[close + 1..].trim_start()),
                        None if line.contains('{') => {
                            return Err(format!("line {line_no}: unterminated label block"))
                        }
                        None => {
                            let split = line
                                .find([' ', '\t'])
                                .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                            (&line[..split], line[split..].trim_start())
                        }
                    }
                }
            };
            let (name, labels) = match name_labels.find('{') {
                Some(open) => {
                    let block = name_labels
                        .strip_suffix('}')
                        .ok_or_else(|| format!("line {line_no}: unterminated label block"))?;
                    (
                        &name_labels[..open],
                        parse_labels(&block[open + 1..], line_no)?,
                    )
                }
                None => (name_labels, Vec::new()),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {line_no}: invalid metric name '{name}'"));
            }
            let value_str = value_ts.split_whitespace().next().unwrap_or("");
            let value = valid_value(value_str)
                .ok_or_else(|| format!("line {line_no}: invalid value '{value_str}'"))?;
            samples += 1;

            // Fold histogram suffixes into their declared family.
            let base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                families
                    .get(stripped)
                    .filter(|info| info.ty.as_deref() == Some("histogram"))
                    .map(|_| (stripped.to_owned(), *suffix))
            });
            match base {
                Some((family, suffix)) => {
                    let key: String = labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .map(|(k, v)| format!("{k}={v},"))
                        .collect();
                    let info = families.get_mut(&family).expect("family just found");
                    match suffix {
                        "_bucket" => {
                            let le = labels
                                .iter()
                                .find(|(k, _)| k == "le")
                                .ok_or_else(|| {
                                    format!("line {line_no}: _bucket sample without 'le'")
                                })?
                                .1
                                .clone();
                            let le_val = valid_value(&le)
                                .ok_or_else(|| format!("line {line_no}: invalid le '{le}'"))?;
                            let cum = value as u64;
                            if let Some((last_le, last_cum)) = info.hist_last_cum.get(&key) {
                                if le_val < *last_le {
                                    return Err(format!(
                                        "line {line_no}: 'le' out of order for '{family}'"
                                    ));
                                }
                                if cum < *last_cum {
                                    return Err(format!(
                                        "line {line_no}: cumulative bucket count decreased \
                                         for '{family}'"
                                    ));
                                }
                            }
                            info.hist_last_cum.insert(key.clone(), (le_val, cum));
                            if le_val.is_infinite() {
                                info.hist_inf.insert(key, cum);
                            }
                        }
                        "_count" => {
                            info.hist_count.insert(key, value as u64);
                        }
                        _ => {} // _sum: any float is fine
                    }
                }
                None => {
                    // Plain sample: family may be declared (counter/gauge)
                    // or undeclared (untyped); counters must be >= 0.
                    if let Some(info) = families.get(name) {
                        if info.ty.as_deref() == Some("counter") && value < 0.0 {
                            return Err(format!("line {line_no}: negative counter '{name}'"));
                        }
                        if info.ty.as_deref() == Some("histogram") {
                            return Err(format!(
                                "line {line_no}: histogram family '{name}' sampled \
                                 without _bucket/_sum/_count suffix"
                            ));
                        }
                    } else if !order.contains(&name.to_owned()) {
                        order.push(name.to_owned());
                        families.entry(name.to_owned()).or_default();
                    }
                }
            }
        }
        // Histogram closure: every series needs a +Inf bucket equal to
        // its _count.
        for (family, info) in &families {
            if info.ty.as_deref() != Some("histogram") {
                continue;
            }
            for (key, count) in &info.hist_count {
                match info.hist_inf.get(key) {
                    None => {
                        return Err(format!(
                            "histogram '{family}' series {{{key}}} lacks a +Inf bucket"
                        ))
                    }
                    Some(inf) if inf != count => {
                        return Err(format!(
                            "histogram '{family}' series {{{key}}}: +Inf bucket {inf} \
                             != count {count}"
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        let families = order
            .into_iter()
            .filter(|f| seen.insert(f.clone()))
            .collect();
        Ok(CheckSummary { families, samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            let (low, width) = bucket_bounds(idx);
            assert!(low <= v, "low {low} > {v}");
            assert!(
                v - low < width,
                "value {v} outside bucket [{low}, +{width})"
            );
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn width_never_exceeds_error_bound() {
        for idx in SUB as usize..BUCKETS {
            let (low, width) = bucket_bounds(idx);
            assert!(
                (width as f64) <= low as f64 * Histogram::RELATIVE_ERROR,
                "bucket {idx}: width {width} low {low}"
            );
        }
    }

    #[test]
    fn rate_counter_windows() {
        let rc = RateCounter::new();
        for sec in 0..10u64 {
            for _ in 0..(sec + 1) {
                rc.record_at(sec);
            }
        }
        // At second 10, the last 5 complete seconds are 5..=9 with
        // counts 6..=10 -> mean 8.
        assert!((rc.rate_at(10, 5) - 8.0).abs() < 1e-9);
        // Window of 1: just second 9.
        assert!((rc.rate_at(10, 1) - 10.0).abs() < 1e-9);
        // Far in the future every slot is stale.
        assert_eq!(rc.rate_at(1000, 5), 0.0);
    }

    #[test]
    fn jsonl_event_escapes() {
        let line = jsonl_event(&[
            ("id", FieldValue::Str("a\"b")),
            ("n", FieldValue::U64(3)),
            ("ok", FieldValue::Bool(true)),
        ]);
        assert_eq!(line, "{\"id\":\"a\\\"b\",\"n\":3,\"ok\":true}");
    }

    #[test]
    fn trace_counters_reduce_events() {
        use crate::ids::NodeId;
        let tc = TraceCounters::new();
        tc.record(TraceEvent::Fork {
            parent: 0,
            child: 1,
            load: NodeId::new(1),
            store: NodeId::new(0),
        });
        tc.record(TraceEvent::Prune {
            child: 1,
            reason: PruneReason::Duplicate,
        });
        tc.record(TraceEvent::Commit { id: 0 });
        assert_eq!(tc.snapshot(), (1, 1, 0, 1));
    }
}
