//! Error types for the execution-graph framework.

use std::error::Error as StdError;
use std::fmt;

use crate::ids::NodeId;

/// Inserting an ordering edge would have made the `@` relation cyclic.
///
/// A cycle in `@` means the execution has no serialization. During ordinary
/// (non-speculative) enumeration of a store-atomic model this never happens;
/// during speculative execution it is the signal that a speculative fork
/// must be rolled back (paper section 5.2), and in the TSO extension it is
/// how illegal bypass choices are rejected (paper section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// Source of the offending edge.
    pub from: NodeId,
    /// Target of the offending edge.
    pub to: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ordering edge {} -> {} would create a cycle in @",
            self.from, self.to
        )
    }
}

impl StdError for CycleError {}

/// An error raised while enumerating program behaviours.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnumError {
    /// A thread generated more graph nodes than
    /// [`EnumConfig::max_nodes_per_thread`](crate::enumerate::EnumConfig)
    /// allows (the program probably loops).
    NodeLimit {
        /// Index of the offending thread.
        thread: usize,
        /// The configured limit.
        limit: u32,
    },
    /// The enumeration frontier exceeded
    /// [`EnumConfig::max_behaviors`](crate::enumerate::EnumConfig).
    BehaviorLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A behaviour reached quiescence with unresolved operations but no
    /// resolvable load. This indicates an internal invariant violation and
    /// is never expected for well-formed programs.
    Stuck,
    /// An ordering cycle arose in a context where the model guarantees
    /// consistency (i.e. outside speculation/bypass forks).
    UnexpectedCycle(CycleError),
    /// The enumeration spent its fork fuel
    /// ([`EnumConfig::budget`](crate::enumerate::EnumConfig)) before
    /// completing. Unlike the hard limits above, a budget is a
    /// *per-request* resource allowance — the service layer maps this
    /// variant to a structured `overbudget` protocol error instead of
    /// letting one query monopolize a worker.
    Overbudget {
        /// The configured fuel (maximum forks).
        budget: u64,
        /// Forks attempted when the fuel ran out.
        forks: u64,
    },
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::NodeLimit { thread, limit } => write!(
                f,
                "thread {thread} exceeded the per-thread node limit of {limit} (unbounded loop?)"
            ),
            EnumError::BehaviorLimit { limit } => {
                write!(f, "behaviour frontier exceeded the limit of {limit}")
            }
            EnumError::Stuck => write!(
                f,
                "behaviour is quiescent with unresolved operations but no resolvable load"
            ),
            EnumError::UnexpectedCycle(e) => {
                write!(
                    f,
                    "unexpected ordering cycle in a non-speculative model: {e}"
                )
            }
            EnumError::Overbudget { budget, forks } => write!(
                f,
                "enumeration exhausted its fork budget of {budget} after {forks} forks"
            ),
        }
    }
}

impl StdError for EnumError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EnumError::UnexpectedCycle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CycleError> for EnumError {
    fn from(e: CycleError) -> Self {
        EnumError::UnexpectedCycle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn cycle_error_displays_both_ends() {
        let e = CycleError {
            from: NodeId::new(4),
            to: NodeId::new(2),
        };
        let s = e.to_string();
        assert!(s.contains("n4"));
        assert!(s.contains("n2"));
    }

    #[test]
    fn enum_error_wraps_cycle_error_as_source() {
        let cycle = CycleError {
            from: NodeId::new(0),
            to: NodeId::new(1),
        };
        let e: EnumError = cycle.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CycleError>();
        assert_send_sync::<EnumError>();
    }

    #[test]
    fn enum_error_messages_are_informative() {
        assert!(EnumError::NodeLimit {
            thread: 1,
            limit: 8
        }
        .to_string()
        .contains("thread 1"));
        assert!(EnumError::BehaviorLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(EnumError::Stuck.to_string().contains("quiescent"));
        let over = EnumError::Overbudget {
            budget: 100,
            forks: 101,
        };
        assert!(over.to_string().contains("budget of 100"));
        assert!(over.to_string().contains("101"));
    }
}
