//! Incrementally maintained transitive closure with cycle detection.
//!
//! The `@` relation of the paper ("A is before B in every serialization") is
//! built by repeatedly adding edges — local reordering edges, observation
//! (source) edges, and Store Atomicity edges — and asking reachability
//! questions such as "is there a store between `source(L)` and `L`?".
//! Keeping the full strict transitive closure in per-node predecessor and
//! successor bit sets makes every such query a constant-time bit test and
//! keeps edge insertion at `O(n²/64)` worst case, which is ideal for the
//! litmus-scale graphs this framework works on.
//!
//! Inserting an edge that would create a cycle is reported as a
//! [`CycleError`]; a cycle in `@` means the execution is not serializable
//! (used to discard speculative forks, paper section 5.2).

use crate::bitset::BitSet;
use crate::error::CycleError;
use crate::ids::NodeId;

/// A strict partial order over dense node indices, closed under
/// transitivity, with incremental edge insertion and cycle detection.
///
/// # Examples
///
/// ```
/// use samm_core::closure::Closure;
/// use samm_core::ids::NodeId;
///
/// let mut c = Closure::new();
/// let a = c.add_node();
/// let b = c.add_node();
/// let d = c.add_node();
/// c.add_edge(a, b).unwrap();
/// c.add_edge(b, d).unwrap();
/// assert!(c.reaches(a, d));
/// assert!(c.add_edge(d, a).is_err()); // would close a cycle
/// ```
#[derive(Debug, Clone, Default)]
pub struct Closure {
    /// `succ[i]` = all `j` with `i @ j` (strict: never contains `i`).
    succ: Vec<BitSet>,
    /// `pred[j]` = all `i` with `i @ j` (strict).
    pred: Vec<BitSet>,
}

impl Closure {
    /// Creates an empty order with no nodes.
    pub fn new() -> Self {
        Closure::default()
    }

    /// Number of nodes in the order.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Returns `true` when the order has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Adds a fresh, unordered node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.succ.len());
        self.succ.push(BitSet::new());
        self.pred.push(BitSet::new());
        id
    }

    /// Returns `true` when `a @ b` (strictly before; `a != b` implied).
    #[inline]
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.succ[a.index()].contains(b.index())
    }

    /// Returns `true` when the two nodes are ordered either way.
    #[inline]
    pub fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        self.reaches(a, b) || self.reaches(b, a)
    }

    /// All strict successors of `a` (everything `a` precedes).
    #[inline]
    pub fn successors(&self, a: NodeId) -> &BitSet {
        &self.succ[a.index()]
    }

    /// All strict predecessors of `a` (everything preceding `a`).
    #[inline]
    pub fn predecessors(&self, a: NodeId) -> &BitSet {
        &self.pred[a.index()]
    }

    /// Inserts `from @ to` and re-closes transitively.
    ///
    /// Returns `Ok(true)` if any new ordering pair was added, `Ok(false)`
    /// when the pair was already implied.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when `from == to` or when `to` already reaches
    /// `from` — i.e. the edge would make the order cyclic. The order is left
    /// unchanged in that case.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<bool, CycleError> {
        if from == to || self.reaches(to, from) {
            return Err(CycleError { from, to });
        }
        if self.reaches(from, to) {
            return Ok(false);
        }
        // New pairs: (ancestors(from) ∪ {from}) × (descendants(to) ∪ {to}).
        let mut down = self.succ[to.index()].clone();
        down.insert(to.index());
        let mut up = self.pred[from.index()].clone();
        up.insert(from.index());

        for a in up.iter() {
            self.succ[a].union_with(&down);
        }
        for d in down.iter() {
            self.pred[d].union_with(&up);
        }
        Ok(true)
    }

    /// Common strict ancestors of `a` and `b`.
    pub fn common_ancestors(&self, a: NodeId, b: NodeId) -> BitSet {
        self.pred[a.index()].intersection(&self.pred[b.index()])
    }

    /// Common strict descendants of `a` and `b`.
    pub fn common_descendants(&self, a: NodeId, b: NodeId) -> BitSet {
        self.succ[a.index()].intersection(&self.succ[b.index()])
    }

    /// A topological order of all nodes (any one consistent with the order).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let mut emitted = BitSet::new();
        // Kahn's algorithm on the closed relation: a node is ready when all
        // its predecessors have been emitted. O(n²) — fine at this scale.
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|&i| {
                let ready = self.pred[i].iter().all(|p| emitted.contains(p));
                if ready {
                    emitted.insert(i);
                    out.push(NodeId::new(i));
                }
                !ready
            });
            assert!(remaining.len() < before, "closure contains a cycle");
        }
        out
    }

    /// Serializes the ordering pairs into `out` in a canonical order, using
    /// `relabel` to map raw indices to canonical indices.
    ///
    /// Used by behaviour deduplication: two graphs are compared by their
    /// closed ordering relation, not by which redundant edges happen to have
    /// been inserted.
    pub fn encode_pairs(&self, relabel: &[u32], out: &mut Vec<u8>) {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (i, set) in self.succ.iter().enumerate() {
            for j in set.iter() {
                pairs.push((relabel[i], relabel[j]));
            }
        }
        pairs.sort_unstable();
        for (a, b) in pairs {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(c: &mut Closure, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| c.add_node()).collect()
    }

    #[test]
    fn empty_closure() {
        let c = Closure::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.topological_order().is_empty());
    }

    #[test]
    fn direct_edge_reaches() {
        let mut c = Closure::new();
        let v = ids(&mut c, 2);
        assert_eq!(c.add_edge(v[0], v[1]), Ok(true));
        assert!(c.reaches(v[0], v[1]));
        assert!(!c.reaches(v[1], v[0]));
        assert!(c.ordered(v[0], v[1]));
    }

    #[test]
    fn transitivity_through_chain() {
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        c.add_edge(v[2], v[3]).unwrap();
        assert!(c.reaches(v[0], v[3]));
        assert!(c.reaches(v[1], v[3]));
        assert!(c.reaches(v[0], v[2]));
    }

    #[test]
    fn linking_two_chains_closes_cross_pairs() {
        // a0 -> a1, b0 -> b1; adding a1 -> b0 must order a0 before b1.
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[2], v[3]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert!(c.reaches(v[0], v[3]));
        assert!(c.reaches(v[0], v[2]));
        assert!(c.reaches(v[1], v[3]));
    }

    #[test]
    fn redundant_edge_reports_no_change() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert_eq!(c.add_edge(v[0], v[2]), Ok(false));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut c = Closure::new();
        let v = ids(&mut c, 1);
        assert!(c.add_edge(v[0], v[0]).is_err());
    }

    #[test]
    fn back_edge_is_detected_and_rolls_back_nothing() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        let err = c.add_edge(v[2], v[0]).unwrap_err();
        assert_eq!(err.from, v[2]);
        assert_eq!(err.to, v[0]);
        // Order unchanged: still exactly the old pairs.
        assert!(c.reaches(v[0], v[2]));
        assert!(!c.reaches(v[2], v[0]));
        assert!(!c.reaches(v[2], v[1]));
    }

    #[test]
    fn predecessors_and_successors_are_strict() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert_eq!(c.successors(v[0]).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.predecessors(v[2]).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!c.successors(v[0]).contains(0));
    }

    #[test]
    fn common_ancestors_and_descendants() {
        // Diamond: r -> a, r -> b, a -> s, b -> s.
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        let (r, a, b, s) = (v[0], v[1], v[2], v[3]);
        c.add_edge(r, a).unwrap();
        c.add_edge(r, b).unwrap();
        c.add_edge(a, s).unwrap();
        c.add_edge(b, s).unwrap();
        assert_eq!(c.common_ancestors(a, b).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            c.common_descendants(a, b).iter().collect::<Vec<_>>(),
            vec![3]
        );
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut c = Closure::new();
        let v = ids(&mut c, 5);
        c.add_edge(v[3], v[1]).unwrap();
        c.add_edge(v[1], v[4]).unwrap();
        c.add_edge(v[0], v[4]).unwrap();
        let order = c.topological_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(v[3]) < pos(v[1]));
        assert!(pos(v[1]) < pos(v[4]));
        assert!(pos(v[0]) < pos(v[4]));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn matches_floyd_warshall_on_random_dags() {
        // Reference check: build random edge sets (forward edges only, so
        // acyclic), compare incremental closure with Floyd–Warshall.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let n = rng.gen_range(2..20);
            let mut c = Closure::new();
            let v = ids(&mut c, n);
            let mut direct = vec![vec![false; n]; n];
            for _ in 0..rng.gen_range(0..3 * n) {
                let i = rng.gen_range(0..n - 1);
                let j = rng.gen_range(i + 1..n);
                direct[i][j] = true;
                c.add_edge(v[i], v[j]).unwrap();
            }
            // Floyd–Warshall reachability.
            let mut reach = direct.clone();
            for k in 0..n {
                for i in 0..n {
                    if reach[i][k] {
                        let row_k = reach[k].clone();
                        for (j, &through) in row_k.iter().enumerate() {
                            if through {
                                reach[i][j] = true;
                            }
                        }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        c.reaches(v[i], v[j]),
                        reach[i][j],
                        "mismatch at ({i},{j}) with n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn encode_pairs_is_insertion_order_independent() {
        let relabel: Vec<u32> = (0..3).collect();
        let mut c1 = Closure::new();
        let v1 = ids(&mut c1, 3);
        c1.add_edge(v1[0], v1[1]).unwrap();
        c1.add_edge(v1[1], v1[2]).unwrap();

        let mut c2 = Closure::new();
        let v2 = ids(&mut c2, 3);
        c2.add_edge(v2[1], v2[2]).unwrap();
        c2.add_edge(v2[0], v2[1]).unwrap();
        c2.add_edge(v2[0], v2[2]).unwrap(); // redundant

        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        c1.encode_pairs(&relabel, &mut b1);
        c2.encode_pairs(&relabel, &mut b2);
        assert_eq!(b1, b2);
    }
}
