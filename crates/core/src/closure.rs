//! Incrementally maintained transitive closure with cycle detection.
//!
//! The `@` relation of the paper ("A is before B in every serialization") is
//! built by repeatedly adding edges — local reordering edges, observation
//! (source) edges, and Store Atomicity edges — and asking reachability
//! questions such as "is there a store between `source(L)` and `L`?".
//! Keeping the full strict transitive closure in per-node predecessor and
//! successor bit rows makes every such query a constant-time bit test and
//! keeps edge insertion at `O(n²/64)` worst case, which is ideal for the
//! litmus-scale graphs this framework works on.
//!
//! Inserting an edge that would create a cycle is reported as a
//! [`CycleError`]; a cycle in `@` means the execution is not serializable
//! (used to discard speculative forks, paper section 5.2).

use std::cell::RefCell;

use crate::bitset::{BitSet, BitSetRef};
use crate::error::CycleError;
use crate::ids::NodeId;

const WORD_BITS: usize = 64;

thread_local! {
    /// Scratch frontier sets for [`Closure::add_edge`] (down, up).
    static EDGE_SCRATCH: RefCell<(BitSet, BitSet)> = RefCell::default();
}

/// A strict partial order over dense node indices, closed under
/// transitivity, with incremental edge insertion and cycle detection.
///
/// Rows live in one flat row-major matrix (`row_words` words per node)
/// rather than per-node allocations: cloning a `Closure` — which happens
/// on every enumeration fork — is two `memcpy`s with no per-row
/// allocation or reference-count traffic, and `add_edge` updates rows in
/// place. At litmus scale a whole matrix is a few cache lines, so a flat
/// copy beats any sharing scheme's bookkeeping.
///
/// # Examples
///
/// ```
/// use samm_core::closure::Closure;
/// use samm_core::ids::NodeId;
///
/// let mut c = Closure::new();
/// let a = c.add_node();
/// let b = c.add_node();
/// let d = c.add_node();
/// c.add_edge(a, b).unwrap();
/// c.add_edge(b, d).unwrap();
/// assert!(c.reaches(a, d));
/// assert!(c.add_edge(d, a).is_err()); // would close a cycle
/// ```
#[derive(Debug, Default)]
pub struct Closure {
    /// Number of nodes.
    n: usize,
    /// Words per row; rows widen (rarely) when `n` crosses a multiple
    /// of 64.
    row_words: usize,
    /// Row-major `n × row_words` matrix: bit `j` of row `i` means
    /// `i @ j` (strict: row `i` never contains `i`).
    succ: Vec<u64>,
    /// Transpose: bit `i` of row `j` means `i @ j` (strict).
    pred: Vec<u64>,
}

impl Clone for Closure {
    fn clone(&self) -> Self {
        Closure {
            n: self.n,
            row_words: self.row_words,
            succ: self.succ.clone(),
            pred: self.pred.clone(),
        }
    }

    // Capacity-reusing clone for enumeration fork scratch: `Vec`'s
    // `clone_from` keeps the matrix allocation when it already fits.
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.row_words = source.row_words;
        self.succ.clone_from(&source.succ);
        self.pred.clone_from(&source.pred);
    }
}

impl Closure {
    /// Creates an empty order with no nodes.
    pub fn new() -> Self {
        Closure::default()
    }

    /// Number of nodes in the order.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the order has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a fresh, unordered node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.n);
        if self.n == self.row_words * WORD_BITS {
            self.widen();
        }
        self.succ.resize(self.succ.len() + self.row_words, 0);
        self.pred.resize(self.pred.len() + self.row_words, 0);
        self.n += 1;
        id
    }

    /// Grows every row by one word (when node count crosses a multiple
    /// of 64). Rare: O(n²/64) work amortized over 64 node insertions.
    fn widen(&mut self) {
        let old = self.row_words;
        let new = old + 1;
        for matrix in [&mut self.succ, &mut self.pred] {
            let mut widened = Vec::with_capacity((self.n + 1) * new);
            for row in 0..self.n {
                widened.extend_from_slice(&matrix[row * old..(row + 1) * old]);
                widened.push(0);
            }
            *matrix = widened;
        }
        self.row_words = new;
    }

    #[inline]
    fn srow(&self, i: usize) -> &[u64] {
        &self.succ[i * self.row_words..(i + 1) * self.row_words]
    }

    #[inline]
    fn prow(&self, i: usize) -> &[u64] {
        &self.pred[i * self.row_words..(i + 1) * self.row_words]
    }

    /// Returns `true` when `a @ b` (strictly before; `a != b` implied).
    #[inline]
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        let (i, j) = (a.index(), b.index());
        self.succ[i * self.row_words + j / WORD_BITS] >> (j % WORD_BITS) & 1 != 0
    }

    /// Returns `true` when the two nodes are ordered either way.
    #[inline]
    pub fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        self.reaches(a, b) || self.reaches(b, a)
    }

    /// All strict successors of `a` (everything `a` precedes).
    #[inline]
    pub fn successors(&self, a: NodeId) -> BitSetRef<'_> {
        BitSetRef::from_words(self.srow(a.index()))
    }

    /// All strict predecessors of `a` (everything preceding `a`).
    #[inline]
    pub fn predecessors(&self, a: NodeId) -> BitSetRef<'_> {
        BitSetRef::from_words(self.prow(a.index()))
    }

    /// Inserts `from @ to` and re-closes transitively.
    ///
    /// Returns `Ok(true)` if any new ordering pair was added, `Ok(false)`
    /// when the pair was already implied.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] when `from == to` or when `to` already reaches
    /// `from` — i.e. the edge would make the order cyclic. The order is left
    /// unchanged in that case.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<bool, CycleError> {
        if from == to || self.reaches(to, from) {
            return Err(CycleError { from, to });
        }
        if self.reaches(from, to) {
            return Ok(false);
        }
        // New pairs: (ancestors(from) ∪ {from}) × (descendants(to) ∪ {to}).
        // The frontier sets live in per-thread scratch (edge insertion is
        // never re-entrant) so an insert allocates nothing of its own.
        let rw = self.row_words;
        EDGE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (down, up) = &mut *scratch;
            down.copy_from_words(self.srow(to.index()));
            down.insert(to.index());
            up.copy_from_words(self.prow(from.index()));
            up.insert(from.index());

            for a in up.iter() {
                let row = &mut self.succ[a * rw..(a + 1) * rw];
                for (dst, &src) in row.iter_mut().zip(down.words()) {
                    *dst |= src;
                }
            }
            for d in down.iter() {
                let row = &mut self.pred[d * rw..(d + 1) * rw];
                for (dst, &src) in row.iter_mut().zip(up.words()) {
                    *dst |= src;
                }
            }
        });
        Ok(true)
    }

    /// Common strict ancestors of `a` and `b`.
    pub fn common_ancestors(&self, a: NodeId, b: NodeId) -> BitSet {
        let mut out = BitSet::new();
        self.predecessors(a)
            .intersection_into(self.predecessors(b), &mut out);
        out
    }

    /// Common strict descendants of `a` and `b`.
    pub fn common_descendants(&self, a: NodeId, b: NodeId) -> BitSet {
        let mut out = BitSet::new();
        self.successors(a)
            .intersection_into(self.successors(b), &mut out);
        out
    }

    /// A topological order of all nodes (any one consistent with the order).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let mut emitted = BitSet::new();
        // Kahn's algorithm on the closed relation: a node is ready when all
        // its predecessors have been emitted. O(n²) — fine at this scale.
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|&i| {
                let ready = self
                    .predecessors(NodeId::new(i))
                    .iter()
                    .all(|p| emitted.contains(p));
                if ready {
                    emitted.insert(i);
                    out.push(NodeId::new(i));
                }
                !ready
            });
            assert!(remaining.len() < before, "closure contains a cycle");
        }
        out
    }

    /// Serializes the ordering pairs into `out` in a canonical order, using
    /// `relabel` to map raw indices to canonical indices.
    ///
    /// Used by behaviour deduplication: two graphs are compared by their
    /// closed ordering relation, not by which redundant edges happen to have
    /// been inserted.
    pub fn encode_pairs(&self, relabel: &[u32], out: &mut Vec<u8>) {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..self.n {
            for j in self.successors(NodeId::new(i)).iter() {
                pairs.push((relabel[i], relabel[j]));
            }
        }
        pairs.sort_unstable();
        for (a, b) in pairs {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(c: &mut Closure, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| c.add_node()).collect()
    }

    #[test]
    fn empty_closure() {
        let c = Closure::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.topological_order().is_empty());
    }

    #[test]
    fn direct_edge_reaches() {
        let mut c = Closure::new();
        let v = ids(&mut c, 2);
        assert_eq!(c.add_edge(v[0], v[1]), Ok(true));
        assert!(c.reaches(v[0], v[1]));
        assert!(!c.reaches(v[1], v[0]));
        assert!(c.ordered(v[0], v[1]));
    }

    #[test]
    fn transitivity_through_chain() {
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        c.add_edge(v[2], v[3]).unwrap();
        assert!(c.reaches(v[0], v[3]));
        assert!(c.reaches(v[1], v[3]));
        assert!(c.reaches(v[0], v[2]));
    }

    #[test]
    fn linking_two_chains_closes_cross_pairs() {
        // a0 -> a1, b0 -> b1; adding a1 -> b0 must order a0 before b1.
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[2], v[3]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert!(c.reaches(v[0], v[3]));
        assert!(c.reaches(v[0], v[2]));
        assert!(c.reaches(v[1], v[3]));
    }

    #[test]
    fn redundant_edge_reports_no_change() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert_eq!(c.add_edge(v[0], v[2]), Ok(false));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut c = Closure::new();
        let v = ids(&mut c, 1);
        assert!(c.add_edge(v[0], v[0]).is_err());
    }

    #[test]
    fn back_edge_is_detected_and_rolls_back_nothing() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        let err = c.add_edge(v[2], v[0]).unwrap_err();
        assert_eq!(err.from, v[2]);
        assert_eq!(err.to, v[0]);
        // Order unchanged: still exactly the old pairs.
        assert!(c.reaches(v[0], v[2]));
        assert!(!c.reaches(v[2], v[0]));
        assert!(!c.reaches(v[2], v[1]));
    }

    #[test]
    fn predecessors_and_successors_are_strict() {
        let mut c = Closure::new();
        let v = ids(&mut c, 3);
        c.add_edge(v[0], v[1]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();
        assert_eq!(c.successors(v[0]).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.predecessors(v[2]).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!c.successors(v[0]).contains(0));
    }

    #[test]
    fn common_ancestors_and_descendants() {
        // Diamond: r -> a, r -> b, a -> s, b -> s.
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        let (r, a, b, s) = (v[0], v[1], v[2], v[3]);
        c.add_edge(r, a).unwrap();
        c.add_edge(r, b).unwrap();
        c.add_edge(a, s).unwrap();
        c.add_edge(b, s).unwrap();
        assert_eq!(c.common_ancestors(a, b).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            c.common_descendants(a, b).iter().collect::<Vec<_>>(),
            vec![3]
        );
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut c = Closure::new();
        let v = ids(&mut c, 5);
        c.add_edge(v[3], v[1]).unwrap();
        c.add_edge(v[1], v[4]).unwrap();
        c.add_edge(v[0], v[4]).unwrap();
        let order = c.topological_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(v[3]) < pos(v[1]));
        assert!(pos(v[1]) < pos(v[4]));
        assert!(pos(v[0]) < pos(v[4]));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn matches_floyd_warshall_on_random_dags() {
        // Reference check: build random edge sets (forward edges only, so
        // acyclic), compare incremental closure with Floyd–Warshall.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let n = rng.gen_range(2..20);
            let mut c = Closure::new();
            let v = ids(&mut c, n);
            let mut direct = vec![vec![false; n]; n];
            for _ in 0..rng.gen_range(0..3 * n) {
                let i = rng.gen_range(0..n - 1);
                let j = rng.gen_range(i + 1..n);
                direct[i][j] = true;
                c.add_edge(v[i], v[j]).unwrap();
            }
            // Floyd–Warshall reachability.
            let mut reach = direct.clone();
            for k in 0..n {
                for i in 0..n {
                    if reach[i][k] {
                        let row_k = reach[k].clone();
                        for (j, &through) in row_k.iter().enumerate() {
                            if through {
                                reach[i][j] = true;
                            }
                        }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        c.reaches(v[i], v[j]),
                        reach[i][j],
                        "mismatch at ({i},{j}) with n={n}"
                    );
                }
            }
        }
    }

    /// A clone's matrix is independent storage: edges added to the fork
    /// never appear in the parent, and vice versa.
    #[test]
    fn clone_is_independent_storage() {
        let mut c = Closure::new();
        let v = ids(&mut c, 4);
        c.add_edge(v[0], v[1]).unwrap();

        let mut fork = c.clone();
        fork.add_edge(v[2], v[3]).unwrap();
        c.add_edge(v[1], v[2]).unwrap();

        assert!(fork.reaches(v[2], v[3]));
        assert!(!c.reaches(v[2], v[3]));
        assert!(c.reaches(v[0], v[2]));
        assert!(!fork.reaches(v[0], v[2]));
    }

    /// Mutation-after-fork isolation, exhaustively over a small universe:
    /// for every pair of distinct single edges on 4 nodes, adding one to
    /// the fork never changes what the parent reaches.
    #[test]
    fn fork_mutation_isolation_exhaustive() {
        let n = 4;
        for pi in 0..n {
            for pj in 0..n {
                if pi == pj {
                    continue;
                }
                let mut parent = Closure::new();
                let v = ids(&mut parent, n);
                parent.add_edge(v[pi], v[pj]).unwrap();
                let snapshot: Vec<Vec<bool>> = (0..n)
                    .map(|i| (0..n).map(|j| parent.reaches(v[i], v[j])).collect())
                    .collect();
                for fi in 0..n {
                    for fj in 0..n {
                        if fi == fj {
                            continue;
                        }
                        let mut fork = parent.clone();
                        let _ = fork.add_edge(v[fi], v[fj]); // may be cyclic; irrelevant
                        for i in 0..n {
                            for j in 0..n {
                                assert_eq!(
                                    parent.reaches(v[i], v[j]),
                                    snapshot[i][j],
                                    "fork edge ({fi},{fj}) leaked into parent at ({i},{j})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Merge commutativity: applying the same acyclic edge set to forks
    /// in any order yields the same closed relation.
    #[test]
    fn fork_merge_commutativity() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xD15C);
        for _ in 0..30 {
            let n = rng.gen_range(3..10);
            let mut base = Closure::new();
            let v = ids(&mut base, n);
            // Seed the base with one edge so forks start non-empty.
            base.add_edge(v[0], v[n - 1]).unwrap();
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for _ in 0..rng.gen_range(1..2 * n) {
                let i = rng.gen_range(0..n - 1);
                let j = rng.gen_range(i + 1..n);
                edges.push((i, j));
            }
            let mut forward = base.clone();
            for &(i, j) in &edges {
                forward.add_edge(v[i], v[j]).unwrap();
            }
            let mut reversed = base.clone();
            for &(i, j) in edges.iter().rev() {
                reversed.add_edge(v[i], v[j]).unwrap();
            }
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        forward.reaches(v[i], v[j]),
                        reversed.reaches(v[i], v[j]),
                        "order-dependent closure at ({i},{j})"
                    );
                }
            }
        }
    }

    /// Row widening at the 64-node boundary preserves the relation and
    /// keeps freshly added nodes unordered.
    #[test]
    fn widening_across_word_boundary_preserves_relation() {
        let mut c = Closure::new();
        let v = ids(&mut c, 63);
        for w in v.windows(2) {
            c.add_edge(w[0], w[1]).unwrap();
        }
        // Crossing 64 and 128 nodes forces two widenings.
        let more = ids(&mut c, 70);
        assert!(c.reaches(v[0], v[62]));
        c.add_edge(v[62], more[69]).unwrap();
        assert!(c.reaches(v[0], more[69]));
        for &m in &more[..69] {
            assert!(!c.ordered(v[0], m), "fresh node unexpectedly ordered");
        }
    }

    #[test]
    fn encode_pairs_is_insertion_order_independent() {
        let relabel: Vec<u32> = (0..3).collect();
        let mut c1 = Closure::new();
        let v1 = ids(&mut c1, 3);
        c1.add_edge(v1[0], v1[1]).unwrap();
        c1.add_edge(v1[1], v1[2]).unwrap();

        let mut c2 = Closure::new();
        let v2 = ids(&mut c2, 3);
        c2.add_edge(v2[1], v2[2]).unwrap();
        c2.add_edge(v2[0], v2[1]).unwrap();
        c2.add_edge(v2[0], v2[2]).unwrap(); // redundant

        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        c1.encode_pairs(&relabel, &mut b1);
        c2.encode_pairs(&relabel, &mut b2);
        assert_eq!(b1, b2);
    }
}
