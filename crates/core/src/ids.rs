//! Small identifier newtypes used throughout the crate.
//!
//! These exist to keep the many integer-indexed spaces (graph nodes, threads,
//! registers, memory addresses, data values) statically distinct
//! ([C-NEWTYPE]). All of them are cheap `Copy` types.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Index of a node in an [`ExecutionGraph`](crate::graph::ExecutionGraph).
///
/// Node ids are dense indices into the graph arena. They are only meaningful
/// relative to the graph (or [`Behavior`](crate::exec::Behavior)) that issued
/// them.
///
/// # Examples
///
/// ```
/// use samm_core::ids::NodeId;
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a program thread.
///
/// The distinguished value [`ThreadId::INIT`] marks the pseudo-thread that
/// owns memory-initializing Store operations (the paper assumes "memory is
/// initialized with Store operations before any thread is started").
///
/// # Examples
///
/// ```
/// use samm_core::ids::ThreadId;
/// assert!(ThreadId::new(0) != ThreadId::INIT);
/// assert!(ThreadId::INIT.is_init());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u16);

impl ThreadId {
    /// The pseudo-thread owning initial-memory Store operations.
    pub const INIT: ThreadId = ThreadId(u16::MAX);

    /// Creates a thread id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` collides with the reserved [`ThreadId::INIT`] value.
    #[inline]
    pub fn new(index: usize) -> Self {
        let raw = u16::try_from(index).expect("thread index exceeds u16");
        assert!(raw != u16::MAX, "thread index collides with ThreadId::INIT");
        ThreadId(raw)
    }

    /// Returns the dense index of this thread.
    ///
    /// # Panics
    ///
    /// Panics when called on [`ThreadId::INIT`], which has no program index.
    #[inline]
    pub fn index(self) -> usize {
        assert!(!self.is_init(), "ThreadId::INIT has no program index");
        self.0 as usize
    }

    /// Returns `true` for the initial-memory pseudo-thread.
    #[inline]
    pub fn is_init(self) -> bool {
        self.0 == u16::MAX
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_init() {
            write!(f, "init")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

/// A (virtual) register name within one thread.
///
/// Registers are thread-local; the same `Reg` in two threads names two
/// independent storage cells. Unwritten registers read as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u16);

impl Reg {
    /// Creates a register name from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        Reg(u16::try_from(index).expect("register index exceeds u16"))
    }

    /// Returns the dense index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A memory address.
///
/// The framework models a flat word-addressed memory, as the paper does
/// ("we assumed all reads and writes accessed fixed-size, aligned words").
/// Addresses are ordinary 64-bit data, so programs may compute them and store
/// them to memory (pointer aliasing, paper section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its raw word number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw word number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<Value> for Addr {
    fn from(v: Value) -> Self {
        Addr(v.raw())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A 64-bit data value.
///
/// All arithmetic in the instruction set is wrapping, and comparison
/// operators produce `1`/`0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// The zero value, used for uninitialized registers and memory.
    pub const ZERO: Value = Value(0);

    /// Creates a value from raw bits.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Value(raw)
    }

    /// Returns the raw bits.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` when this value is non-zero (branch-taken condition).
    #[inline]
    pub const fn is_truthy(self) -> bool {
        self.0 != 0
    }
}

impl From<Addr> for Value {
    fn from(a: Addr) -> Self {
        Value(a.raw())
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value(raw)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        for i in [0usize, 1, 17, 65_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn thread_id_init_is_distinguished() {
        assert!(ThreadId::INIT.is_init());
        assert!(!ThreadId::new(0).is_init());
        assert_ne!(ThreadId::new(0), ThreadId::INIT);
        assert_eq!(ThreadId::INIT.to_string(), "init");
        assert_eq!(ThreadId::new(2).to_string(), "T2");
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn thread_id_rejects_reserved_index() {
        let _ = ThreadId::new(u16::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "no program index")]
    fn thread_id_init_has_no_index() {
        let _ = ThreadId::INIT.index();
    }

    #[test]
    fn value_addr_conversions() {
        let v = Value::new(42);
        let a = Addr::from(v);
        assert_eq!(a.raw(), 42);
        assert_eq!(Value::from(a), v);
    }

    #[test]
    fn value_truthiness() {
        assert!(!Value::ZERO.is_truthy());
        assert!(Value::new(3).is_truthy());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Reg> = [Reg::new(2), Reg::new(0), Reg::new(1)]
            .into_iter()
            .collect();
        let order: Vec<usize> = set.into_iter().map(Reg::index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
