//! Graph generation and dataflow execution of behaviours (paper §4.1).
//!
//! A [`Behavior`] holds the program graph together with each thread's PC and
//! register map. The paper's procedure alternates three phases:
//!
//! 1. **Graph generation** — "generate unresolved nodes for each thread...
//!    stopping at the first unresolved branch", inserting all the solid `≺`
//!    edges required by the reordering rules;
//! 2. **Execution** — values propagate dataflow-style; when an address
//!    becomes known, the `x ≠ y` alias pairs fire and insert `≺` edges;
//! 3. **Load resolution** — handled by the enumerator, which forks one copy
//!    of the behaviour per candidate store (see [`mod@crate::enumerate`]).
//!
//! Address-aliasing speculation (paper §5) is a property of the
//! [`Policy`]: non-speculative executions add an [`EdgeKind::AddrResolve`]
//! edge from the producer of every earlier potentially-aliasing operation's
//! address; speculative executions omit it, and a fork whose late alias
//! edge closes a cycle is rolled back (discarded) by the enumerator.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::atomicity;
use crate::candidates;
use crate::error::CycleError;
use crate::graph::{EdgeKind, ExecutionGraph, Input, NodeDetail, RmwKind};
use crate::ids::{Addr, NodeId, Reg, ThreadId, Value};
use crate::instr::{Instr, Operand, Program, RmwOp};
use crate::obs::Obs;
use crate::policy::{Constraint, Policy};

/// Why a behaviour step could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// An ordering edge closed a cycle: the behaviour violates Store
    /// Atomicity. Under speculation/bypass this means "roll back the fork";
    /// in a plain store-atomic model it is an internal error.
    Inconsistent(CycleError),
    /// A thread exceeded the per-thread node budget (unbounded loop).
    NodeLimit {
        /// The offending thread index.
        thread: usize,
        /// The configured budget.
        limit: u32,
    },
}

impl From<CycleError> for StepError {
    fn from(e: CycleError) -> Self {
        StepError::Inconsistent(e)
    }
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Inconsistent(e) => write!(f, "behaviour became inconsistent: {e}"),
            StepError::NodeLimit { thread, limit } => {
                write!(f, "thread {thread} exceeded node budget {limit}")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// Decision state of a potentially-aliasing instruction pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AliasState {
    /// At least one address still unknown.
    Pending,
    /// Addresses known and different — no ordering required.
    Distinct,
    /// Addresses known and equal; for bypass pairs the ordering decision
    /// waits for load resolution.
    Aliased,
}

/// A program-ordered pair constrained by an `x ≠ y` (or bypass) table entry.
#[derive(Debug, Clone, Copy)]
struct AliasPair {
    first: NodeId,
    second: NodeId,
    /// TSO store→load pairs defer their ordering decision to resolution.
    bypass: bool,
    state: AliasState,
}

/// Per-thread architectural state: PC, register bindings, and control
/// status.
#[derive(Debug, Clone)]
struct ThreadState {
    pc: usize,
    regs: Vec<Input>,
    /// Set while generation is stopped at an unresolved branch.
    blocked_branch: Option<NodeId>,
    halted: bool,
    /// Number of graph nodes this thread has issued.
    emitted: u32,
}

impl ThreadState {
    fn new(reg_count: usize) -> Self {
        ThreadState {
            pc: 0,
            regs: vec![Input::Const(Value::ZERO); reg_count],
            blocked_branch: None,
            halted: false,
            emitted: 0,
        }
    }

    fn binding(&self, r: Reg) -> Input {
        self.regs
            .get(r.index())
            .copied()
            .unwrap_or(Input::Const(Value::ZERO))
    }

    fn bind(&mut self, r: Reg, input: Input) {
        if r.index() >= self.regs.len() {
            self.regs.resize(r.index() + 1, Input::Const(Value::ZERO));
        }
        self.regs[r.index()] = input;
    }
}

/// One (possibly partial) execution of a program: the graph plus every
/// thread's PC and register map.
///
/// Behaviours are cheap-ish to clone; the enumerator forks them at each
/// load-resolution choice.
#[derive(Debug)]
pub struct Behavior {
    graph: ExecutionGraph,
    /// Copy-on-write: mutated only while generation makes progress, so
    /// post-generation forks (the enumeration hot path) share one
    /// allocation with their parent.
    threads: Arc<Vec<ThreadState>>,
    alias_pairs: Vec<AliasPair>,
    /// Copy-on-write, like `threads` (mutated only by `ensure_init`).
    init_map: Arc<BTreeMap<Addr, NodeId>>,
    /// Issue-ordered node lists per program thread (for policy edges).
    /// Copy-on-write, like `threads` (mutated only by `emit_node`).
    thread_nodes: Arc<Vec<Vec<NodeId>>>,
    /// Shared instrumentation counters; `None` (the default) keeps every
    /// observation site at a single null check. Forks share the handle.
    obs: Option<Arc<Obs>>,
    /// Identity of this behaviour in the serial enumerator's event trace
    /// (0 for the root; excluded from [`Behavior::canonical_key`]).
    trace_id: u64,
}

impl Clone for Behavior {
    fn clone(&self) -> Self {
        Behavior {
            graph: self.graph.clone(),
            threads: Arc::clone(&self.threads),
            alias_pairs: self.alias_pairs.clone(),
            init_map: Arc::clone(&self.init_map),
            thread_nodes: Arc::clone(&self.thread_nodes),
            obs: self.obs.clone(),
            trace_id: self.trace_id,
        }
    }

    // Capacity-reusing clone: forking into a recycled behaviour keeps its
    // graph allocations instead of paying malloc/free per fork.
    fn clone_from(&mut self, source: &Self) {
        self.graph.clone_from(&source.graph);
        self.threads.clone_from(&source.threads);
        self.alias_pairs.clone_from(&source.alias_pairs);
        self.init_map.clone_from(&source.init_map);
        self.thread_nodes.clone_from(&source.thread_nodes);
        self.obs.clone_from(&source.obs);
        self.trace_id = source.trace_id;
    }
}

impl Behavior {
    /// Creates the initial behaviour of `program`: empty graph, every
    /// thread at PC 0, plus init stores for the explicitly initialized
    /// addresses. Init stores for other addresses appear lazily as soon as
    /// the address is first used.
    pub fn new(program: &Program) -> Self {
        let threads: Vec<ThreadState> = program
            .threads()
            .iter()
            .map(|t| ThreadState::new(t.reg_count()))
            .collect();
        let mut b = Behavior {
            graph: ExecutionGraph::new(),
            threads: Arc::new(threads),
            alias_pairs: Vec::new(),
            init_map: Arc::new(BTreeMap::new()),
            thread_nodes: Arc::new(vec![Vec::new(); program.threads().len()]),
            obs: None,
            trace_id: 0,
        };
        for (addr, value) in program.init_entries() {
            b.ensure_init(addr, value);
        }
        b
    }

    /// The execution graph built so far.
    pub fn graph(&self) -> &ExecutionGraph {
        &self.graph
    }

    /// Attaches shared instrumentation counters. Every fork cloned from
    /// this behaviour reports into the same [`Obs`] block.
    pub fn enable_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// The attached instrumentation counters, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// This behaviour's identity in the serial enumerator's event trace.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    pub(crate) fn set_trace_id(&mut self, id: u64) {
        self.trace_id = id;
    }

    /// The current PC of a thread.
    pub fn pc(&self, thread: usize) -> usize {
        self.threads[thread].pc
    }

    /// Whether the thread has run to completion.
    pub fn thread_halted(&self, thread: usize) -> bool {
        self.threads[thread].halted
    }

    /// The current value bound to a register, when resolved.
    pub fn register_value(&self, thread: usize, reg: Reg) -> Option<Value> {
        match self.threads[thread].binding(reg) {
            Input::Const(v) => Some(v),
            Input::Node(id) => {
                let n = self.graph.node(id);
                if n.is_resolved() {
                    n.value()
                } else {
                    None
                }
            }
        }
    }

    /// Number of registers a thread's program uses.
    pub fn register_count(&self, thread: usize) -> usize {
        self.threads[thread].regs.len()
    }

    /// Number of program threads (excluding the init pseudo-thread).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// True when every thread has halted, no branch is pending, and every
    /// node (in particular every load) is resolved.
    pub fn is_complete(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.halted && t.blocked_branch.is_none())
            && self.graph.fully_resolved()
    }

    /// The init store for `addr`, creating it (with `value`) if absent.
    fn ensure_init(&mut self, addr: Addr, value: Value) -> NodeId {
        if let Some(&id) = self.init_map.get(&addr) {
            return id;
        }
        let id = self.graph.add_init_store(0, addr, value);
        Arc::make_mut(&mut self.init_map).insert(addr, id);
        // Initial stores precede every non-init operation.
        let others: Vec<NodeId> = self
            .graph
            .iter()
            .filter(|(other, n)| *other != id && !n.is_init())
            .map(|(other, _)| other)
            .collect();
        for other in others {
            self.graph
                .add_edge(id, other, EdgeKind::Init)
                .expect("init store cannot close a cycle");
        }
        id
    }

    fn operand_input(&self, thread: usize, op: Operand) -> Input {
        match op {
            Operand::Imm(v) => Input::Const(v),
            Operand::Reg(r) => self.threads[thread].binding(r),
        }
    }

    /// The graph node producing a memory operation's address, if any.
    fn addr_producer(&self, id: NodeId) -> Option<NodeId> {
        match *self.graph.node(id).detail() {
            NodeDetail::Load { addr_in, .. }
            | NodeDetail::Store { addr_in, .. }
            | NodeDetail::Rmw { addr_in, .. } => addr_in.producer(),
            _ => None,
        }
    }

    /// Emits one graph node for thread `thread`, wiring data edges, policy
    /// edges against all earlier nodes of the thread, and init edges.
    /// Mutable access to one thread's state, unsharing the copy-on-write
    /// thread vector on first mutation after a fork.
    fn thread_mut(&mut self, thread: usize) -> &mut ThreadState {
        &mut Arc::make_mut(&mut self.threads)[thread]
    }

    fn emit_node(
        &mut self,
        policy: &Policy,
        thread: usize,
        detail: NodeDetail,
    ) -> Result<NodeId, StepError> {
        let index = self.threads[thread].emitted;
        let id = self.graph.add_node(ThreadId::new(thread), index, detail);
        self.thread_mut(thread).emitted += 1;

        // Data edges from node-valued inputs.
        let inputs: Vec<NodeId> = match detail {
            NodeDetail::Compute { lhs, rhs, .. } => {
                lhs.producer().into_iter().chain(rhs.producer()).collect()
            }
            NodeDetail::Branch { cond, .. } => cond.producer().into_iter().collect(),
            NodeDetail::Load { addr_in, .. } => addr_in.producer().into_iter().collect(),
            NodeDetail::Store { addr_in, val_in } => addr_in
                .producer()
                .into_iter()
                .chain(val_in.producer())
                .collect(),
            NodeDetail::Rmw {
                addr_in,
                src_in,
                expect_in,
                ..
            } => addr_in
                .producer()
                .into_iter()
                .chain(src_in.producer())
                .chain(expect_in.and_then(Input::producer))
                .collect(),
            NodeDetail::Fence | NodeDetail::Init => Vec::new(),
        };
        for p in inputs {
            self.graph.add_edge(p, id, EdgeKind::Data)?;
        }

        // Reordering-table edges against every earlier node of the thread.
        // RMW nodes carry both a Load and a Store facet; the constraint for
        // a pair is the strongest over all facet combinations.
        let classes = self.graph.node(id).classes();
        let priors: Vec<NodeId> = self.thread_nodes[thread].clone();
        for prior in priors {
            let prior_classes = self.graph.node(prior).classes();
            match policy.combined_constraint(prior_classes, classes) {
                Constraint::Never => {
                    self.graph.add_edge(prior, id, EdgeKind::Program)?;
                }
                c @ (Constraint::SameAddr | Constraint::Bypass) => {
                    self.alias_pairs.push(AliasPair {
                        first: prior,
                        second: id,
                        bypass: c == Constraint::Bypass,
                        state: AliasState::Pending,
                    });
                    // Non-speculative address disambiguation (§5.1): the
                    // later operation depends on the instruction providing
                    // the earlier operation's address.
                    if !policy.alias_speculation() {
                        if let Some(producer) = self.addr_producer(prior) {
                            self.graph.add_edge(producer, id, EdgeKind::AddrResolve)?;
                        }
                    }
                }
                Constraint::Free | Constraint::DataOnly => {}
            }
        }

        // Initial stores precede everything.
        for (_, &init) in self.init_map.iter() {
            self.graph.add_edge(init, id, EdgeKind::Init)?;
        }

        Arc::make_mut(&mut self.thread_nodes)[thread].push(id);
        Ok(id)
    }

    /// Phase 1 — graph generation: extends every thread's node supply up to
    /// its first unresolved branch (or halt). Returns `true` when any node
    /// was added or any PC moved.
    ///
    /// # Errors
    ///
    /// [`StepError::NodeLimit`] when a thread issues more than
    /// `max_nodes_per_thread` nodes; [`StepError::Inconsistent`] is
    /// impossible here in practice but propagated for uniformity.
    pub fn generate(
        &mut self,
        program: &Program,
        policy: &Policy,
        max_nodes_per_thread: u32,
    ) -> Result<bool, StepError> {
        let mut changed = false;
        for thread in 0..self.threads.len() {
            let instrs = program.threads()[thread].instrs();
            // Guard against no-node infinite loops (e.g. `jmp self`).
            let mut steps = 0u32;
            loop {
                steps += 1;
                if steps > max_nodes_per_thread.saturating_mul(4).saturating_add(64) {
                    return Err(StepError::NodeLimit {
                        thread,
                        limit: max_nodes_per_thread,
                    });
                }
                if self.threads[thread].halted {
                    break;
                }
                if let Some(branch) = self.threads[thread].blocked_branch {
                    let node = self.graph.node(branch);
                    if !node.is_resolved() {
                        break;
                    }
                    let taken = node
                        .value()
                        .expect("resolved branch has a value")
                        .is_truthy();
                    let (target, fallthrough) = match *node.detail() {
                        NodeDetail::Branch {
                            target,
                            fallthrough,
                            ..
                        } => (target, fallthrough),
                        _ => unreachable!("blocked_branch points at a branch"),
                    };
                    self.thread_mut(thread).pc = if taken { target } else { fallthrough };
                    self.thread_mut(thread).blocked_branch = None;
                    changed = true;
                    continue;
                }
                let pc = self.threads[thread].pc;
                if pc >= instrs.len() {
                    self.thread_mut(thread).halted = true;
                    changed = true;
                    break;
                }
                if self.threads[thread].emitted >= max_nodes_per_thread {
                    return Err(StepError::NodeLimit {
                        thread,
                        limit: max_nodes_per_thread,
                    });
                }
                match instrs[pc] {
                    Instr::Mov { dst, src } => {
                        let input = self.operand_input(thread, src);
                        self.thread_mut(thread).bind(dst, input);
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::Binop { dst, op, lhs, rhs } => {
                        let lhs = self.operand_input(thread, lhs);
                        let rhs = self.operand_input(thread, rhs);
                        let id =
                            self.emit_node(policy, thread, NodeDetail::Compute { op, lhs, rhs })?;
                        self.thread_mut(thread).bind(dst, Input::Node(id));
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::Load { dst, addr } => {
                        let addr_in = self.operand_input(thread, addr);
                        let id =
                            self.emit_node(policy, thread, NodeDetail::Load { addr_in, dst })?;
                        self.thread_mut(thread).bind(dst, Input::Node(id));
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::Store { addr, val } => {
                        let addr_in = self.operand_input(thread, addr);
                        let val_in = self.operand_input(thread, val);
                        self.emit_node(policy, thread, NodeDetail::Store { addr_in, val_in })?;
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::Rmw { dst, addr, op, src } => {
                        let addr_in = self.operand_input(thread, addr);
                        let src_in = self.operand_input(thread, src);
                        let (kind, expect_in) = match op {
                            RmwOp::Swap => (RmwKind::Swap, None),
                            RmwOp::FetchAdd => (RmwKind::FetchAdd, None),
                            RmwOp::Cas { expect } => {
                                (RmwKind::Cas, Some(self.operand_input(thread, expect)))
                            }
                        };
                        let id = self.emit_node(
                            policy,
                            thread,
                            NodeDetail::Rmw {
                                addr_in,
                                src_in,
                                expect_in,
                                kind,
                                dst,
                            },
                        )?;
                        self.thread_mut(thread).bind(dst, Input::Node(id));
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::Fence => {
                        self.emit_node(policy, thread, NodeDetail::Fence)?;
                        self.thread_mut(thread).pc = pc + 1;
                    }
                    Instr::BranchNz { cond, target } => {
                        let cond = self.operand_input(thread, cond);
                        let id = self.emit_node(
                            policy,
                            thread,
                            NodeDetail::Branch {
                                cond,
                                target,
                                fallthrough: pc + 1,
                            },
                        )?;
                        self.thread_mut(thread).blocked_branch = Some(id);
                        // PC is updated when the branch resolves.
                    }
                    Instr::Jump { target } => {
                        self.thread_mut(thread).pc = target;
                    }
                    Instr::Halt => {
                        self.thread_mut(thread).halted = true;
                    }
                }
                changed = true;
            }
        }
        Ok(changed)
    }

    fn input_value(&self, input: Input) -> Option<Value> {
        match input {
            Input::Const(v) => Some(v),
            Input::Node(id) => {
                let n = self.graph.node(id);
                if n.is_resolved() {
                    n.value()
                } else {
                    None
                }
            }
        }
    }

    /// Phase 2 — dataflow execution: resolves every non-load node whose
    /// inputs are available, records addresses as they become known, and
    /// fires pending alias pairs. Returns `true` when anything changed.
    ///
    /// # Errors
    ///
    /// [`StepError::Inconsistent`] when a fired alias edge closes a cycle
    /// (possible only under speculation, where it triggers rollback).
    pub fn execute(&mut self, program: &Program) -> Result<bool, StepError> {
        let mut any_change = false;
        loop {
            let mut changed = false;
            for raw in 0..self.graph.len() {
                let id = NodeId::new(raw);
                let node = self.graph.node(id);
                match *node.detail() {
                    NodeDetail::Compute { op, lhs, rhs } => {
                        if !node.is_resolved() {
                            if let (Some(a), Some(b)) =
                                (self.input_value(lhs), self.input_value(rhs))
                            {
                                self.graph.set_value(id, op.apply(a, b));
                                self.graph.mark_resolved(id);
                                changed = true;
                            }
                        }
                    }
                    NodeDetail::Branch { cond, .. } => {
                        if !node.is_resolved() {
                            if let Some(v) = self.input_value(cond) {
                                self.graph.set_value(id, v);
                                self.graph.mark_resolved(id);
                                changed = true;
                            }
                        }
                    }
                    NodeDetail::Load { addr_in, .. } | NodeDetail::Rmw { addr_in, .. } => {
                        if node.addr().is_none() {
                            if let Some(v) = self.input_value(addr_in) {
                                let addr = Addr::from(v);
                                self.graph.set_addr(id, addr);
                                self.ensure_init(addr, program.initial_value(addr));
                                self.fire_alias_pairs(id)?;
                                changed = true;
                            }
                        }
                        // Loads (and RMWs) resolve only via load resolution.
                    }
                    NodeDetail::Store { addr_in, val_in } => {
                        let mut store_changed = false;
                        if node.addr().is_none() {
                            if let Some(v) = self.input_value(addr_in) {
                                let addr = Addr::from(v);
                                self.graph.set_addr(id, addr);
                                self.ensure_init(addr, program.initial_value(addr));
                                self.fire_alias_pairs(id)?;
                                store_changed = true;
                            }
                        }
                        if self.graph.node(id).value().is_none() {
                            if let Some(v) = self.input_value(val_in) {
                                self.graph.set_value(id, v);
                                store_changed = true;
                            }
                        }
                        let n = self.graph.node(id);
                        if !n.is_resolved() && n.addr().is_some() && n.value().is_some() {
                            self.graph.mark_resolved(id);
                            store_changed = true;
                        }
                        changed |= store_changed;
                    }
                    NodeDetail::Fence | NodeDetail::Init => {}
                }
            }
            if !changed {
                break;
            }
            any_change = true;
        }
        Ok(any_change)
    }

    /// Decides pending alias pairs that involve `id` once its address is
    /// known.
    fn fire_alias_pairs(&mut self, id: NodeId) -> Result<(), StepError> {
        for i in 0..self.alias_pairs.len() {
            let pair = self.alias_pairs[i];
            if pair.state != AliasState::Pending || (pair.first != id && pair.second != id) {
                continue;
            }
            let a1 = self.graph.node(pair.first).addr();
            let a2 = self.graph.node(pair.second).addr();
            let (Some(a1), Some(a2)) = (a1, a2) else {
                continue;
            };
            if a1 != a2 {
                self.alias_pairs[i].state = AliasState::Distinct;
                continue;
            }
            self.alias_pairs[i].state = AliasState::Aliased;
            let second_resolved = self.graph.node(pair.second).is_resolved();
            if pair.bypass && !second_resolved {
                // TSO store→load: the ordering decision waits for the
                // load's resolution (bypass vs. ordered).
                continue;
            }
            // Strict pairs — and bypass pairs whose load already resolved
            // speculatively to some *other* store — get the `≺` edge now.
            // A cycle here means a speculative fork must be rolled back.
            self.graph
                .add_edge(pair.first, pair.second, EdgeKind::Alias)?;
        }
        Ok(())
    }

    /// Runs generation and execution to quiescence, then closes Store
    /// Atomicity. Phase 3 (load resolution) is the enumerator's job.
    ///
    /// # Errors
    ///
    /// See [`Behavior::generate`] and [`Behavior::execute`]; additionally
    /// [`StepError::Inconsistent`] when the Store Atomicity closure finds a
    /// cycle.
    pub fn settle(
        &mut self,
        program: &Program,
        policy: &Policy,
        max_nodes_per_thread: u32,
    ) -> Result<(), StepError> {
        let start = self.obs.as_ref().map(|_| Instant::now());
        let result = self.settle_inner(program, policy, max_nodes_per_thread);
        if let (Some(t), Some(o)) = (start, &self.obs) {
            // Includes the closure time of the `enforce` call it makes.
            Obs::add(&o.settle_nanos, t.elapsed().as_nanos() as u64);
        }
        result
    }

    fn settle_inner(
        &mut self,
        program: &Program,
        policy: &Policy,
        max_nodes_per_thread: u32,
    ) -> Result<(), StepError> {
        let mut progressed = false;
        loop {
            let generated = self.generate(program, policy, max_nodes_per_thread)?;
            let executed = self.execute(program)?;
            if !generated && !executed {
                break;
            }
            progressed = true;
        }
        // A zero-progress pass means the graph is exactly as the caller
        // left it: either fresh (no resolved loads, so the atomicity rules
        // are vacuous) or just closed by `resolve_load`. Both are already
        // at the fixpoint, so re-running the closure would verify and add
        // nothing — skip it. This keeps late-stage load resolutions (where
        // the graph is fully generated) at a single closure per fork.
        if progressed {
            atomicity::enforce_observed(&mut self.graph, self.obs.as_deref())?;
        }
        Ok(())
    }

    /// Unresolved loads that currently pass the resolution gate of §4
    /// (address known, all predecessor loads resolved).
    pub fn resolvable_loads(&self) -> Vec<NodeId> {
        self.graph
            .iter()
            .filter(|(_, n)| n.is_load() && !n.is_resolved())
            .map(|(id, _)| id)
            .filter(|&id| candidates::load_resolvable(&self.graph, id))
            .collect()
    }

    /// [`Behavior::resolvable_loads`] into a caller-provided buffer.
    pub fn resolvable_loads_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.graph
                .iter()
                .filter(|(_, n)| n.is_load() && !n.is_resolved())
                .map(|(id, _)| id)
                .filter(|&id| candidates::load_resolvable(&self.graph, id)),
        );
    }

    /// Single-scan fusion of [`Behavior::is_complete`],
    /// [`Behavior::resolvable_loads_into`], and the per-address store
    /// index for the enumeration hot path.
    ///
    /// Fills `unresolved` with every unresolved memory operation and
    /// `stores` with every addressed store in node order (the gate and
    /// candidate inputs for [`Behavior::candidates_gated_into`]), fills
    /// `out` with the loads that pass the resolution gate of §4, and
    /// returns whether the behavior is complete. The per-load gate is a
    /// handful of O(1) reachability bit-tests against the unresolved set
    /// instead of a predecessor-set walk per load.
    pub fn completeness_scan(
        &self,
        unresolved: &mut Vec<NodeId>,
        stores: &mut Vec<(Addr, NodeId)>,
        out: &mut Vec<NodeId>,
    ) -> bool {
        unresolved.clear();
        stores.clear();
        out.clear();
        let mut all_resolved = true;
        for (id, n) in self.graph.iter() {
            if !n.is_resolved() {
                all_resolved = false;
                if n.is_memory() {
                    unresolved.push(id);
                }
            }
            if n.is_store() {
                if let Some(addr) = n.addr() {
                    stores.push((addr, id));
                }
            }
        }
        for i in 0..unresolved.len() {
            let l = unresolved[i];
            let n = self.graph.node(l);
            if !n.is_load() || n.addr().is_none() {
                continue;
            }
            let blocked = unresolved
                .iter()
                .any(|&u| u != l && self.graph.node(u).is_load() && self.graph.precedes(u, l));
            if !blocked {
                out.push(l);
            }
        }
        all_resolved
            && self
                .threads
                .iter()
                .all(|t| t.halted && t.blocked_branch.is_none())
    }

    /// `candidates(L)` for a resolvable load (see [`crate::candidates`]).
    pub fn candidates(&self, load: NodeId) -> Vec<NodeId> {
        candidates::candidates(&self.graph, load)
    }

    /// [`Behavior::candidates`] with caller-provided buffers (see
    /// [`crate::candidates::candidates_into`]).
    pub fn candidates_into(&self, load: NodeId, scratch: &mut Vec<NodeId>, out: &mut Vec<NodeId>) {
        candidates::candidates_into(&self.graph, load, scratch, out);
    }

    /// [`Behavior::candidates_into`] with the unresolved-memory-op list
    /// and store index precomputed by [`Behavior::completeness_scan`]
    /// (see [`crate::candidates::candidates_gated_into`]).
    pub fn candidates_gated_into(
        &self,
        load: NodeId,
        unresolved_mem: &[NodeId],
        all_stores: &[(Addr, NodeId)],
        scratch: &mut Vec<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        candidates::candidates_gated_into(
            &self.graph,
            load,
            unresolved_mem,
            all_stores,
            scratch,
            out,
        );
    }

    /// Summarizes the final register file of every thread.
    ///
    /// # Panics
    ///
    /// Panics when the behaviour is not [complete](Behavior::is_complete):
    /// partial behaviours have unresolved registers.
    pub fn outcome(&self) -> crate::outcome::Outcome {
        crate::outcome::Outcome::new(self.outcome_rows())
    }

    /// The final register file of every thread as raw per-thread rows.
    ///
    /// Exposed separately from [`Behavior::outcome`] so symmetry-aware
    /// enumeration can permute rows across structurally identical threads
    /// without rebuilding them per permutation.
    ///
    /// # Panics
    ///
    /// Panics when the behaviour is not [complete](Behavior::is_complete):
    /// partial behaviours have unresolved registers.
    pub fn outcome_rows(&self) -> Vec<Vec<Value>> {
        assert!(self.is_complete(), "outcome requires a complete behaviour");
        (0..self.threads.len())
            .map(|t| {
                (0..self.threads[t].regs.len())
                    .map(|r| {
                        self.register_value(t, Reg::new(r))
                            .expect("complete behaviour has resolved registers")
                    })
                    .collect()
            })
            .collect()
    }

    /// A canonical byte string identifying this behaviour up to
    /// serialization-equivalence: node descriptors in a
    /// creation-order-independent labelling, the closed `@` relation, and
    /// per-thread control state.
    ///
    /// This implements the paper's Load-Store-graph comparison used to
    /// "discard duplicate behaviors from B at each Load Resolution step",
    /// conservatively refined with the non-memory nodes (whose values are a
    /// deterministic function of the load observations, so the refinement
    /// never splits an equivalence class).
    pub fn canonical_key(&self) -> Vec<u8> {
        // Canonical node order: program nodes by (thread, issue index),
        // then init nodes by address (init creation order varies between
        // enumeration paths).
        let mut order: Vec<NodeId> = self.graph.node_ids().collect();
        order.sort_by_key(|&id| {
            let n = self.graph.node(id);
            if n.is_init() {
                (1u8, n.addr().map_or(0, |a| a.raw()), 0u32)
            } else {
                (0u8, n.thread().index() as u64, n.index_in_thread())
            }
        });
        let mut relabel = vec![0u32; self.graph.len()];
        for (canon, &id) in order.iter().enumerate() {
            relabel[id.index()] = canon as u32;
        }

        let mut key = Vec::with_capacity(self.graph.len() * 32);
        for &id in &order {
            let n = self.graph.node(id);
            let tag: u8 = match n.detail() {
                NodeDetail::Compute { .. } => 0,
                NodeDetail::Branch { .. } => 1,
                NodeDetail::Load { .. } => 2,
                NodeDetail::Store { .. } => 3,
                NodeDetail::Fence => 4,
                NodeDetail::Init => 5,
                NodeDetail::Rmw { .. } => 6,
            };
            key.push(tag);
            match n.stored_value() {
                Some(v) => {
                    key.push(1);
                    key.extend_from_slice(&v.raw().to_le_bytes());
                }
                None => key.push(0),
            }
            match n.addr() {
                Some(a) => {
                    key.push(1);
                    key.extend_from_slice(&a.raw().to_le_bytes());
                }
                None => key.push(0),
            }
            match n.value() {
                Some(v) => {
                    key.push(1);
                    key.extend_from_slice(&v.raw().to_le_bytes());
                }
                None => key.push(0),
            }
            let src = n.source().map_or(u32::MAX, |s| relabel[s.index()]);
            key.extend_from_slice(&src.to_le_bytes());
            key.push(u8::from(n.is_resolved()));
            key.push(u8::from(n.is_bypass_source()));
        }
        key.push(0xFE);
        self.graph.order().encode_pairs(&relabel, &mut key);
        key.push(0xFF);
        for t in self.threads.iter() {
            key.extend_from_slice(&(t.pc as u32).to_le_bytes());
            key.push(u8::from(t.halted));
            key.push(u8::from(t.blocked_branch.is_some()));
        }
        key
    }

    /// Phase 3 — resolves `load` to observe `store`, inserting the
    /// observation edge (or a TSO bypass edge), any deferred same-address
    /// edges, and the Store Atomicity consequences.
    ///
    /// # Errors
    ///
    /// [`StepError::Inconsistent`] when the choice closes a cycle: under
    /// TSO this rejects illegal bypass pairings (e.g. reading a stale local
    /// store), under speculation it triggers rollback. The behaviour must
    /// be discarded in that case.
    pub fn resolve_load(&mut self, load: NodeId, store: NodeId) -> Result<(), StepError> {
        let start = self.obs.as_ref().map(|_| Instant::now());
        let result = self.resolve_load_inner(load, store);
        if let (Some(t), Some(o)) = (start, &self.obs) {
            // Includes the closure time of the `enforce` call it makes.
            Obs::add(&o.resolve_nanos, t.elapsed().as_nanos() as u64);
        }
        result
    }

    fn resolve_load_inner(&mut self, load: NodeId, store: NodeId) -> Result<(), StepError> {
        // Deferred bypass pairs targeting this load. The paper states the
        // TSO rule as "S ⊀ L when S = source(L) and S ≺ L otherwise", but
        // taken literally that over-constrains TSO when the *bypassed*
        // store is not the oldest pending same-address store: an older
        // pending store S' is ordered before the source already (store
        // order) and drains after the forwarded load may have completed,
        // so S' ≺ L must NOT be imposed. We therefore order only
        //   * every aliased local store when the load reads memory (no
        //     bypass): the buffer must have drained first; and
        //   * stores *newer than the source* on a bypass: choosing a stale
        //     source is thereby rejected as a cycle.
        // The operational store-buffer machine in `samm-oper` is the
        // ground truth for this refinement (see the cross-validation
        // tests).
        let deferred: Vec<NodeId> = self
            .alias_pairs
            .iter()
            .filter(|p| p.bypass && p.second == load && p.state == AliasState::Aliased)
            .map(|p| p.first)
            .collect();
        let bypass = deferred.contains(&store);
        let source_index = self.graph.node(store).index_in_thread();
        for first in deferred {
            if first == store {
                continue;
            }
            if bypass && self.graph.node(first).index_in_thread() < source_index {
                // Older pending store: ordered before the source already.
                continue;
            }
            self.graph.add_edge(first, load, EdgeKind::Alias)?;
        }
        self.graph.set_source(load, store, bypass);
        let kind = if bypass {
            EdgeKind::Bypass
        } else {
            EdgeKind::Source
        };
        self.graph.add_edge(store, load, kind)?;
        atomicity::enforce_observed(&mut self.graph, self.obs.as_deref())?;
        Ok(())
    }
}

impl std::fmt::Display for Behavior {
    /// Renders the behaviour as a per-thread node listing with the
    /// resolved observations — a textual counterpart of the DOT output,
    /// handy in test failures and logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in 0..self.threads.len() {
            let state = &self.threads[t];
            writeln!(
                f,
                "thread {t}: pc={}{}{}",
                state.pc,
                if state.halted { " halted" } else { "" },
                if state.blocked_branch.is_some() {
                    " (blocked on branch)"
                } else {
                    ""
                }
            )?;
            for &id in &self.thread_nodes[t] {
                let n = self.graph.node(id);
                write!(f, "  {id}: {}", n.label())?;
                if let Some(src) = n.source() {
                    write!(
                        f,
                        " <- {}{}",
                        self.graph.node(src).label(),
                        if n.is_bypass_source() {
                            " (bypass)"
                        } else {
                            ""
                        }
                    )?;
                } else if n.is_load() && !n.is_resolved() {
                    write!(f, " (unresolved)")?;
                }
                writeln!(f)?;
            }
        }
        let inits: Vec<String> = self
            .init_map
            .values()
            .map(|&id| self.graph.node(id).label())
            .collect();
        if !inits.is_empty() {
            writeln!(f, "init: {}", inits.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, ThreadProgram};

    const X: u64 = 10;
    const Y: u64 = 11;

    fn addr_op(a: u64) -> Operand {
        Operand::Imm(Value::new(a))
    }

    fn store(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: addr_op(a),
            val: Operand::Imm(Value::new(v)),
        }
    }

    fn load(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: addr_op(a),
        }
    }

    #[test]
    fn single_thread_settles_and_resolves() {
        // S x,1 ; L x — the load's only candidate is the local store.
        let prog = Program::new(vec![ThreadProgram::new(vec![store(X, 1), load(0, X)])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        assert!(b.thread_halted(0));
        let loads = b.resolvable_loads();
        assert_eq!(loads.len(), 1);
        let c = b.candidates(loads[0]);
        assert_eq!(c.len(), 1, "init is overwritten by the local store");
        b.resolve_load(loads[0], c[0]).unwrap();
        assert!(b.is_complete());
        assert_eq!(b.register_value(0, Reg::new(0)), Some(Value::new(1)));
    }

    #[test]
    fn same_addr_store_load_edge_is_inserted() {
        let prog = Program::new(vec![ThreadProgram::new(vec![store(X, 1), load(0, X)])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let s = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_store() && !n.is_init())
            .unwrap()
            .0;
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        assert!(b.graph().precedes(s, l), "x != y entry fired");
    }

    #[test]
    fn different_addr_store_load_not_ordered_under_weak() {
        let prog = Program::new(vec![ThreadProgram::new(vec![store(X, 1), load(0, Y)])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let s = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_store() && !n.is_init())
            .unwrap()
            .0;
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        assert!(!b.graph().ordered(s, l));
    }

    #[test]
    fn sc_orders_everything_in_program_order() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            load(0, Y),
            store(Y, 2),
        ])]);
        let policy = Policy::sequential_consistency();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let mems: Vec<NodeId> = b
            .graph()
            .iter()
            .filter(|(_, n)| n.is_memory() && !n.is_init())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(mems.len(), 3);
        assert!(b.graph().precedes(mems[0], mems[1]));
        assert!(b.graph().precedes(mems[1], mems[2]));
    }

    #[test]
    fn fence_orders_memory_ops_under_weak() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            Instr::Fence,
            load(0, Y),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let s = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_store() && !n.is_init())
            .unwrap()
            .0;
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        assert!(b.graph().precedes(s, l), "ordered through the fence");
    }

    #[test]
    fn compute_nodes_fold_dataflow() {
        // r0 = 2 + 3; S x, r0; L x.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Binop {
                dst: Reg::new(0),
                op: BinOp::Add,
                lhs: 2u64.into(),
                rhs: 3u64.into(),
            },
            Instr::Store {
                addr: addr_op(X),
                val: Operand::Reg(Reg::new(0)),
            },
            load(1, X),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let loads = b.resolvable_loads();
        let c = b.candidates(loads[0]);
        assert_eq!(c.len(), 1);
        b.resolve_load(loads[0], c[0]).unwrap();
        assert_eq!(b.register_value(0, Reg::new(1)), Some(Value::new(5)));
    }

    #[test]
    fn branch_blocks_generation_until_condition_resolves() {
        // L x into r0; bnz r0 -> skip store; S y,1.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            load(0, X),
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            store(Y, 1),
        ])]);
        let mut prog = prog;
        prog.set_init(Addr::new(X), Value::new(1));
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        // The store after the branch must not have been generated yet.
        assert!(b.graph().stores_to(Addr::new(Y)).next().is_none());
        assert!(!b.thread_halted(0));
        // Resolve the load (init value 1) — the branch is taken, skipping
        // the store.
        let loads = b.resolvable_loads();
        let c = b.candidates(loads[0]);
        assert_eq!(c.len(), 1);
        b.resolve_load(loads[0], c[0]).unwrap();
        b.settle(&prog, &policy, 64).unwrap();
        assert!(b.thread_halted(0));
        assert!(b.graph().stores_to(Addr::new(Y)).next().is_none());
        assert!(b.is_complete());
    }

    #[test]
    fn untaken_branch_falls_through() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::BranchNz {
                cond: Operand::Imm(Value::ZERO),
                target: 2,
            },
            store(Y, 1),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        assert!(b.thread_halted(0));
        let program_stores = b
            .graph()
            .stores_to(Addr::new(Y))
            .filter(|&id| !b.graph().node(id).is_init())
            .count();
        assert_eq!(program_stores, 1);
    }

    #[test]
    fn store_does_not_cross_branch() {
        // bnz 0 -> fallthrough; S y,1: branch ≺ store required.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::BranchNz {
                cond: Operand::Imm(Value::ZERO),
                target: 1,
            },
            store(Y, 1),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let branch = b
            .graph()
            .iter()
            .find(|(_, n)| matches!(n.detail(), NodeDetail::Branch { .. }))
            .unwrap()
            .0;
        let s = b.graph().stores_to(Addr::new(Y)).next().unwrap();
        assert!(b.graph().precedes(branch, s));
    }

    #[test]
    fn display_shows_threads_and_observations() {
        let prog = Program::new(vec![ThreadProgram::new(vec![store(X, 1), load(0, X)])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let before = b.to_string();
        assert!(before.contains("thread 0"));
        assert!(before.contains("(unresolved)"));
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        let c = b.candidates(l);
        b.resolve_load(l, c[0]).unwrap();
        let after = b.to_string();
        assert!(after.contains("<-"), "observation rendered: {after}");
        assert!(after.contains("init"));
    }

    #[test]
    fn combined_constraint_takes_the_strongest_facet() {
        use crate::policy::OpClass::{Load, Store};
        let tso = Policy::tso();
        // (Store, RMW) under TSO: store->load is Bypass but store->store is
        // Never, so the pair is Never.
        assert_eq!(
            tso.combined_constraint(&[Store], &[Load, Store]),
            Constraint::Never
        );
        let weak = Policy::weak();
        // (Store, RMW) under the weak model: both facets say "same addr".
        assert_eq!(
            weak.combined_constraint(&[Store], &[Load, Store]),
            Constraint::SameAddr
        );
        // (Load, Load) stays free under the weak model.
        assert_eq!(weak.combined_constraint(&[Load], &[Load]), Constraint::Free);
    }

    #[test]
    fn node_limit_stops_infinite_loops() {
        // jmp 0 — no nodes, pure control loop.
        let prog = Program::new(vec![ThreadProgram::new(vec![Instr::Jump { target: 0 }])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        let err = b.settle(&prog, &policy, 8).unwrap_err();
        assert!(matches!(err, StepError::NodeLimit { thread: 0, .. }));
    }

    #[test]
    fn node_limit_stops_store_loops() {
        // 0: S x,1 ; 1: jmp 0.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            Instr::Jump { target: 0 },
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        let err = b.settle(&prog, &policy, 8).unwrap_err();
        assert!(matches!(
            err,
            StepError::NodeLimit {
                thread: 0,
                limit: 8
            }
        ));
    }

    #[test]
    fn mov_renames_without_nodes() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Mov {
                dst: Reg::new(0),
                src: 7u64.into(),
            },
            Instr::Mov {
                dst: Reg::new(1),
                src: Operand::Reg(Reg::new(0)),
            },
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        assert!(b.graph().iter().all(|(_, n)| n.is_init()));
        assert_eq!(b.register_value(0, Reg::new(1)), Some(Value::new(7)));
    }

    #[test]
    fn init_entries_materialize_on_use() {
        let mut prog = Program::new(vec![ThreadProgram::new(vec![load(0, X)])]);
        prog.set_init(Addr::new(X), Value::new(9));
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let loads = b.resolvable_loads();
        let c = b.candidates(loads[0]);
        assert_eq!(c.len(), 1);
        b.resolve_load(loads[0], c[0]).unwrap();
        assert_eq!(b.register_value(0, Reg::new(0)), Some(Value::new(9)));
    }

    #[test]
    fn tso_bypass_pair_defers_ordering() {
        // TSO: S x,1 ; L x — resolving to the local store uses a bypass
        // (gray) edge, leaving the pair unordered in @.
        let prog = Program::new(vec![ThreadProgram::new(vec![store(X, 1), load(0, X)])]);
        let policy = Policy::tso();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let s = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_store() && !n.is_init())
            .unwrap()
            .0;
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        assert!(!b.graph().ordered(s, l), "bypass decision is deferred");
        // The pending bypass store does not overwrite init in @ yet, so both
        // appear as candidates; choosing init is rejected at resolution.
        let mut c = b.candidates(l);
        c.sort();
        assert_eq!(c.len(), 2);
        let init = c
            .iter()
            .copied()
            .find(|&id| b.graph().node(id).is_init())
            .unwrap();
        let mut wrong = b.clone();
        assert!(
            wrong.resolve_load(l, init).is_err(),
            "TSO forwarding is mandatory: reading init past a pending local store is rejected"
        );
        b.resolve_load(l, s).unwrap();
        assert!(b.graph().node(l).is_bypass_source());
        assert!(!b.graph().ordered(s, l), "gray edge stays out of @");
        assert_eq!(b.register_value(0, Reg::new(0)), Some(Value::new(1)));
    }

    #[test]
    fn rmw_node_has_both_facets() {
        // swap x,5 after S x,1: reads 1, writes 5; a later load reads 5.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            Instr::Rmw {
                dst: Reg::new(0),
                addr: addr_op(X),
                op: RmwOp::Swap,
                src: 5u64.into(),
            },
            load(1, X),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let rmw = b.graph().iter().find(|(_, n)| n.is_rmw()).unwrap().0;
        assert!(b.graph().node(rmw).is_load());
        assert!(
            !b.graph().node(rmw).is_store(),
            "unresolved RMW is not yet a store"
        );
        // Resolve the RMW (only candidate: the local store).
        let c = b.candidates(rmw);
        assert_eq!(c.len(), 1);
        b.resolve_load(rmw, c[0]).unwrap();
        assert!(
            b.graph().node(rmw).is_store(),
            "successful swap has a store facet"
        );
        assert_eq!(
            b.graph().node(rmw).value(),
            Some(Value::new(1)),
            "dst gets the old value"
        );
        assert_eq!(b.graph().node(rmw).stored_value(), Some(Value::new(5)));
        // The trailing load must observe the swap.
        b.settle(&prog, &policy, 64).unwrap();
        let l = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_load() && !n.is_rmw() && n.addr() == Some(Addr::new(X)))
            .unwrap()
            .0;
        let lc = b.candidates(l);
        assert_eq!(lc, vec![rmw], "the swap overwrote everything before it");
        b.resolve_load(l, rmw).unwrap();
        assert_eq!(b.register_value(0, Reg::new(1)), Some(Value::new(5)));
    }

    #[test]
    fn failed_cas_performs_no_store() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            Instr::Rmw {
                dst: Reg::new(0),
                addr: addr_op(X),
                op: RmwOp::Cas {
                    expect: 7u64.into(), // never matches
                },
                src: 9u64.into(),
            },
            load(1, X),
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let rmw = b.graph().iter().find(|(_, n)| n.is_rmw()).unwrap().0;
        let c = b.candidates(rmw);
        b.resolve_load(rmw, c[0]).unwrap();
        let n = b.graph().node(rmw);
        assert_eq!(n.value(), Some(Value::new(1)));
        assert_eq!(n.stored_value(), None, "failed CAS writes nothing");
        assert!(!n.is_store());
        // The trailing load still sees the original store.
        b.settle(&prog, &policy, 64).unwrap();
        let l = b
            .graph()
            .iter()
            .find(|(_, n)| n.is_load() && !n.is_rmw() && n.addr() == Some(Addr::new(X)))
            .unwrap()
            .0;
        let lc = b.candidates(l);
        assert_eq!(lc.len(), 1, "only the original store remains");
        b.resolve_load(l, lc[0]).unwrap();
        assert_eq!(b.register_value(0, Reg::new(1)), Some(Value::new(1)));
    }

    #[test]
    fn fetch_add_accumulates() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Rmw {
                dst: Reg::new(0),
                addr: addr_op(X),
                op: RmwOp::FetchAdd,
                src: 3u64.into(),
            },
            Instr::Rmw {
                dst: Reg::new(1),
                addr: addr_op(X),
                op: RmwOp::FetchAdd,
                src: 4u64.into(),
            },
        ])]);
        let policy = Policy::weak();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        // First RMW reads init (0); the second must read 3.
        let rmws: Vec<NodeId> = b
            .graph()
            .iter()
            .filter(|(_, n)| n.is_rmw())
            .map(|(i, _)| i)
            .collect();
        let c0 = b.candidates(rmws[0]);
        assert_eq!(c0.len(), 1);
        b.resolve_load(rmws[0], c0[0]).unwrap();
        b.settle(&prog, &policy, 64).unwrap();
        let c1 = b.candidates(rmws[1]);
        assert_eq!(c1, vec![rmws[0]]);
        b.resolve_load(rmws[1], rmws[0]).unwrap();
        assert_eq!(b.register_value(0, Reg::new(0)), Some(Value::ZERO));
        assert_eq!(b.register_value(0, Reg::new(1)), Some(Value::new(3)));
        assert_eq!(b.graph().node(rmws[1]).stored_value(), Some(Value::new(7)));
    }

    #[test]
    fn competing_cas_forks_are_rejected_not_fatal() {
        use crate::enumerate::{enumerate, EnumConfig};
        // Two racing CAS(0 -> 1): exactly one winner in every model.
        let cas = |_: usize| {
            ThreadProgram::new(vec![Instr::Rmw {
                dst: Reg::new(0),
                addr: addr_op(X),
                op: RmwOp::Cas {
                    expect: 0u64.into(),
                },
                src: 1u64.into(),
            }])
        };
        let prog = Program::new(vec![cas(0), cas(1)]);
        for policy in [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::weak(),
        ] {
            let r = enumerate(&prog, &policy, &EnumConfig::default()).unwrap();
            assert_eq!(
                r.outcomes.len(),
                2,
                "exactly one winner under {}",
                policy.name()
            );
            assert!(
                !r.outcomes.any(|o| o.reg(0, Reg::new(0)) == Value::ZERO
                    && o.reg(1, Reg::new(0)) == Value::ZERO),
                "both-win must be impossible under {}",
                policy.name()
            );
        }
    }

    /// Regression: forwarding from the *newest* of several pending
    /// same-address stores must not order the *older* pending stores
    /// before the load — the paper's blanket "S ≺ L otherwise" rule would
    /// forbid this store-buffer-legal outcome (found by cross-validation
    /// against the operational TSO machine).
    #[test]
    fn tso_forwarding_skips_older_pending_stores() {
        use crate::enumerate::{enumerate, EnumConfig};
        let prog = Program::new(vec![
            ThreadProgram::new(vec![store(Y, 1), Instr::Fence, load(0, X), load(1, X)]),
            ThreadProgram::new(vec![store(X, 2), store(X, 3), load(0, X), load(1, Y)]),
        ]);
        let r = enumerate(&prog, &Policy::tso(), &EnumConfig::default()).unwrap();
        // T1 forwards 3 from its buffer and reads y before T0's store
        // drains, while T0 reads x before T1's buffer drains.
        let target = crate::outcome::Outcome::new(vec![
            vec![Value::ZERO, Value::ZERO],
            vec![Value::new(3), Value::ZERO],
        ]);
        assert!(
            r.outcomes.contains(&target),
            "store-buffer-legal outcome must be enumerated:\n{}",
            r.outcomes
        );
    }

    #[test]
    fn tso_rejects_stale_local_store() {
        // TSO: S x,1 ; S x,2 ; L x — the load may bypass only the *newest*
        // local store; choosing the stale one must be rejected as a cycle.
        let prog = Program::new(vec![ThreadProgram::new(vec![
            store(X, 1),
            store(X, 2),
            load(0, X),
        ])]);
        let policy = Policy::tso();
        let mut b = Behavior::new(&prog);
        b.settle(&prog, &policy, 64).unwrap();
        let stores: Vec<NodeId> = b
            .graph()
            .iter()
            .filter(|(_, n)| n.is_store() && !n.is_init())
            .map(|(id, _)| id)
            .collect();
        let l = b.graph().iter().find(|(_, n)| n.is_load()).unwrap().0;
        let mut fresh = b.clone();
        assert!(
            fresh.resolve_load(l, stores[1]).is_ok(),
            "newest store bypasses"
        );
        let mut stale = b.clone();
        assert!(
            stale.resolve_load(l, stores[0]).is_err(),
            "stale local store must be rejected"
        );
    }
}
