//! Final program outcomes: the register files at halt.
//!
//! A litmus test's verdict is phrased over final register values ("r8 =
//! L8 y = 2"), so the enumerator summarizes every complete behaviour as an
//! [`Outcome`] and collects them into an [`OutcomeSet`]. Two behaviours with
//! different execution graphs may produce the same outcome; the outcome set
//! is what operational reference models (interleaving SC, store-buffer TSO)
//! can be compared against.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::{Reg, Value};

/// The final register file of every thread, `regs[thread][reg]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Outcome {
    regs: Vec<Vec<Value>>,
}

impl Outcome {
    /// Creates an outcome from per-thread register files.
    pub fn new(regs: Vec<Vec<Value>>) -> Self {
        Outcome { regs }
    }

    /// The value of `reg` in `thread` (zero for never-written registers
    /// beyond the recorded file).
    pub fn reg(&self, thread: usize, reg: Reg) -> Value {
        self.regs
            .get(thread)
            .and_then(|file| file.get(reg.index()))
            .copied()
            .unwrap_or(Value::ZERO)
    }

    /// Number of threads recorded.
    pub fn thread_count(&self) -> usize {
        self.regs.len()
    }

    /// The register file of one thread.
    pub fn thread_regs(&self, thread: usize) -> &[Value] {
        self.regs.get(thread).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, file) in self.regs.iter().enumerate() {
            if t > 0 {
                write!(f, " | ")?;
            }
            write!(f, "T{t}:")?;
            if file.is_empty() {
                write!(f, " -")?;
            }
            for (r, v) in file.iter().enumerate() {
                write!(f, " r{r}={v}")?;
            }
        }
        Ok(())
    }
}

/// A set of distinct outcomes, ordered for stable display and comparison.
///
/// # Examples
///
/// ```
/// use samm_core::outcome::{Outcome, OutcomeSet};
/// use samm_core::ids::Value;
///
/// let mut set = OutcomeSet::new();
/// set.insert(Outcome::new(vec![vec![Value::new(1)]]));
/// set.insert(Outcome::new(vec![vec![Value::new(1)]]));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutcomeSet {
    set: BTreeSet<Outcome>,
}

impl OutcomeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        OutcomeSet::default()
    }

    /// Inserts an outcome; returns `true` when it was new.
    pub fn insert(&mut self, outcome: Outcome) -> bool {
        self.set.insert(outcome)
    }

    /// Whether this exact outcome was observed.
    pub fn contains(&self, outcome: &Outcome) -> bool {
        self.set.contains(outcome)
    }

    /// Number of distinct outcomes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` when no outcome was recorded.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates outcomes in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Outcome> {
        self.set.iter()
    }

    /// Returns `true` when every outcome in `self` also occurs in `other`
    /// (behaviour-set inclusion, e.g. `SC ⊆ TSO ⊆ Weak`).
    pub fn is_subset(&self, other: &OutcomeSet) -> bool {
        self.set.is_subset(&other.set)
    }

    /// Outcomes present in `self` but not in `other`.
    pub fn difference<'a>(&'a self, other: &'a OutcomeSet) -> impl Iterator<Item = &'a Outcome> {
        self.set.difference(&other.set)
    }

    /// Whether any outcome satisfies `pred` (e.g. a litmus condition).
    pub fn any(&self, pred: impl FnMut(&Outcome) -> bool) -> bool {
        self.set.iter().any(pred)
    }
}

impl FromIterator<Outcome> for OutcomeSet {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> Self {
        OutcomeSet {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<Outcome> for OutcomeSet {
    fn extend<I: IntoIterator<Item = Outcome>>(&mut self, iter: I) {
        self.set.extend(iter);
    }
}

impl<'a> IntoIterator for &'a OutcomeSet {
    type Item = &'a Outcome;
    type IntoIter = std::collections::btree_set::Iter<'a, Outcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.set.iter()
    }
}

impl fmt::Display for OutcomeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.set.is_empty() {
            return write!(f, "(no outcomes)");
        }
        for (i, o) in self.set.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Value {
        Value::new(x)
    }

    #[test]
    fn reg_lookup_defaults_to_zero() {
        let o = Outcome::new(vec![vec![v(7)]]);
        assert_eq!(o.reg(0, Reg::new(0)), v(7));
        assert_eq!(o.reg(0, Reg::new(5)), Value::ZERO);
        assert_eq!(o.reg(3, Reg::new(0)), Value::ZERO);
    }

    #[test]
    fn set_dedups_and_orders() {
        let mut s = OutcomeSet::new();
        assert!(s.insert(Outcome::new(vec![vec![v(2)]])));
        assert!(s.insert(Outcome::new(vec![vec![v(1)]])));
        assert!(!s.insert(Outcome::new(vec![vec![v(2)]])));
        assert_eq!(s.len(), 2);
        let firsts: Vec<Value> = s.iter().map(|o| o.reg(0, Reg::new(0))).collect();
        assert_eq!(firsts, vec![v(1), v(2)]);
    }

    #[test]
    fn subset_and_difference() {
        let small: OutcomeSet = [Outcome::new(vec![vec![v(1)]])].into_iter().collect();
        let big: OutcomeSet = [
            Outcome::new(vec![vec![v(1)]]),
            Outcome::new(vec![vec![v(2)]]),
        ]
        .into_iter()
        .collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        let diff: Vec<&Outcome> = big.difference(&small).collect();
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0].reg(0, Reg::new(0)), v(2));
    }

    #[test]
    fn display_forms() {
        let o = Outcome::new(vec![vec![v(1), v(0)], vec![]]);
        assert_eq!(o.to_string(), "T0: r0=1 r1=0 | T1: -");
        assert_eq!(OutcomeSet::new().to_string(), "(no outcomes)");
    }

    #[test]
    fn any_matches_conditions() {
        let s: OutcomeSet = [
            Outcome::new(vec![vec![v(0)]]),
            Outcome::new(vec![vec![v(3)]]),
        ]
        .into_iter()
        .collect();
        assert!(s.any(|o| o.reg(0, Reg::new(0)) == v(3)));
        assert!(!s.any(|o| o.reg(0, Reg::new(0)) == v(9)));
    }
}
