//! Content-addressed query fingerprints.
//!
//! A litmus *query* — "enumerate this program under this policy with this
//! configuration" — is pure: the answer depends only on the program text,
//! the reordering table, the speculation flag, and the handful of
//! [`EnumConfig`] switches that change the
//! reported statistics. [`query_fingerprint`] hashes a canonical byte
//! encoding of exactly those inputs into a stable 128-bit
//! [`Fingerprint`], the key of the result cache in [`crate::cache`] and
//! of the `samm-serve` service layer.
//!
//! Two queries share a fingerprint iff a cached answer for one is a
//! bit-identical answer for the other:
//!
//! * the **program** is encoded instruction by instruction (opcode tags,
//!   operand tags, raw register/address/value bits) plus the initial
//!   memory image — *not* via `Debug` output, so the encoding is stable
//!   across compiler versions and cosmetic refactors;
//! * the **policy** is encoded as its 25 constraint-table cells plus the
//!   alias-speculation flag. The display name is deliberately excluded:
//!   two differently-named policies with the same table allow the same
//!   behaviours;
//! * of the **configuration**, only `dedup`, `observe`,
//!   `max_behaviors` and `max_nodes_per_thread` participate. `dedup`
//!   and `observe` change the reported statistics (explored/deduped
//!   counts, presence of [`ObsStats`](crate::obs::ObsStats)); the two
//!   limits are included conservatively. `parallelism` and
//!   `keep_executions` never change a successful answer, and `budget`
//!   is a per-request fuel allowance, not part of the answer — a cache
//!   hit costs no fuel (see [`crate::cache`]).
//!
//! The hash is FNV-1a/128 over the tagged encoding, prefixed with a
//! format version so persisted caches self-invalidate when the encoding
//! changes.

use std::fmt;

use crate::enumerate::EnumConfig;
use crate::instr::{BinOp, Instr, Operand, Program, RmwOp};
use crate::policy::{Constraint, Policy};

/// Bumped whenever the canonical encoding changes; persisted cache
/// entries carry it implicitly through their fingerprints.
pub const FINGERPRINT_VERSION: u8 = 1;

/// A stable 128-bit content hash of a litmus query.
///
/// Displayed (and parsed) as 32 lowercase hex digits.
///
/// # Examples
///
/// ```
/// use samm_core::fingerprint::{query_fingerprint, Fingerprint};
/// use samm_core::enumerate::EnumConfig;
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::Reg;
/// use samm_core::policy::Policy;
///
/// let t = |a: u64, b: u64| ThreadProgram::new(vec![
///     Instr::Store { addr: a.into(), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: b.into() },
/// ]);
/// let sb = Program::new(vec![t(0, 1), t(1, 0)]);
/// let config = EnumConfig::default();
/// let weak = query_fingerprint(&sb, &Policy::weak(), &config);
/// let sc = query_fingerprint(&sb, &Policy::sequential_consistency(), &config);
/// assert_ne!(weak, sc);
/// let roundtrip = Fingerprint::from_hex(&weak.to_string()).unwrap();
/// assert_eq!(roundtrip, weak);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128 bits.
    #[inline]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw bits.
    #[inline]
    pub const fn from_raw(raw: u128) -> Self {
        Fingerprint(raw)
    }

    /// Parses the 32-hex-digit rendering produced by `Display`.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental FNV-1a/128 hasher over tagged bytes.
///
/// Exposed so callers with bespoke inputs (e.g. the service layer keying
/// on raw litmus source) can derive compatible fingerprints.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

const FNV_OFFSET_128: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME_128: u128 = 0x0000000001000000000000000000013b;

impl FingerprintHasher {
    /// A fresh hasher, seeded with [`FINGERPRINT_VERSION`].
    pub fn new() -> Self {
        let mut h = FingerprintHasher {
            state: FNV_OFFSET_128,
        };
        h.write_u8(FINGERPRINT_VERSION);
        h
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME_128);
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorbs a `usize` (widened to `u64` so 32- and 64-bit hosts
    /// agree).
    pub fn write_usize(&mut self, word: usize) {
        self.write_u64(word as u64);
    }

    /// Absorbs a length-prefixed byte string (self-delimiting, so
    /// adjacent fields cannot alias).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Finalizes the hash.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

fn write_operand(h: &mut FingerprintHasher, op: &Operand) {
    match op {
        Operand::Reg(r) => {
            h.write_u8(0);
            h.write_usize(r.index());
        }
        Operand::Imm(v) => {
            h.write_u8(1);
            h.write_u64(v.raw());
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::And => 3,
        BinOp::Or => 4,
        BinOp::Xor => 5,
        BinOp::Eq => 6,
        BinOp::Ne => 7,
        BinOp::Lt => 8,
    }
}

fn write_instr(h: &mut FingerprintHasher, instr: &Instr) {
    match instr {
        Instr::Mov { dst, src } => {
            h.write_u8(0);
            h.write_usize(dst.index());
            write_operand(h, src);
        }
        Instr::Binop { dst, op, lhs, rhs } => {
            h.write_u8(1);
            h.write_usize(dst.index());
            h.write_u8(binop_tag(*op));
            write_operand(h, lhs);
            write_operand(h, rhs);
        }
        Instr::Load { dst, addr } => {
            h.write_u8(2);
            h.write_usize(dst.index());
            write_operand(h, addr);
        }
        Instr::Store { addr, val } => {
            h.write_u8(3);
            write_operand(h, addr);
            write_operand(h, val);
        }
        Instr::Rmw { dst, addr, op, src } => {
            h.write_u8(4);
            h.write_usize(dst.index());
            write_operand(h, addr);
            match op {
                RmwOp::Swap => h.write_u8(0),
                RmwOp::FetchAdd => h.write_u8(1),
                RmwOp::Cas { expect } => {
                    h.write_u8(2);
                    write_operand(h, expect);
                }
            }
            write_operand(h, src);
        }
        Instr::Fence => h.write_u8(5),
        Instr::BranchNz { cond, target } => {
            h.write_u8(6);
            write_operand(h, cond);
            h.write_usize(*target);
        }
        Instr::Jump { target } => {
            h.write_u8(7);
            h.write_usize(*target);
        }
        Instr::Halt => h.write_u8(8),
    }
}

/// Absorbs a whole program: thread count, each thread's instruction
/// sequence, and the explicit initial-memory image (already normalized —
/// `BTreeMap` iteration is address-ordered).
pub fn write_program(h: &mut FingerprintHasher, program: &Program) {
    h.write_usize(program.threads().len());
    for thread in program.threads() {
        h.write_usize(thread.len());
        for instr in thread.instrs() {
            write_instr(h, instr);
        }
    }
    let init: Vec<_> = program.init_entries().collect();
    h.write_usize(init.len());
    for (addr, value) in init {
        h.write_u64(addr.raw());
        h.write_u64(value.raw());
    }
}

fn constraint_tag(c: Constraint) -> u8 {
    match c {
        Constraint::Free => 0,
        Constraint::DataOnly => 1,
        Constraint::Never => 2,
        Constraint::SameAddr => 3,
        Constraint::Bypass => 4,
    }
}

/// Absorbs a policy: the 25 table cells in row-major [`OpClass::ALL`]
/// order plus the alias-speculation flag. The display name is excluded
/// (see the module docs).
///
/// [`OpClass::ALL`]: crate::policy::OpClass::ALL
pub fn write_policy(h: &mut FingerprintHasher, policy: &Policy) {
    for (_, _, constraint) in policy.table().cells() {
        h.write_u8(constraint_tag(constraint));
    }
    h.write_u8(u8::from(policy.alias_speculation()));
}

/// Absorbs the answer-relevant [`EnumConfig`] fields (see the module
/// docs for which fields participate and why).
pub fn write_config(h: &mut FingerprintHasher, config: &EnumConfig) {
    h.write_u8(u8::from(config.dedup));
    h.write_u8(u8::from(config.observe));
    h.write_usize(config.max_behaviors);
    h.write_u64(u64::from(config.max_nodes_per_thread));
}

/// The content fingerprint of one enumeration query.
///
/// Stable across processes, platforms and (modulo
/// [`FINGERPRINT_VERSION`] bumps) releases.
pub fn query_fingerprint(program: &Program, policy: &Policy, config: &EnumConfig) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    write_program(&mut h, program);
    write_policy(&mut h, policy);
    write_config(&mut h, config);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::instr::{Program, ThreadProgram};

    fn sb() -> Program {
        let t = |a: u64, b: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: a.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: b.into(),
                },
            ])
        };
        Program::new(vec![t(0, 1), t(1, 0)])
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let config = EnumConfig::default();
        let a = query_fingerprint(&sb(), &Policy::weak(), &config);
        let b = query_fingerprint(&sb(), &Policy::weak(), &config);
        assert_eq!(a, b);
    }

    #[test]
    fn program_changes_change_the_fingerprint() {
        let config = EnumConfig::default();
        let base = query_fingerprint(&sb(), &Policy::weak(), &config);
        let mut mutated = sb();
        mutated.set_init(crate::ids::Addr::new(0), crate::ids::Value::new(9));
        assert_ne!(base, query_fingerprint(&mutated, &Policy::weak(), &config));
        let reordered = {
            let t = |a: u64, b: u64| {
                ThreadProgram::new(vec![
                    Instr::Load {
                        dst: Reg::new(0),
                        addr: b.into(),
                    },
                    Instr::Store {
                        addr: a.into(),
                        val: 1u64.into(),
                    },
                ])
            };
            Program::new(vec![t(0, 1), t(1, 0)])
        };
        assert_ne!(
            base,
            query_fingerprint(&reordered, &Policy::weak(), &config)
        );
    }

    #[test]
    fn policy_table_matters_but_name_does_not() {
        let config = EnumConfig::default();
        let weak = query_fingerprint(&sb(), &Policy::weak(), &config);
        let sc = query_fingerprint(&sb(), &Policy::sequential_consistency(), &config);
        assert_ne!(weak, sc);
        let renamed = Policy::custom("NotWeak", *Policy::weak().table());
        assert_eq!(
            weak,
            query_fingerprint(&sb(), &renamed, &config),
            "the display name must not affect the content address"
        );
        let spec = Policy::weak().with_alias_speculation(true);
        assert_ne!(weak, query_fingerprint(&sb(), &spec, &config));
    }

    #[test]
    fn answer_irrelevant_config_fields_are_excluded() {
        let base = EnumConfig::default();
        let fp = query_fingerprint(&sb(), &Policy::weak(), &base);
        let mut same = base.clone();
        same.parallelism = 7;
        same.keep_executions = !base.keep_executions;
        same.budget = Some(42);
        assert_eq!(fp, query_fingerprint(&sb(), &Policy::weak(), &same));
        let mut diff = base.clone();
        diff.observe = true;
        assert_ne!(fp, query_fingerprint(&sb(), &Policy::weak(), &diff));
        let mut diff = base.clone();
        diff.dedup = false;
        assert_ne!(fp, query_fingerprint(&sb(), &Policy::weak(), &diff));
        let mut diff = base;
        diff.max_nodes_per_thread = 8;
        assert_ne!(fp, query_fingerprint(&sb(), &Policy::weak(), &diff));
    }

    #[test]
    fn hex_round_trip() {
        let fp = query_fingerprint(&sb(), &Policy::tso(), &EnumConfig::default());
        let hex = fp.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..31]), None);
    }

    #[test]
    fn length_prefixing_prevents_field_aliasing() {
        // One thread of [S;S] must differ from two threads of [S] each.
        let store = Instr::Store {
            addr: 0u64.into(),
            val: 1u64.into(),
        };
        let one = Program::new(vec![ThreadProgram::new(vec![store, store])]);
        let two = Program::new(vec![
            ThreadProgram::new(vec![store]),
            ThreadProgram::new(vec![store]),
        ]);
        let config = EnumConfig::default();
        assert_ne!(
            query_fingerprint(&one, &Policy::weak(), &config),
            query_fingerprint(&two, &Policy::weak(), &config)
        );
    }
}
