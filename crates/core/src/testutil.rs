//! Shared helpers for unit tests that build execution graphs by hand.
//!
//! Only compiled for tests. The helpers create already-resolved stores and
//! address-resolved loads with constant inputs, mirroring the node shapes
//! the figures of the paper use.

use crate::graph::{EdgeKind, ExecutionGraph, Input, NodeDetail};
use crate::ids::{Addr, NodeId, Reg, ThreadId, Value};

/// Adds a resolved store `S addr,val` on thread `t` at issue index `i`.
pub(crate) fn mk_store(g: &mut ExecutionGraph, t: usize, i: u32, addr: u64, val: u64) -> NodeId {
    let id = g.add_node(
        ThreadId::new(t),
        i,
        NodeDetail::Store {
            addr_in: Input::Const(Value::new(addr)),
            val_in: Input::Const(Value::new(val)),
        },
    );
    g.set_addr(id, Addr::new(addr));
    g.set_value(id, Value::new(val));
    g.mark_resolved(id);
    id
}

/// Adds an unresolved load `L addr` on thread `t` at issue index `i`.
pub(crate) fn mk_load(g: &mut ExecutionGraph, t: usize, i: u32, addr: u64) -> NodeId {
    let id = g.add_node(
        ThreadId::new(t),
        i,
        NodeDetail::Load {
            addr_in: Input::Const(Value::new(addr)),
            dst: Reg::new(0),
        },
    );
    g.set_addr(id, Addr::new(addr));
    id
}

/// Adds an init store for `addr` ordered before every existing node.
pub(crate) fn mk_init(g: &mut ExecutionGraph, index: u32, addr: u64, val: u64) -> NodeId {
    let id = g.add_init_store(index, Addr::new(addr), Value::new(val));
    let others: Vec<NodeId> = g
        .iter()
        .filter(|(other, n)| *other != id && !n.is_init())
        .map(|(other, _)| other)
        .collect();
    for other in others {
        g.add_edge(id, other, EdgeKind::Init).expect("init edge");
    }
    id
}

/// Adds a local-ordering edge `a ≺ b`.
pub(crate) fn order(g: &mut ExecutionGraph, a: NodeId, b: NodeId) {
    g.add_edge(a, b, EdgeKind::Program).expect("program edge");
}

/// Resolves `load` against `source` with an observation edge.
pub(crate) fn observe(g: &mut ExecutionGraph, source: NodeId, load: NodeId) {
    g.set_source(load, source, false);
    g.add_edge(source, load, EdgeKind::Source)
        .expect("source edge");
}
