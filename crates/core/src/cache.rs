//! A content-addressed cache of enumeration answers.
//!
//! Enumeration is pure — the answer to a query is fully determined by its
//! [`Fingerprint`] — so results can be memoized across calls, binaries,
//! and (via the optional file persistence) processes. [`EnumCache`] is a
//! sharded in-memory LRU keyed by fingerprint; the litmus harness, the
//! CLI sweeps, and the `samm-serve` service all consult one instance so a
//! repeated query costs a hash and a map probe instead of a fresh
//! enumeration.
//!
//! What is cached is a [`CachedResult`]: the outcome set plus the
//! *deterministic* statistics of the run. Kept executions are never
//! cached (they are large, and callers that need graphs re-enumerate),
//! and scheduling-dependent counters (`workers`, `steals`,
//! `shard_contention`, `idle_wakeups`, observation timings) are zeroed on
//! insert so a hit returns the same bytes whichever engine produced it.
//!
//! Budget interaction: a cache hit consumes no fork fuel. The cached
//! answer is the *complete* answer, so serving it under a small
//! [`EnumConfig::budget`](crate::enumerate::EnumConfig) is strictly
//! better than re-running and failing with
//! [`EnumError::Overbudget`](crate::error::EnumError) — budgets bound
//! work, not answers (and are accordingly excluded from the
//! fingerprint).
//!
//! # Examples
//!
//! ```
//! use samm_core::cache::{cached_enumerate, EnumCache};
//! use samm_core::enumerate::{enumerate, EnumConfig};
//! use samm_core::instr::{Instr, Program, ThreadProgram};
//! use samm_core::ids::Reg;
//! use samm_core::policy::Policy;
//!
//! let t = |a: u64, b: u64| ThreadProgram::new(vec![
//!     Instr::Store { addr: a.into(), val: 1u64.into() },
//!     Instr::Load { dst: Reg::new(0), addr: b.into() },
//! ]);
//! let sb = Program::new(vec![t(0, 1), t(1, 0)]);
//! let cache = EnumCache::new(1024);
//! let config = EnumConfig::default();
//!
//! let (cold, hit) = cached_enumerate(&cache, &sb, &Policy::weak(), &config, enumerate).unwrap();
//! assert!(!hit);
//! let (warm, hit) = cached_enumerate(&cache, &sb, &Policy::weak(), &config, enumerate).unwrap();
//! assert!(hit);
//! assert_eq!(warm, cold);
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::enumerate::{EnumConfig, EnumResult, EnumStats};
use crate::error::EnumError;
use crate::fingerprint::{query_fingerprint, Fingerprint};
use crate::ids::Value;
use crate::instr::Program;
use crate::outcome::{Outcome, OutcomeSet};
use crate::policy::Policy;

/// The memoized answer to one enumeration query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Every distinct final outcome of the program under the policy.
    pub outcomes: OutcomeSet,
    /// Deterministic run statistics (scheduling-dependent counters and
    /// wall-clock timings zeroed; see the module docs).
    pub stats: EnumStats,
}

impl CachedResult {
    /// Extracts the cacheable part of an [`EnumResult`], normalizing the
    /// statistics to their deterministic subset.
    pub fn from_result(result: &EnumResult) -> Self {
        let mut stats = result.stats;
        stats.workers = 0;
        stats.steals = 0;
        stats.shard_contention = 0;
        stats.idle_wakeups = 0;
        stats.obs = stats.obs.map(|o| o.counters());
        CachedResult {
            outcomes: result.outcomes.clone(),
            stats,
        }
    }

    /// Number of distinct complete executions behind the outcome set.
    pub fn distinct_executions(&self) -> usize {
        self.stats.distinct_executions
    }
}

/// One LRU shard: fingerprint → (last-touch stamp, answer).
struct Shard {
    entries: HashMap<u128, (u64, CachedResult)>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: u128) -> Option<CachedResult> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|slot| {
            slot.0 = clock;
            slot.1.clone()
        })
    }

    /// Inserts, evicting the least-recently-touched entry when the shard
    /// is at `capacity`. Returns `true` when an eviction happened.
    fn insert(&mut self, key: u128, value: CachedResult, capacity: usize) -> bool {
        self.clock += 1;
        let mut evicted = false;
        if !self.entries.contains_key(&key) && self.entries.len() >= capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.entries.remove(&victim);
                evicted = true;
            }
        }
        self.entries.insert(key, (self.clock, value));
        evicted
    }
}

/// Point-in-time cache counters, rendered into `samm-serve`'s `metrics`
/// response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted (including re-insertions over an existing key).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of lookups (`0.0` when there were none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Renders the counters as a JSON object (hand-rolled; no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{},\
             \"entries\":{},\"hit_rate\":{:.4}}}",
            self.hits,
            self.misses,
            self.evictions,
            self.insertions,
            self.entries,
            self.hit_rate(),
        )
    }
}

/// Point-in-time counters of one cache shard, for the per-shard
/// Prometheus labels of the serving tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries resident in this shard.
    pub entries: usize,
    /// Lookups answered by this shard.
    pub hits: u64,
    /// Lookups that missed in this shard.
    pub misses: u64,
}

/// A sharded, thread-safe LRU cache of enumeration answers.
///
/// Lookups hash the [`Fingerprint`] to one of the mutex-protected shards,
/// so concurrent service workers rarely contend. Capacity is enforced
/// per shard with least-recently-used eviction.
pub struct EnumCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    shard_hits: Vec<AtomicU64>,
    shard_misses: Vec<AtomicU64>,
}

impl std::fmt::Debug for EnumCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnumCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

const DEFAULT_SHARDS: usize = 16;

impl EnumCache {
    /// A cache holding roughly `capacity` entries across
    /// [`DEFAULT_SHARDS`](Self::with_shards) shards.
    pub fn new(capacity: usize) -> Self {
        EnumCache::with_shards(DEFAULT_SHARDS, capacity.div_ceil(DEFAULT_SHARDS).max(1))
    }

    /// A cache with an explicit geometry: `shard_count` shards of
    /// `capacity_per_shard` entries each. A single shard gives exact
    /// global LRU order (useful in tests).
    pub fn with_shards(shard_count: usize, capacity_per_shard: usize) -> Self {
        let shard_count = shard_count.max(1);
        EnumCache {
            shards: (0..shard_count)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            shard_hits: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            shard_misses: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn shard_index(&self, fp: Fingerprint) -> usize {
        // The fingerprint is already a high-quality hash; fold the high
        // half in so shard choice uses all 128 bits.
        let raw = fp.raw();
        ((raw >> 64) ^ raw) as usize % self.shards.len()
    }

    fn shard_of(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[self.shard_index(fp)]
    }

    /// Looks up an answer, refreshing its LRU stamp on a hit.
    pub fn get(&self, fp: Fingerprint) -> Option<CachedResult> {
        let idx = self.shard_index(fp);
        let found = self.shards[idx]
            .lock()
            .expect("cache shard poisoned")
            .touch(fp.raw());
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.shard_hits[idx].fetch_add(1, Ordering::Relaxed)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.shard_misses[idx].fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Inserts (or replaces) an answer.
    pub fn insert(&self, fp: Fingerprint, value: CachedResult) {
        let evicted = self
            .shard_of(fp)
            .lock()
            .expect("cache shard poisoned")
            .insert(fp.raw(), value, self.capacity_per_shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes one entry; returns `true` when it was present.
    pub fn invalidate(&self, fp: Fingerprint) -> bool {
        self.shard_of(fp)
            .lock()
            .expect("cache shard poisoned")
            .entries
            .remove(&fp.raw())
            .is_some()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").entries.clear();
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Returns `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `fp` is resident, without counting a hit/miss or
    /// refreshing LRU recency — the cluster router's pre-check, which
    /// must not skew the cache statistics of queries it never answers.
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.shard_of(fp)
            .lock()
            .expect("cache shard poisoned")
            .entries
            .contains_key(&fp.raw())
    }

    /// Number of shards in this cache's geometry.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard counters, indexed by shard, for per-shard exposition
    /// labels. Hit/miss tallies are maintained per shard alongside the
    /// global counters, so the per-shard rows always sum to the totals.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                entries: shard.lock().expect("cache shard poisoned").entries.len(),
                hits: self.shard_hits[i].load(Ordering::Relaxed),
                misses: self.shard_misses[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Writes every resident entry to `path` in the line format described
    /// at [`EnumCache::load_from`], sorted by fingerprint for determinism.
    /// Returns the number of entries written.
    ///
    /// The write is atomic: entries are written to a sibling `.tmp` file,
    /// synced, and renamed over `path`, so a crash (or a kill mid-drain)
    /// never leaves a truncated cache file behind — the previous file
    /// survives intact until the rename commits the new one.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from creating, writing, syncing, or
    /// renaming the file; on failure the partially written temporary is
    /// removed best-effort and `path` is untouched.
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let path = path.as_ref();
        let mut rows: Vec<(u128, CachedResult)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            rows.extend(shard.entries.iter().map(|(&k, (_, v))| (k, v.clone())));
        }
        rows.sort_by_key(|(k, _)| *k);
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp: std::path::PathBuf = tmp_name.into();
        let write_all = || -> std::io::Result<()> {
            let mut out = BufWriter::new(std::fs::File::create(&tmp)?);
            for (key, value) in &rows {
                writeln!(
                    out,
                    "{}|{}|{}|{}|{}",
                    PERSIST_VERSION,
                    Fingerprint::from_raw(*key),
                    encode_stats(&value.stats),
                    encode_obs(&value.stats),
                    encode_outcomes(&value.outcomes),
                )?;
            }
            out.flush()?;
            out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp, path)
        };
        write_all().inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(rows.len())
    }

    /// Loads entries persisted by [`EnumCache::save_to`], skipping (and
    /// counting separately) lines that fail to parse — a corrupt or
    /// version-skewed file degrades to a cold cache, never a wrong
    /// answer. Returns `(loaded, skipped)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or reading the file.
    pub fn load_from(&self, path: impl AsRef<Path>) -> std::io::Result<(usize, usize)> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut loaded = 0usize;
        let mut skipped = 0usize;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(&line) {
                Some((fp, value)) => {
                    self.insert(fp, value);
                    loaded += 1;
                }
                None => skipped += 1,
            }
        }
        Ok((loaded, skipped))
    }
}

/// Version tag of the persistence line format.
const PERSIST_VERSION: u32 = 1;

fn encode_stats(stats: &EnumStats) -> String {
    format!(
        "{},{},{},{},{},{}",
        stats.explored,
        stats.forks,
        stats.deduped,
        stats.rolled_back,
        stats.distinct_executions,
        stats.max_graph_nodes,
    )
}

fn encode_obs(stats: &EnumStats) -> String {
    match &stats.obs {
        None => "-".to_owned(),
        Some(o) => format!(
            "{},{},{},{},{},{}",
            o.rule_a, o.rule_b, o.rule_c, o.closure_rounds, o.candidate_calls, o.candidate_stores,
        ),
    }
}

/// Outcomes separated by `;`; within an outcome, threads separated by
/// `/`; within a thread, register values comma-separated.
fn encode_outcomes(outcomes: &OutcomeSet) -> String {
    outcomes
        .iter()
        .map(|o| {
            (0..o.thread_count())
                .map(|t| {
                    o.thread_regs(t)
                        .iter()
                        .map(|v| v.raw().to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_fixed<const N: usize>(field: &str) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    let mut parts = field.split(',');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    parts.next().is_none().then_some(out)
}

fn parse_line(line: &str) -> Option<(Fingerprint, CachedResult)> {
    let mut fields = line.splitn(5, '|');
    let version: u32 = fields.next()?.parse().ok()?;
    if version != PERSIST_VERSION {
        return None;
    }
    let fp = Fingerprint::from_hex(fields.next()?)?;
    let [explored, forks, deduped, rolled_back, distinct_executions, max_graph_nodes] =
        parse_fixed::<6>(fields.next()?)?;
    let obs_field = fields.next()?;
    let obs = if obs_field == "-" {
        None
    } else {
        let [rule_a, rule_b, rule_c, closure_rounds, candidate_calls, candidate_stores] =
            parse_fixed::<6>(obs_field)?;
        Some(crate::obs::ObsStats {
            rule_a,
            rule_b,
            rule_c,
            closure_rounds,
            candidate_calls,
            candidate_stores,
            closure_nanos: 0,
            settle_nanos: 0,
            resolve_nanos: 0,
        })
    };
    let outcomes_field = fields.next()?;
    let mut outcomes = OutcomeSet::default();
    if !outcomes_field.is_empty() {
        for enc in outcomes_field.split(';') {
            let regs: Option<Vec<Vec<Value>>> = enc
                .split('/')
                .map(|thread| {
                    if thread.is_empty() {
                        Some(Vec::new())
                    } else {
                        thread
                            .split(',')
                            .map(|v| v.parse().ok().map(Value::new))
                            .collect()
                    }
                })
                .collect();
            outcomes.insert(Outcome::new(regs?));
        }
    }
    let stats = EnumStats {
        explored: explored as usize,
        forks: forks as usize,
        deduped: deduped as usize,
        rolled_back: rolled_back as usize,
        distinct_executions: distinct_executions as usize,
        max_graph_nodes: max_graph_nodes as usize,
        workers: 0,
        steals: 0,
        shard_contention: 0,
        idle_wakeups: 0,
        obs,
    };
    Some((fp, CachedResult { outcomes, stats }))
}

/// Runs `engine` through the cache: on a hit the memoized answer is
/// returned without enumerating; on a miss the engine runs (with
/// `keep_executions` forced off — executions are never cached) and the
/// normalized answer is inserted. The boolean is `true` on a hit.
///
/// Errors are **not** cached: a query that fails (over budget, node
/// limit, ...) is retried fresh on the next call, so raising the budget
/// or the limits immediately takes effect.
///
/// # Errors
///
/// Whatever `engine` returns on a miss.
pub fn cached_enumerate(
    cache: &EnumCache,
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    engine: impl FnOnce(&Program, &Policy, &EnumConfig) -> Result<EnumResult, EnumError>,
) -> Result<(CachedResult, bool), EnumError> {
    let fp = query_fingerprint(program, policy, config);
    if let Some(hit) = cache.get(fp) {
        return Ok((hit, true));
    }
    let run_config = EnumConfig {
        keep_executions: false,
        ..config.clone()
    };
    let result = engine(program, policy, &run_config)?;
    let value = CachedResult::from_result(&result);
    cache.insert(fp, value.clone());
    Ok((value, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate;
    use crate::ids::{Addr, Reg};
    use crate::instr::{Instr, ThreadProgram};
    use crate::parallel::enumerate_parallel;

    fn sb() -> Program {
        let t = |a: u64, b: u64| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: a.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: b.into(),
                },
            ])
        };
        Program::new(vec![t(0, 1), t(1, 0)])
    }

    #[test]
    fn hit_returns_the_memoized_answer() {
        let cache = EnumCache::new(64);
        let config = EnumConfig::default();
        let (cold, hit) =
            cached_enumerate(&cache, &sb(), &Policy::weak(), &config, enumerate).unwrap();
        assert!(!hit);
        assert_eq!(cold.outcomes.len(), 4);
        let (warm, hit) =
            cached_enumerate(&cache, &sb(), &Policy::weak(), &config, enumerate).unwrap();
        assert!(hit);
        assert_eq!(warm, cold);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serial_and_parallel_engines_fill_identical_entries() {
        let config = EnumConfig::builder().parallelism(4).build();
        let serial_cache = EnumCache::new(64);
        let parallel_cache = EnumCache::new(64);
        let (from_serial, _) =
            cached_enumerate(&serial_cache, &sb(), &Policy::weak(), &config, enumerate).unwrap();
        let (from_parallel, _) = cached_enumerate(
            &parallel_cache,
            &sb(),
            &Policy::weak(),
            &config,
            enumerate_parallel,
        )
        .unwrap();
        assert_eq!(
            from_serial, from_parallel,
            "normalization must erase the engine"
        );
    }

    #[test]
    fn mutated_ast_never_hits_the_stale_entry() {
        let cache = EnumCache::new(64);
        let config = EnumConfig::default();
        let (_, hit) =
            cached_enumerate(&cache, &sb(), &Policy::weak(), &config, enumerate).unwrap();
        assert!(!hit);
        // Poison scenario: the program changes underneath the cache. The
        // mutated AST has a different fingerprint, so the stale entry is
        // unreachable and a fresh enumeration runs.
        let mut mutated = sb();
        mutated.set_init(Addr::new(1), Value::new(1));
        let (fresh, hit) =
            cached_enumerate(&cache, &mutated, &Policy::weak(), &config, enumerate).unwrap();
        assert!(
            !hit,
            "a mutated program must not be served the stale answer"
        );
        // With y initially 1, thread 0's load can read 1 even before
        // thread 1's store: the answer genuinely differs.
        let (stale, _) =
            cached_enumerate(&cache, &sb(), &Policy::weak(), &config, enumerate).unwrap();
        assert_ne!(fresh.outcomes, stale.outcomes);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        // One shard of two entries gives exact global LRU order.
        let cache = EnumCache::with_shards(1, 2);
        let value = CachedResult {
            outcomes: OutcomeSet::default(),
            stats: EnumStats::default(),
        };
        let fp = |n: u128| Fingerprint::from_raw(n);
        cache.insert(fp(1), value.clone());
        cache.insert(fp(2), value.clone());
        assert!(cache.get(fp(1)).is_some()); // refresh 1; 2 is now LRU
        cache.insert(fp(3), value.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(fp(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.invalidate(fp(3)));
        assert!(!cache.invalidate(fp(3)));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn persistence_round_trips() {
        let dir = std::env::temp_dir().join("samm-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.cache", std::process::id()));

        let cache = EnumCache::new(64);
        let config = EnumConfig::default();
        let observed = EnumConfig::builder().observe(true).build();
        for policy in [Policy::weak(), Policy::tso()] {
            cached_enumerate(&cache, &sb(), &policy, &config, enumerate).unwrap();
            cached_enumerate(&cache, &sb(), &policy, &observed, enumerate).unwrap();
        }
        let written = cache.save_to(&path).unwrap();
        assert_eq!(written, 4);

        let restored = EnumCache::new(64);
        let (loaded, skipped) = restored.load_from(&path).unwrap();
        assert_eq!((loaded, skipped), (4, 0));
        for policy in [Policy::weak(), Policy::tso()] {
            for cfg in [&config, &observed] {
                let (value, hit) =
                    cached_enumerate(&restored, &sb(), &policy, cfg, enumerate).unwrap();
                assert!(hit, "persisted entry must hit after reload");
                let (direct, _) =
                    cached_enumerate(&EnumCache::new(8), &sb(), &policy, cfg, enumerate).unwrap();
                assert_eq!(value, direct);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_served() {
        let dir = std::env::temp_dir().join("samm-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corrupt-{}.cache", std::process::id()));
        let good = format!(
            "1|{}|1,2,0,0,1,6|-|0,1/1,0;1,1/0,0",
            Fingerprint::from_raw(42)
        );
        let body = format!(
            "{good}\nnot a cache line\n9|{}|1,2,0,0,1,6|-|\n\n",
            Fingerprint::from_raw(7)
        );
        std::fs::write(&path, body).unwrap();
        let cache = EnumCache::new(8);
        let (loaded, skipped) = cache.load_from(&path).unwrap();
        assert_eq!((loaded, skipped), (1, 2));
        let entry = cache.get(Fingerprint::from_raw(42)).unwrap();
        assert_eq!(entry.outcomes.len(), 2);
        assert_eq!(entry.distinct_executions(), 1);
        assert!(cache.get(Fingerprint::from_raw(7)).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("samm-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("atomic-{}.cache", std::process::id()));
        let tmp = dir.join(format!("atomic-{}.cache.tmp", std::process::id()));

        // A pre-existing file simulates the previous generation's state;
        // save_to must replace it wholesale, never append or truncate.
        std::fs::write(&path, "garbage from a previous run\n").unwrap();

        let cache = EnumCache::new(8);
        let value = CachedResult {
            outcomes: OutcomeSet::default(),
            stats: EnumStats::default(),
        };
        cache.insert(Fingerprint::from_raw(1), value.clone());
        cache.insert(Fingerprint::from_raw(2), value);
        assert_eq!(cache.save_to(&path).unwrap(), 2);
        assert!(!tmp.exists(), "temp file must be renamed away");

        let restored = EnumCache::new(8);
        let (loaded, skipped) = restored.load_from(&path).unwrap();
        assert_eq!((loaded, skipped), (2, 0), "old contents must be gone");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_stats_sum_to_the_global_counters() {
        let cache = EnumCache::with_shards(4, 16);
        let value = CachedResult {
            outcomes: OutcomeSet::default(),
            stats: EnumStats::default(),
        };
        for n in 0..10u128 {
            cache.insert(Fingerprint::from_raw(n), value.clone());
        }
        for n in 0..20u128 {
            cache.get(Fingerprint::from_raw(n));
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), cache.shard_count());
        let global = cache.stats();
        assert_eq!(
            per_shard.iter().map(|s| s.entries).sum::<usize>(),
            global.entries
        );
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), global.hits);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            global.misses
        );
        assert_eq!(global.hits, 10);
        assert_eq!(global.misses, 10);
    }
}
