//! Enumerating all behaviours of a program (paper section 4).
//!
//! "At each step, we remove a single behavior from B and refine it": run
//! graph generation and dataflow execution to quiescence, then fork one
//! copy per `(resolvable load, candidate store)` pair. Duplicate behaviours
//! (same Load-Store graph) are discarded; speculative or bypass forks that
//! violate Store Atomicity are rolled back.
//!
//! The result is the complete set of executions — and outcome set — of the
//! program under the chosen memory model.

use std::collections::HashSet;
use std::sync::Arc;

use crate::error::EnumError;
use crate::exec::{Behavior, StepError};
use crate::instr::Program;
use crate::obs::{Obs, ObsStats, PruneReason, TraceEvent, TraceSink};
use crate::outcome::OutcomeSet;
use crate::policy::Policy;

/// Resource limits and switches for [`enumerate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumConfig {
    /// Maximum number of behaviours popped from the frontier before the
    /// enumeration aborts with [`EnumError::BehaviorLimit`].
    pub max_behaviors: usize,
    /// Maximum graph nodes one thread may generate (bounds loop unrolling).
    pub max_nodes_per_thread: u32,
    /// Discard duplicate behaviours via the canonical Load-Store-graph key.
    /// Disabling this only costs time; the outcome set is unchanged.
    pub dedup: bool,
    /// Keep the complete [`Behavior`]s in the result (disable to save
    /// memory when only outcomes matter).
    pub keep_executions: bool,
    /// Worker threads for [`enumerate_parallel`](crate::parallel::enumerate_parallel):
    /// `1` runs the exact serial path on the calling thread, `0` means
    /// "auto" (resolved via [`std::thread::available_parallelism`], like
    /// the default). The serial [`enumerate`] ignores this field.
    pub parallelism: usize,
    /// Collect [`crate::obs`] instrumentation (closure-rule counters and
    /// per-phase timings) into [`EnumStats::obs`]. Off by default; when
    /// off every instrumentation site is a single null check (experiment
    /// E19 measures the overhead of both settings).
    pub observe: bool,
    /// Per-request fork fuel: the enumeration aborts with
    /// [`EnumError::Overbudget`] once it has attempted this many
    /// `(load, candidate)` forks. `None` (the default) means unlimited.
    /// Both the serial and the parallel engine honour the budget; the
    /// parallel engine counts forks globally across workers, so the
    /// abort point is scheduling-dependent but always within one batch
    /// of the limit.
    pub budget: Option<u64>,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            max_behaviors: 1_000_000,
            max_nodes_per_thread: 256,
            dedup: true,
            keep_executions: true,
            parallelism: default_parallelism(),
            observe: false,
            budget: None,
        }
    }
}

impl EnumConfig {
    /// Starts building a configuration from the defaults.
    ///
    /// # Examples
    ///
    /// ```
    /// use samm_core::enumerate::EnumConfig;
    /// let config = EnumConfig::builder()
    ///     .observe(true)
    ///     .parallelism(2)
    ///     .budget(10_000)
    ///     .build();
    /// assert!(config.observe);
    /// assert_eq!(config.parallelism, 2);
    /// assert_eq!(config.budget, Some(10_000));
    /// ```
    pub fn builder() -> EnumConfigBuilder {
        EnumConfigBuilder {
            config: EnumConfig::default(),
        }
    }
}

/// Builder for [`EnumConfig`], created by [`EnumConfig::builder`].
///
/// Prefer the builder over struct-literal updates at call sites: new
/// fields (like the fork budget) then flow through automatically instead
/// of being silently dropped by `..Default::default()` spreads.
#[derive(Debug, Clone)]
pub struct EnumConfigBuilder {
    config: EnumConfig,
}

impl EnumConfigBuilder {
    /// Sets [`EnumConfig::max_behaviors`].
    #[must_use]
    pub fn max_behaviors(mut self, limit: usize) -> Self {
        self.config.max_behaviors = limit;
        self
    }

    /// Sets [`EnumConfig::max_nodes_per_thread`].
    #[must_use]
    pub fn max_nodes_per_thread(mut self, limit: u32) -> Self {
        self.config.max_nodes_per_thread = limit;
        self
    }

    /// Sets [`EnumConfig::dedup`].
    #[must_use]
    pub fn dedup(mut self, enabled: bool) -> Self {
        self.config.dedup = enabled;
        self
    }

    /// Sets [`EnumConfig::keep_executions`].
    #[must_use]
    pub fn keep_executions(mut self, enabled: bool) -> Self {
        self.config.keep_executions = enabled;
        self
    }

    /// Sets [`EnumConfig::parallelism`] (`0` means "auto").
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.parallelism = workers;
        self
    }

    /// Sets [`EnumConfig::observe`].
    #[must_use]
    pub fn observe(mut self, enabled: bool) -> Self {
        self.config.observe = enabled;
        self
    }

    /// Sets [`EnumConfig::budget`] (fork fuel); accepts `u64` or
    /// `Option<u64>`.
    #[must_use]
    pub fn budget(mut self, fuel: impl Into<Option<u64>>) -> Self {
        self.config.budget = fuel.into();
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> EnumConfig {
        self.config
    }
}

/// The default worker count: the `SAMM_JOBS` environment variable when it
/// parses as a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// CLI `--jobs N` flags override both by setting
/// [`EnumConfig::parallelism`] explicitly; `SAMM_JOBS` is the fleet-wide
/// fallback that lets CI and the service pin core usage without touching
/// every invocation.
///
/// The answer is computed once per process: both the environment scan
/// and `available_parallelism` (a syscall) are too slow for callers
/// that build an [`EnumConfig`] per request, and neither input changes
/// while the process runs.
pub fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SAMM_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Counters describing an enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Behaviours popped from the frontier.
    pub explored: usize,
    /// `(load, candidate)` forks attempted.
    pub forks: usize,
    /// Forks discarded as duplicates of an already-seen behaviour.
    pub deduped: usize,
    /// Forks rolled back because they violated Store Atomicity
    /// (speculation/bypass only).
    pub rolled_back: usize,
    /// Number of distinct complete executions (Load-Store graphs).
    pub distinct_executions: usize,
    /// Largest node count of any behaviour's graph.
    pub max_graph_nodes: usize,
    /// Worker threads the run used (`0` for the serial enumerator).
    pub workers: usize,
    /// Behaviours a worker obtained by stealing from another worker's
    /// deque (parallel runs only; scheduling-dependent).
    pub steals: usize,
    /// Dedup-shard lock acquisitions that found the shard already locked
    /// (parallel runs only; scheduling-dependent).
    pub shard_contention: usize,
    /// Times an idle worker woke, found no work anywhere, and yielded
    /// (parallel runs only; scheduling-dependent).
    pub idle_wakeups: usize,
    /// Instrumentation snapshot, present when [`EnumConfig::observe`] was
    /// set. Counter fields are deterministic; `*_nanos` timings are not
    /// (compare via [`ObsStats::counters`]).
    pub obs: Option<ObsStats>,
}

impl EnumStats {
    /// Renders the snapshot as a JSON object (hand-rolled; no external
    /// dependencies). The `obs` field is `null` when instrumentation was
    /// off.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"explored\":{},\"forks\":{},\"deduped\":{},\"rolled_back\":{},\
             \"distinct_executions\":{},\"max_graph_nodes\":{},\"workers\":{},\
             \"steals\":{},\"shard_contention\":{},\"idle_wakeups\":{},\"obs\":{}}}",
            self.explored,
            self.forks,
            self.deduped,
            self.rolled_back,
            self.distinct_executions,
            self.max_graph_nodes,
            self.workers,
            self.steals,
            self.shard_contention,
            self.idle_wakeups,
            self.obs.map_or_else(|| "null".to_owned(), |o| o.to_json()),
        )
    }
}

/// The full result of enumerating a program's behaviours.
#[derive(Debug, Clone, Default)]
pub struct EnumResult {
    /// Every distinct final outcome (register files at halt).
    pub outcomes: OutcomeSet,
    /// Every distinct complete execution, when
    /// [`EnumConfig::keep_executions`] is set.
    pub executions: Vec<Behavior>,
    /// Run statistics.
    pub stats: EnumStats,
}

/// A lazy stream of the complete behaviours of a program.
///
/// Created by [`behaviors`]; yields each distinct complete execution as it
/// is discovered, so callers can stop early (e.g. at the first execution
/// matching a violation condition) without paying for the full
/// enumeration.
#[derive(Debug)]
pub struct Behaviors {
    program: Program,
    policy: Policy,
    config: EnumConfig,
    may_roll_back: bool,
    frontier: Vec<Behavior>,
    seen: HashSet<Vec<u8>>,
    stats: EnumStats,
    finished: bool,
    /// Shared instrumentation counters (present iff `config.observe`).
    obs: Option<Arc<Obs>>,
    /// Event sink for fork/prune/commit events, serial engine only.
    trace: Option<Arc<dyn TraceSink>>,
    /// Next fresh behaviour id for trace events (the root is 0).
    next_trace_id: u64,
}

impl Behaviors {
    /// Statistics accumulated so far (complete once the iterator is
    /// drained). With [`EnumConfig::observe`] set, includes a live
    /// [`ObsStats`] snapshot.
    pub fn stats(&self) -> EnumStats {
        let mut stats = self.stats;
        if let Some(obs) = &self.obs {
            stats.obs = Some(obs.snapshot());
        }
        stats
    }

    fn record(&self, event: TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.record(event);
        }
    }
}

impl Iterator for Behaviors {
    type Item = Result<Behavior, EnumError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        while let Some(behavior) = self.frontier.pop() {
            self.stats.explored += 1;
            if self.stats.explored > self.config.max_behaviors {
                self.finished = true;
                return Some(Err(EnumError::BehaviorLimit {
                    limit: self.config.max_behaviors,
                }));
            }
            self.stats.max_graph_nodes = self.stats.max_graph_nodes.max(behavior.graph().len());

            if behavior.is_complete() {
                self.stats.distinct_executions += 1;
                self.record(TraceEvent::Commit {
                    id: behavior.trace_id(),
                });
                return Some(Ok(behavior));
            }

            let loads = behavior.resolvable_loads();
            if loads.is_empty() {
                self.finished = true;
                return Some(Err(EnumError::Stuck));
            }
            for load in loads {
                let stores = behavior.candidates(load);
                if let Some(obs) = behavior.obs() {
                    Obs::add(&obs.candidate_calls, 1);
                    Obs::add(&obs.candidate_stores, stores.len() as u64);
                }
                for store in stores {
                    self.stats.forks += 1;
                    if let Some(budget) = self.config.budget {
                        if self.stats.forks as u64 > budget {
                            self.finished = true;
                            return Some(Err(EnumError::Overbudget {
                                budget,
                                forks: self.stats.forks as u64,
                            }));
                        }
                    }
                    let mut fork = behavior.clone();
                    if self.trace.is_some() {
                        self.next_trace_id += 1;
                        fork.set_trace_id(self.next_trace_id);
                        self.record(TraceEvent::Fork {
                            parent: behavior.trace_id(),
                            child: self.next_trace_id,
                            load,
                            store,
                        });
                    }
                    let step = fork.resolve_load(load, store).and_then(|()| {
                        fork.settle(
                            &self.program,
                            &self.policy,
                            self.config.max_nodes_per_thread,
                        )
                    });
                    match step {
                        Ok(()) => {
                            if self.config.dedup && !self.seen.insert(fork.canonical_key()) {
                                self.stats.deduped += 1;
                                self.record(TraceEvent::Prune {
                                    child: fork.trace_id(),
                                    reason: PruneReason::Duplicate,
                                });
                                continue;
                            }
                            self.frontier.push(fork);
                        }
                        Err(StepError::Inconsistent(e)) => {
                            if self.may_roll_back {
                                self.stats.rolled_back += 1;
                                self.record(TraceEvent::Prune {
                                    child: fork.trace_id(),
                                    reason: PruneReason::Inconsistent,
                                });
                            } else {
                                self.finished = true;
                                return Some(Err(EnumError::UnexpectedCycle(e)));
                            }
                        }
                        Err(StepError::NodeLimit { thread, limit }) => {
                            self.finished = true;
                            return Some(Err(EnumError::NodeLimit { thread, limit }));
                        }
                    }
                }
            }
        }
        self.finished = true;
        None
    }
}

/// Starts a lazy enumeration of `program` under `policy`.
///
/// Unlike [`enumerate`], behaviours are produced on demand. Note that with
/// [`EnumConfig::dedup`] disabled the stream may repeat equivalent
/// executions (reached through different resolution orders); [`enumerate`]
/// collapses those in post-processing.
///
/// # Errors
///
/// Fails immediately when the initial behaviour cannot settle (node limit
/// or an inconsistent root).
///
/// # Examples
///
/// Find the first weak-model execution where both SB loads read 0, without
/// enumerating the rest:
///
/// ```
/// use samm_core::enumerate::{behaviors, EnumConfig};
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::{Reg, Value};
/// use samm_core::policy::Policy;
///
/// let t = |a: u64, b: u64| ThreadProgram::new(vec![
///     Instr::Store { addr: a.into(), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: b.into() },
/// ]);
/// let sb = Program::new(vec![t(0, 1), t(1, 0)]);
/// let mut stream = behaviors(&sb, &Policy::weak(), &EnumConfig::default()).unwrap();
/// let hit = stream.find(|b| {
///     b.as_ref().is_ok_and(|b| {
///         b.outcome().reg(0, Reg::new(0)) == Value::ZERO
///             && b.outcome().reg(1, Reg::new(0)) == Value::ZERO
///     })
/// });
/// assert!(hit.is_some());
/// ```
pub fn behaviors(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<Behaviors, EnumError> {
    behaviors_with(program, policy, config, None)
}

/// Like [`behaviors`], but additionally streaming fork/prune/commit
/// events into `sink` — the raw material for the witness/refutation
/// machinery in [`crate::explain`]. Behaviour ids are assigned in fork
/// order from the root's id 0, so the serial trace is deterministic.
/// (The parallel engine does not emit trace events: its fork order is
/// scheduling-dependent.)
///
/// # Errors
///
/// As for [`behaviors`].
pub fn behaviors_traced(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<Behaviors, EnumError> {
    behaviors_with(program, policy, config, Some(sink))
}

fn behaviors_with(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    trace: Option<Arc<dyn TraceSink>>,
) -> Result<Behaviors, EnumError> {
    let may_roll_back = policy.alias_speculation() || policy.has_bypass() || program.uses_rmw();
    let obs = config.observe.then(|| Arc::new(Obs::new()));
    let mut root = Behavior::new(program);
    if let Some(obs) = &obs {
        root.enable_obs(Arc::clone(obs));
    }
    match root.settle(program, policy, config.max_nodes_per_thread) {
        Ok(()) => {}
        Err(StepError::NodeLimit { thread, limit }) => {
            return Err(EnumError::NodeLimit { thread, limit })
        }
        Err(StepError::Inconsistent(e)) => return Err(EnumError::UnexpectedCycle(e)),
    }
    let mut seen = HashSet::new();
    if config.dedup {
        seen.insert(root.canonical_key());
    }
    Ok(Behaviors {
        program: program.clone(),
        policy: policy.clone(),
        config: config.clone(),
        may_roll_back,
        frontier: vec![root],
        seen,
        stats: EnumStats::default(),
        finished: false,
        obs,
        trace,
        next_trace_id: 0,
    })
}

/// Enumerates every behaviour of `program` under `policy`.
///
/// # Examples
///
/// Store-buffering has exactly four outcomes under a weak model and three
/// under SC:
///
/// ```
/// use samm_core::enumerate::{enumerate, EnumConfig};
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::{Reg, Value};
/// use samm_core::policy::Policy;
///
/// fn sb() -> Program {
///     let t = |a: u64, b: u64| ThreadProgram::new(vec![
///         Instr::Store { addr: a.into(), val: 1u64.into() },
///         Instr::Load { dst: Reg::new(0), addr: b.into() },
///     ]);
///     Program::new(vec![t(0, 1), t(1, 0)])
/// }
/// let weak = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
/// let sc = enumerate(&sb(), &Policy::sequential_consistency(), &EnumConfig::default()).unwrap();
/// assert_eq!(weak.outcomes.len(), 4);
/// assert_eq!(sc.outcomes.len(), 3);
/// ```
///
/// # Errors
///
/// * [`EnumError::NodeLimit`] / [`EnumError::BehaviorLimit`] when limits are
///   exceeded;
/// * [`EnumError::UnexpectedCycle`] when a non-speculative store-atomic
///   model produces an inconsistent behaviour (an internal invariant
///   violation);
/// * [`EnumError::Stuck`] when a behaviour cannot make progress (likewise
///   an internal invariant violation).
pub fn enumerate(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<EnumResult, EnumError> {
    let mut stream = behaviors(program, policy, config)?;
    let mut result = EnumResult::default();
    let mut final_keys: HashSet<Vec<u8>> = HashSet::new();
    for item in &mut stream {
        let behavior = item?;
        result.outcomes.insert(behavior.outcome());
        if config.keep_executions {
            result.executions.push(behavior);
        } else if !config.dedup {
            // Executions are dropped, but the distinct count must still
            // collapse duplicates reached through several resolution
            // orders.
            final_keys.insert(behavior.canonical_key());
        }
    }
    result.stats = stream.stats();

    // Without dedup, identical complete behaviours are reached through
    // several resolution orders; collapse the count (and the kept
    // executions) so both configurations report the same executions.
    if !config.dedup {
        if config.keep_executions {
            result
                .executions
                .retain(|b| final_keys.insert(b.canonical_key()));
            result.stats.distinct_executions = result.executions.len();
        } else {
            result.stats.distinct_executions = final_keys.len();
        }
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, Value};
    use crate::instr::{Instr, Operand, ThreadProgram};
    use crate::outcome::Outcome;

    const X: u64 = 0;
    const Y: u64 = 1;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    fn outcome2(a: u64, b: u64) -> Outcome {
        Outcome::new(vec![vec![Value::new(a)], vec![Value::new(b)]])
    }

    /// Store buffering: T0 = S x,1; L y. T1 = S y,1; L x.
    fn sb() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ])
    }

    /// Message passing: T0 = S x,1; S y,1. T1 = L y; L x.
    fn mp() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), st(Y, 1)]),
            ThreadProgram::new(vec![ld(0, Y), ld(1, X)]),
        ])
    }

    #[test]
    fn sb_under_sc_forbids_zero_zero() {
        let r = enumerate(
            &sb(),
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
        )
        .unwrap();
        assert_eq!(r.outcomes.len(), 3);
        assert!(!r.outcomes.contains(&outcome2(0, 0)));
        assert!(r.outcomes.contains(&outcome2(1, 1)));
        assert!(r.outcomes.contains(&outcome2(0, 1)));
        assert!(r.outcomes.contains(&outcome2(1, 0)));
    }

    #[test]
    fn sb_under_weak_allows_zero_zero() {
        let r = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 4);
        assert!(r.outcomes.contains(&outcome2(0, 0)));
    }

    #[test]
    fn sb_under_tso_allows_zero_zero() {
        let r = enumerate(&sb(), &Policy::tso(), &EnumConfig::default()).unwrap();
        assert!(
            r.outcomes.contains(&outcome2(0, 0)),
            "store buffering is TSO's hallmark"
        );
        assert_eq!(r.outcomes.len(), 4);
    }

    #[test]
    fn mp_under_sc_and_tso_forbids_stale_data() {
        for policy in [Policy::sequential_consistency(), Policy::tso()] {
            let r = enumerate(&mp(), &policy, &EnumConfig::default()).unwrap();
            assert!(
                !r.outcomes.contains(&Outcome::new(vec![
                    vec![],
                    vec![Value::new(1), Value::new(0)]
                ])),
                "r0=1,r1=0 must be forbidden under {}",
                policy.name()
            );
        }
    }

    #[test]
    fn mp_under_weak_allows_stale_data() {
        let r = enumerate(&mp(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(r.outcomes.contains(&Outcome::new(vec![
            vec![],
            vec![Value::new(1), Value::new(0)]
        ])));
    }

    #[test]
    fn mp_with_fences_is_sc_like_under_weak() {
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), Instr::Fence, st(Y, 1)]),
            ThreadProgram::new(vec![ld(0, Y), Instr::Fence, ld(1, X)]),
        ]);
        let r = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(!r.outcomes.contains(&Outcome::new(vec![
            vec![],
            vec![Value::new(1), Value::new(0)]
        ])));
        assert_eq!(r.outcomes.len(), 3);
    }

    #[test]
    fn outcome_sets_nest_across_models() {
        for prog in [sb(), mp()] {
            let sc = enumerate(
                &prog,
                &Policy::sequential_consistency(),
                &EnumConfig::default(),
            )
            .unwrap()
            .outcomes;
            let tso = enumerate(&prog, &Policy::tso(), &EnumConfig::default())
                .unwrap()
                .outcomes;
            let pso = enumerate(&prog, &Policy::pso(), &EnumConfig::default())
                .unwrap()
                .outcomes;
            let weak = enumerate(&prog, &Policy::weak(), &EnumConfig::default())
                .unwrap()
                .outcomes;
            assert!(sc.is_subset(&tso));
            assert!(tso.is_subset(&pso));
            assert!(pso.is_subset(&weak));
        }
    }

    #[test]
    fn dedup_does_not_change_outcomes() {
        let with = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        let without = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig {
                dedup: false,
                ..EnumConfig::default()
            },
        )
        .unwrap();
        assert_eq!(with.outcomes, without.outcomes);
        assert_eq!(
            with.stats.distinct_executions,
            without.stats.distinct_executions
        );
        assert!(without.stats.explored >= with.stats.explored);
    }

    #[test]
    fn behavior_limit_is_enforced() {
        let err = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig {
                max_behaviors: 2,
                ..EnumConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EnumError::BehaviorLimit { limit: 2 });
    }

    #[test]
    fn node_limit_propagates() {
        let looping = Program::new(vec![ThreadProgram::new(vec![
            st(X, 1),
            Instr::Jump { target: 0 },
        ])]);
        let err = enumerate(
            &looping,
            &Policy::weak(),
            &EnumConfig {
                max_nodes_per_thread: 4,
                ..EnumConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EnumError::NodeLimit {
                thread: 0,
                limit: 4
            }
        ));
    }

    #[test]
    fn single_thread_program_is_deterministic() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            st(X, 1),
            ld(0, X),
            st(X, 2),
            ld(1, X),
        ])]);
        for policy in [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
            Policy::weak(),
            Policy::weak().with_alias_speculation(true),
        ] {
            let r = enumerate(&prog, &policy, &EnumConfig::default()).unwrap();
            assert_eq!(
                r.outcomes.len(),
                1,
                "single-threaded determinism under {}",
                policy.name()
            );
            let o = r.outcomes.iter().next().unwrap();
            assert_eq!(o.reg(0, Reg::new(0)), Value::new(1));
            assert_eq!(o.reg(0, Reg::new(1)), Value::new(2));
        }
    }

    #[test]
    fn coherent_read_read_under_weak_allows_reordering() {
        // CoRR: T0 = S x,1. T1 = L x; L x. Under the weak table L-L to the
        // same address is unconstrained, so r0=1, r1=0 is observable.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1)]),
            ThreadProgram::new(vec![ld(0, X), ld(1, X)]),
        ]);
        let weak = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(weak.outcomes.contains(&Outcome::new(vec![
            vec![],
            vec![Value::new(1), Value::new(0)]
        ])));
        let sc = enumerate(
            &prog,
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
        )
        .unwrap();
        assert!(!sc.outcomes.contains(&Outcome::new(vec![
            vec![],
            vec![Value::new(1), Value::new(0)]
        ])));
    }

    #[test]
    fn branch_dependent_store_enumerates_both_paths() {
        // T0: S x,1. T1: L x -> r0; bnz r0 to store-2; S y,5; halt; (2:) S y,9.
        let t1 = ThreadProgram::new(vec![
            ld(0, X),
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 4,
            },
            st(Y, 5),
            Instr::Halt,
            st(Y, 9),
        ]);
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 1)]), t1]);
        let r = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        // r0 = 0 writes y=5; r0 = 1 writes y=9. Both paths must appear.
        assert!(r.outcomes.any(|o| o.reg(1, Reg::new(0)) == Value::ZERO));
        assert!(r.outcomes.any(|o| o.reg(1, Reg::new(0)) == Value::new(1)));
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    fn stats_are_populated() {
        let r = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(r.stats.explored > 0);
        assert!(r.stats.forks > 0);
        assert!(r.stats.distinct_executions >= r.outcomes.len());
        assert!(r.stats.max_graph_nodes >= 6);
        assert_eq!(r.executions.len(), r.stats.distinct_executions);
    }

    #[test]
    fn keep_executions_off_drops_graphs() {
        let r = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig {
                keep_executions: false,
                ..EnumConfig::default()
            },
        )
        .unwrap();
        assert!(r.executions.is_empty());
        assert_eq!(r.outcomes.len(), 4);
    }

    #[test]
    fn fork_budget_is_enforced() {
        let err = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig::builder().budget(3).build(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                EnumError::Overbudget {
                    budget: 3,
                    forks: 4
                }
            ),
            "expected Overbudget, got {err:?}"
        );
    }

    #[test]
    fn sufficient_budget_changes_nothing() {
        let unbudgeted = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        let budgeted = enumerate(
            &sb(),
            &Policy::weak(),
            &EnumConfig::builder()
                .budget(unbudgeted.stats.forks as u64)
                .build(),
        )
        .unwrap();
        assert_eq!(budgeted.outcomes, unbudgeted.outcomes);
        assert_eq!(budgeted.stats.forks, unbudgeted.stats.forks);
    }

    #[test]
    fn builder_round_trips_every_field() {
        let config = EnumConfig::builder()
            .max_behaviors(17)
            .max_nodes_per_thread(9)
            .dedup(false)
            .keep_executions(false)
            .parallelism(3)
            .observe(true)
            .budget(Some(5))
            .build();
        let expected = EnumConfig {
            max_behaviors: 17,
            max_nodes_per_thread: 9,
            dedup: false,
            keep_executions: false,
            parallelism: 3,
            observe: true,
            budget: Some(5),
        };
        assert_eq!(config, expected);
        assert_eq!(EnumConfig::builder().build(), EnumConfig::default());
        // budget() also accepts a bare integer.
        assert_eq!(EnumConfig::builder().budget(7u64).build().budget, Some(7));
    }

    // --- Behaviors: the lazy stream --------------------------------------

    #[test]
    fn stream_early_stop_stats_are_consistent() {
        // Pull exactly one complete behaviour, then stop: the stats must
        // reflect one distinct execution and strictly less work than a
        // full drain.
        let config = EnumConfig::default();
        let mut stream = behaviors(&sb(), &Policy::weak(), &config).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(first.is_complete());
        let early = stream.stats();
        assert_eq!(early.distinct_executions, 1);
        assert!(early.explored >= 1);

        let full = enumerate(&sb(), &Policy::weak(), &config).unwrap().stats;
        assert!(early.explored < full.explored);
        assert!(early.forks <= full.forks);

        // Draining the rest converges on the full-enumeration stats.
        for item in &mut stream {
            item.unwrap();
        }
        let drained = stream.stats();
        assert_eq!(drained.explored, full.explored);
        assert_eq!(drained.forks, full.forks);
        assert_eq!(drained.deduped, full.deduped);
        assert_eq!(drained.distinct_executions, full.distinct_executions);
    }

    #[test]
    fn stream_yields_every_distinct_execution_once() {
        let stream = behaviors(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        let mut keys = std::collections::HashSet::new();
        let mut outcomes = OutcomeSet::default();
        for item in stream {
            let behavior = item.unwrap();
            assert!(
                keys.insert(behavior.canonical_key()),
                "deduped stream repeated an execution"
            );
            outcomes.insert(behavior.outcome());
        }
        let reference = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(outcomes, reference.outcomes);
        assert_eq!(keys.len(), reference.stats.distinct_executions);
    }

    #[test]
    fn stream_behavior_limit_fuses_the_iterator() {
        let config = EnumConfig {
            max_behaviors: 2,
            ..EnumConfig::default()
        };
        let mut stream = behaviors(&sb(), &Policy::weak(), &config).unwrap();
        let err = loop {
            match stream.next() {
                Some(Ok(_)) => continue,
                Some(Err(e)) => break e,
                None => panic!("stream ended without hitting the limit"),
            }
        };
        assert_eq!(err, EnumError::BehaviorLimit { limit: 2 });
        // After the error the stream is fused: no further items, and the
        // stats stop moving.
        let stats = stream.stats();
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
        assert_eq!(stream.stats(), stats);
    }

    #[test]
    fn stream_node_limit_fuses_the_iterator() {
        // T0 loops back to its load only while the loaded value is
        // non-zero, so the root settles fine and the node limit bites
        // during a later refinement (resolving the load against T1's
        // store of 1 unrolls the loop past the limit).
        let looping = Program::new(vec![
            ThreadProgram::new(vec![
                ld(0, X),
                Instr::BranchNz {
                    cond: Operand::Reg(Reg::new(0)),
                    target: 0,
                },
            ]),
            ThreadProgram::new(vec![st(X, 1)]),
        ]);
        let config = EnumConfig {
            max_nodes_per_thread: 6,
            ..EnumConfig::default()
        };
        // The root settles (the limit bites mid-refinement, not at
        // construction), so the error surfaces from the stream itself.
        let mut stream = behaviors(&looping, &Policy::weak(), &config).unwrap();
        let err = loop {
            match stream.next() {
                Some(Ok(_)) => continue,
                Some(Err(e)) => break e,
                None => panic!("stream ended without hitting the node limit"),
            }
        };
        assert!(matches!(
            err,
            EnumError::NodeLimit {
                thread: 0,
                limit: 6
            }
        ));
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_dedup_off_covers_the_same_outcomes() {
        // Without dedup the stream may repeat equivalent executions, but
        // the distinct key set and the outcome set must match the deduped
        // stream's exactly.
        let dedup_off = EnumConfig {
            dedup: false,
            ..EnumConfig::default()
        };
        let mut keys = std::collections::HashSet::new();
        let mut outcomes = OutcomeSet::default();
        let mut yielded = 0usize;
        for item in behaviors(&sb(), &Policy::weak(), &dedup_off).unwrap() {
            let behavior = item.unwrap();
            keys.insert(behavior.canonical_key());
            outcomes.insert(behavior.outcome());
            yielded += 1;
        }
        let reference = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(outcomes, reference.outcomes);
        assert_eq!(keys.len(), reference.stats.distinct_executions);
        assert!(
            yielded >= keys.len(),
            "dedup-off must yield at least every distinct execution"
        );
    }
}
