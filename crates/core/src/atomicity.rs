//! The Store Atomicity property (paper section 3.3).
//!
//! Given an execution `⟨≺, source, =ₐ⟩`, Store Atomicity demands three
//! additional families of `@` edges (Figure 6):
//!
//! * **rule a** — predecessor stores of a load are ordered before its
//!   source: `S =ₐ L ∧ S @ L ∧ S ≠ source(L) ⇒ S @ source(L)`;
//! * **rule b** — successor stores of an observed store are ordered after
//!   its observers: `S =ₐ L ∧ source(L) @ S ⇒ L @ S`;
//! * **rule c** — mutual ancestors of two same-address loads with distinct
//!   sources are ordered before mutual successors of those sources:
//!   `L =ₐ L′ ∧ A @ L ∧ A @ L′ ∧ source(L) ≠ source(L′) ∧ source(L) @ B ∧
//!   source(L′) @ B ⇒ A @ B`.
//!
//! "Including a dependency to enforce Store Atomicity can expose the need
//! for additional dependencies" (Figure 7), so [`enforce`] iterates the
//! rules to a fixpoint. A cycle while inserting an edge means the execution
//! is not serializable — impossible during non-speculative enumeration of a
//! store-atomic model, and the rollback trigger for speculation.

use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

use crate::bitset::BitSet;
use crate::error::CycleError;
use crate::graph::ExecutionGraph;
use crate::ids::{Addr, NodeId};
use crate::obs::Obs;

/// Which of the paper's Figure 6 closure rules demanded an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Rule a: `S @ L ∧ S ≠ source(L) ⇒ S @ source(L)`.
    A,
    /// Rule b: `source(L) @ S ⇒ L @ S`.
    B,
    /// Rule c: common ancestors of two same-address loads with distinct
    /// sources precede common descendants of those sources.
    C,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::A => "a",
            Rule::B => "b",
            Rule::C => "c",
        })
    }
}

/// Runs the Store Atomicity rules to a fixpoint, inserting
/// [`crate::graph::EdgeKind::Atomicity`] edges tagged with the [`Rule`]
/// that demanded each.
///
/// Returns the number of edges inserted.
///
/// # Errors
///
/// Returns [`CycleError`] if an implied edge would make `@` cyclic (the
/// execution violates Store Atomicity and has no serialization). The graph
/// may be left with some of the implied edges already inserted; callers
/// treat the whole behaviour as discarded in that case.
pub fn enforce(graph: &mut ExecutionGraph) -> Result<usize, CycleError> {
    enforce_observed(graph, None)
}

/// [`enforce`] with optional instrumentation: when `obs` is present, the
/// per-rule edge counters, the fixpoint round count, and the closure
/// wall-clock are accumulated into it.
///
/// # Errors
///
/// As for [`enforce`].
pub fn enforce_observed(
    graph: &mut ExecutionGraph,
    obs: Option<&Obs>,
) -> Result<usize, CycleError> {
    SCRATCH.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let scratch = &mut *borrow;
        let start = obs.map(|_| Instant::now());

        // Snapshots that are invariant across rounds: the closure only adds
        // `@` edges, never nodes or resolutions, so the resolved loads and
        // the per-address store lists can be collected once instead of per
        // round (this sits on the per-fork hot path of both engines). One
        // pass over the graph gathers both loads and stores; the per-addr
        // ranges then come from the small store list, not more node scans.
        scratch.loads.clear();
        scratch.raw_stores.clear();
        for (id, n) in graph.iter() {
            if n.is_load() && n.is_resolved() {
                scratch.loads.push((
                    id,
                    n.source().expect("resolved load has a source"),
                    n.addr().expect("resolved load has an address"),
                ));
            }
            if n.is_store() {
                if let Some(addr) = n.addr() {
                    scratch.raw_stores.push((addr, id));
                }
            }
        }
        scratch.store_ranges.clear();
        scratch.stores.clear();
        for i in 0..scratch.loads.len() {
            let addr = scratch.loads[i].2;
            if !scratch.store_ranges.iter().any(|&(a, _, _)| a == addr) {
                let from = scratch.stores.len();
                scratch.stores.extend(
                    scratch
                        .raw_stores
                        .iter()
                        .filter(|&&(a, _)| a == addr)
                        .map(|&(_, id)| id),
                );
                scratch
                    .store_ranges
                    .push((addr, from, scratch.stores.len()));
            }
        }

        let mut inserted = 0;
        let result = loop {
            if let Some(o) = obs {
                Obs::add(&o.closure_rounds, 1);
            }
            match enforce_round(graph, obs, scratch) {
                Ok(0) => break Ok(inserted),
                Ok(round) => inserted += round,
                Err(e) => break Err(e),
            }
        };
        if let (Some(o), Some(t)) = (obs, start) {
            Obs::add(&o.closure_nanos, t.elapsed().as_nanos() as u64);
        }
        result
    })
}

/// Reusable per-thread buffers for [`enforce_observed`]: the loop-invariant
/// load/store snapshots and rule c's intersection sets. Thread-local so the
/// serial and rayon-parallel enumerators each get an allocation-free
/// closure without threading state through every caller; `enforce_observed`
/// never re-enters itself, so the `RefCell` borrow cannot conflict.
#[derive(Default)]
struct EnforceScratch {
    /// Resolved loads: (load, source, addr).
    loads: Vec<(NodeId, NodeId, Addr)>,
    /// Every store with a known address, in node order: `(addr, store)`.
    raw_stores: Vec<(Addr, NodeId)>,
    /// Per-address `(addr, from, to)` ranges into `stores`, in first-seen
    /// load order.
    store_ranges: Vec<(Addr, usize, usize)>,
    /// Flat concatenation of the per-address store lists.
    stores: Vec<NodeId>,
    ancestors: BitSet,
    descendants: BitSet,
}

thread_local! {
    static SCRATCH: RefCell<EnforceScratch> = RefCell::default();
}

/// One pass over the three rules; returns how many new edges were added.
fn enforce_round(
    graph: &mut ExecutionGraph,
    obs: Option<&Obs>,
    scratch: &mut EnforceScratch,
) -> Result<usize, CycleError> {
    let EnforceScratch {
        loads,
        raw_stores: _,
        store_ranges,
        stores: all_stores,
        ancestors,
        descendants,
    } = scratch;
    let loads: &[(NodeId, NodeId, Addr)] = loads;
    let mut added = 0;

    // Rules a and b.
    for &(load, source, addr) in loads {
        let (_, from, to) = *store_ranges
            .iter()
            .find(|&&(a, _, _)| a == addr)
            .expect("store range collected for every load address");
        let stores: &[NodeId] = &all_stores[from..to];
        for &store in stores {
            if store == source {
                continue;
            }
            // An RMW node is its own load and store; the rules relate it
            // to *other* operations only.
            if store == load {
                continue;
            }
            // Rule a: S @ L ⇒ S @ source(L).
            if graph.precedes(store, load) && !graph.precedes(store, source) {
                graph.add_atomicity_edge(store, source, Rule::A)?;
                if let Some(o) = obs {
                    Obs::add(&o.rule_a, 1);
                }
                added += 1;
            }
            // Rule b: source(L) @ S ⇒ L @ S.
            if graph.precedes(source, store) && !graph.precedes(load, store) {
                graph.add_atomicity_edge(load, store, Rule::B)?;
                if let Some(o) = obs {
                    Obs::add(&o.rule_b, 1);
                }
                added += 1;
            }
        }
    }

    // Rule c: all pairs of same-address loads with distinct sources.
    for i in 0..loads.len() {
        for j in (i + 1)..loads.len() {
            let (l1, s1, a1) = loads[i];
            let (l2, s2, a2) = loads[j];
            if s1 == s2 {
                continue;
            }
            if a1 != a2 {
                continue;
            }
            let order = graph.order();
            order
                .predecessors(l1)
                .intersection_into(order.predecessors(l2), ancestors);
            if ancestors.is_empty() {
                continue;
            }
            order
                .successors(s1)
                .intersection_into(order.successors(s2), descendants);
            if descendants.is_empty() {
                continue;
            }
            for a in ancestors.iter() {
                for b in descendants.iter() {
                    let (a, b) = (NodeId::new(a), NodeId::new(b));
                    if a == b {
                        // A @ B with A = B is an immediate contradiction.
                        return Err(CycleError { from: a, to: b });
                    }
                    if !graph.precedes(a, b) {
                        graph.add_atomicity_edge(a, b, Rule::C)?;
                        if let Some(o) = obs {
                            Obs::add(&o.rule_c, 1);
                        }
                        added += 1;
                    }
                }
            }
        }
    }

    Ok(added)
}

/// Checks whether a graph already satisfies Store Atomicity without
/// modifying it (declarative use, paper section 3.3: "we can check an
/// arbitrary execution graph and say whether or not it obeys Store
/// Atomicity").
///
/// Returns `Ok(true)` when no rule demands a missing edge, `Ok(false)` when
/// at least one implied edge is absent (the graph is consistent but not yet
/// closed).
///
/// # Errors
///
/// Returns [`CycleError`] when closing the rules would create a cycle, i.e.
/// the execution violates Store Atomicity outright.
pub fn check(graph: &ExecutionGraph) -> Result<bool, CycleError> {
    let mut scratch = graph.clone();
    let added = enforce(&mut scratch)?;
    Ok(added == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_init, mk_load, mk_store, observe, order};

    // Addresses used by the figures.
    const X: u64 = 1;
    const Y: u64 = 2;
    const Z: u64 = 3;

    /// Figure 3: Thread A = S1 x,1; fence; S2 y,2; L5 y = 3.
    ///           Thread B = S3 y,3; fence; S4 x,4; L6 x = 1?
    /// Observing S3 in thread A means S2 was overwritten: rule a forces
    /// S2 @ S3 (dotted edge a), hence S1 @ S4 @ L6 and L6 cannot observe
    /// the overwritten S1.
    #[test]
    fn figure_3_rule_a_orders_overwritten_store() {
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 0, 1, Y, 2);
        let l5 = mk_load(&mut g, 0, 2, Y);
        let s3 = mk_store(&mut g, 1, 0, Y, 3);
        let s4 = mk_store(&mut g, 1, 1, X, 4);
        let l6 = mk_load(&mut g, 1, 2, X);
        // Local ordering under the weak rules (fences erased in the drawn
        // Load-Store graph; S2 ≺ L5 and S4 ≺ L6 are same-address edges).
        order(&mut g, s1, s2);
        order(&mut g, s1, l5);
        order(&mut g, s2, l5);
        order(&mut g, s3, s4);
        order(&mut g, s3, l6);
        order(&mut g, s4, l6);
        mk_init(&mut g, 0, X, 0);
        mk_init(&mut g, 1, Y, 0);

        observe(&mut g, s3, l5); // L5 y = 3
        enforce(&mut g).unwrap();

        // Dotted edge a of the figure.
        assert!(g.precedes(s2, s3), "rule a: overwritten S2 must precede S3");
        assert!(g.precedes(s1, s4), "transitively S1 @ S4");
        // Resolving L6 to S1 is now impossible: S1 @ S4 @ L6 with S4 to x.
        assert!(g.precedes(s4, l6));
    }

    /// Figure 4: Thread A = S1 x,1; S2 x,2; fence; L4 y = 3.
    ///           Thread B = S3 y,3; S5 y,5; fence; L6 x = 1?
    /// Observing S3 before it is overwritten orders L4 before the
    /// overwriting S5 (rule b, dotted edge b), hence S1 @ S2 @ L6 and L6
    /// cannot observe the overwritten S1.
    #[test]
    fn figure_4_rule_b_orders_observer_before_overwrite() {
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 0, 1, X, 2);
        let l4 = mk_load(&mut g, 0, 2, Y);
        let s3 = mk_store(&mut g, 1, 0, Y, 3);
        let s5 = mk_store(&mut g, 1, 1, Y, 5);
        let l6 = mk_load(&mut g, 1, 2, X);
        order(&mut g, s1, s2);
        order(&mut g, s1, l4);
        order(&mut g, s2, l4);
        order(&mut g, s3, s5);
        order(&mut g, s3, l6);
        order(&mut g, s5, l6);
        mk_init(&mut g, 0, X, 0);
        mk_init(&mut g, 1, Y, 0);

        observe(&mut g, s3, l4); // L4 y = 3
        enforce(&mut g).unwrap();

        assert!(
            g.precedes(l4, s5),
            "rule b: observer L4 must precede overwriting S5"
        );
        assert!(g.precedes(s2, l6), "hence S1 @ S2 @ L6");
        assert!(g.precedes(s1, l6));
    }

    /// Figure 5: unordered store/load pairs on y still order S1 before L7
    /// (rule c), so L9 cannot observe S1.
    #[test]
    fn figure_5_rule_c_orders_mutual_ancestor_before_mutual_successor() {
        let mut g = ExecutionGraph::new();
        // Thread A: S1 x,1; fence; L3 y; L5 y.
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let l3 = mk_load(&mut g, 0, 1, Y);
        let l5 = mk_load(&mut g, 0, 2, Y);
        // Thread B: S2 y,2; fence; S6 z,6.
        let s2 = mk_store(&mut g, 1, 0, Y, 2);
        let s6 = mk_store(&mut g, 1, 1, Z, 6);
        // Thread C: S4 y,4; fence; L7 z; fence; S8 x,8; L9 x.
        let s4 = mk_store(&mut g, 2, 0, Y, 4);
        let l7 = mk_load(&mut g, 2, 1, Z);
        let s8 = mk_store(&mut g, 2, 2, X, 8);
        let l9 = mk_load(&mut g, 2, 3, X);
        order(&mut g, s1, l3);
        order(&mut g, s1, l5);
        order(&mut g, s2, s6);
        order(&mut g, s4, l7);
        order(&mut g, l7, s8);
        order(&mut g, s8, l9);
        mk_init(&mut g, 0, X, 0);
        mk_init(&mut g, 1, Y, 0);
        mk_init(&mut g, 2, Z, 0);

        observe(&mut g, s2, l3); // L3 y = 2
        observe(&mut g, s4, l5); // L5 y = 4
        observe(&mut g, s6, l7); // L7 z = 6
        enforce(&mut g).unwrap();

        // Edge c of the figure: the mutual ancestor S1 of {L3, L5} precedes
        // the mutual successor L7 of {S2, S4}.
        assert!(g.precedes(s1, l7), "rule c: S1 @ L7");
        assert!(g.precedes(s1, s8), "hence S1 @ S8");
        assert!(
            g.precedes(s8, l9),
            "so L9 cannot observe the overwritten S1"
        );
    }

    /// Figure 7: enforcing Store Atomicity on one location can expose the
    /// need for edges on another; the closure must cascade (edges a, b
    /// given; c then d derived).
    #[test]
    fn figure_7_closure_cascades_across_locations() {
        let mut g = ExecutionGraph::new();
        // Thread A: S1 x,1; fence; S3 y,3; L6 y.
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s3 = mk_store(&mut g, 0, 1, Y, 3);
        let l6 = mk_load(&mut g, 0, 2, Y);
        // Thread B: S4 y,4; fence; L5 x.
        let s4 = mk_store(&mut g, 1, 0, Y, 4);
        let l5 = mk_load(&mut g, 1, 1, X);
        // Thread C: S2 x,2.
        let s2 = mk_store(&mut g, 2, 0, X, 2);
        order(&mut g, s1, s3);
        order(&mut g, s1, l6);
        order(&mut g, s3, l6);
        order(&mut g, s4, l5);
        mk_init(&mut g, 0, X, 0);
        mk_init(&mut g, 1, Y, 0);

        observe(&mut g, s2, l5); // edge a: L5 x = 2
        observe(&mut g, s4, l6); // edge b: L6 y = 4
        enforce(&mut g).unwrap();

        // Rule a on y: S3 @ L6 and S3 != source(L6) = S4, so S3 @ S4 (edge c).
        assert!(g.precedes(s3, s4), "edge c: S3 @ S4");
        // That reveals S1 @ S4 @ L5, so rule a on x demands S1 @ S2 (edge d).
        assert!(g.precedes(s1, l5), "S1 now precedes L5");
        assert!(g.precedes(s1, s2), "edge d: S1 @ S2");
    }

    #[test]
    fn enforce_is_idempotent() {
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let l1 = mk_load(&mut g, 1, 0, X);
        mk_init(&mut g, 0, X, 0);
        observe(&mut g, s1, l1);
        let first = enforce(&mut g).unwrap();
        let second = enforce(&mut g).unwrap();
        assert_eq!(
            second, 0,
            "second pass must add nothing (first added {first})"
        );
    }

    #[test]
    fn check_reports_closed_graphs() {
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 1, 0, X, 2);
        let l1 = mk_load(&mut g, 2, 0, X);
        order(&mut g, s1, l1);
        observe(&mut g, s2, l1);
        // Rule a demands s1 @ s2; not yet inserted.
        assert_eq!(check(&g), Ok(false));
        enforce(&mut g).unwrap();
        assert_eq!(check(&g), Ok(true));
        assert!(g.precedes(s1, s2));
    }

    #[test]
    fn violating_execution_yields_cycle() {
        // Two stores to x ordered S1 @ S2; a load ordered after S2 observes
        // S1 — rule a demands S2 @ S1, a cycle.
        let mut g = ExecutionGraph::new();
        let s1 = mk_store(&mut g, 0, 0, X, 1);
        let s2 = mk_store(&mut g, 0, 1, X, 2);
        let l = mk_load(&mut g, 0, 2, X);
        order(&mut g, s1, s2);
        order(&mut g, s2, l);
        observe(&mut g, s1, l);
        assert!(enforce(&mut g).is_err());
    }

    #[test]
    fn rule_b_cycle_detected() {
        // L observes S2, S2 @ S3 (same addr), but S3 @ L: rule b demands
        // L @ S3 — cycle.
        let mut g = ExecutionGraph::new();
        let s2 = mk_store(&mut g, 0, 0, X, 2);
        let s3 = mk_store(&mut g, 1, 0, X, 3);
        let l = mk_load(&mut g, 2, 0, X);
        order(&mut g, s2, s3);
        order(&mut g, s3, l);
        observe(&mut g, s2, l);
        assert!(enforce(&mut g).is_err());
    }

    #[test]
    fn unrelated_addresses_are_untouched() {
        let mut g = ExecutionGraph::new();
        let sx = mk_store(&mut g, 0, 0, X, 1);
        let sy = mk_store(&mut g, 1, 0, Y, 2);
        let lx = mk_load(&mut g, 2, 0, X);
        observe(&mut g, sx, lx);
        enforce(&mut g).unwrap();
        assert!(!g.ordered(sy, sx));
        assert!(!g.ordered(sy, lx));
    }

    /// Two RMWs observing the same source contradict each other through
    /// rule b: each one's load facet must precede the other's store facet,
    /// and since facets share a node that is a cycle. This is the
    /// graph-level mechanism behind CAS mutual exclusion.
    #[test]
    fn competing_rmws_on_one_source_are_a_cycle() {
        use crate::ids::{Addr, ThreadId, Value};
        let mut g = ExecutionGraph::new();
        let init = g.add_init_store(0, Addr::new(X), Value::ZERO);
        let a = g.add_rmw_event(ThreadId::new(0), 0, Addr::new(X), Some(Value::new(1)));
        let b = g.add_rmw_event(ThreadId::new(1), 0, Addr::new(X), Some(Value::new(1)));
        g.add_edge(init, a, crate::graph::EdgeKind::Init).unwrap();
        g.add_edge(init, b, crate::graph::EdgeKind::Init).unwrap();
        g.observe_recorded(a, init).unwrap();
        g.observe_recorded(b, init).unwrap();
        assert!(
            enforce(&mut g).is_err(),
            "both RMWs reading the initial value violates Store Atomicity"
        );
    }

    /// One RMW reading the other's write is the consistent serialization.
    #[test]
    fn chained_rmws_are_consistent() {
        use crate::ids::{Addr, ThreadId, Value};
        let mut g = ExecutionGraph::new();
        let init = g.add_init_store(0, Addr::new(X), Value::ZERO);
        let a = g.add_rmw_event(ThreadId::new(0), 0, Addr::new(X), Some(Value::new(1)));
        let b = g.add_rmw_event(ThreadId::new(1), 0, Addr::new(X), Some(Value::new(2)));
        g.add_edge(init, a, crate::graph::EdgeKind::Init).unwrap();
        g.add_edge(init, b, crate::graph::EdgeKind::Init).unwrap();
        g.observe_recorded(a, init).unwrap();
        g.observe_recorded(b, a).unwrap();
        enforce(&mut g).unwrap();
        assert!(g.precedes(a, b));
        assert_eq!(check(&g), Ok(true));
    }

    #[test]
    fn rule_c_skips_same_source_pairs() {
        // Two loads observing the same store never trigger rule c.
        let mut g = ExecutionGraph::new();
        let s = mk_store(&mut g, 0, 0, X, 1);
        let l1 = mk_load(&mut g, 1, 0, X);
        let l2 = mk_load(&mut g, 1, 1, X);
        let a = mk_store(&mut g, 1, 2, Y, 9); // would-be mutual successor
        order(&mut g, l1, a);
        order(&mut g, l2, a);
        observe(&mut g, s, l1);
        observe(&mut g, s, l2);
        let added = enforce(&mut g).unwrap();
        assert_eq!(added, 0);
    }
}
