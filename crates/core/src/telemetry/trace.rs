//! Distributed tracing spans: dependency-free building blocks for
//! following one request across threads, processes, and cluster nodes.
//!
//! A *trace* is a tree of *spans* sharing one 64-bit trace id. Each
//! span has its own span id, its parent's span id (0 for a root), a
//! name, a [`SpanKind`], a wall-clock start, a monotonic duration, and
//! a small set of key/value attributes. Spans cross process boundaries
//! as a [`TraceContext`] — a compact `trace-span` hex pair the wire
//! protocol carries in a `trace` field — and are recorded into a
//! [`SpanSink`]:
//!
//! * [`TraceRing`] — a fixed-capacity ring buffer whose write cursor is
//!   a single atomic `fetch_add`; writers never contend on a global
//!   lock (each slot is independently locked and uncontended except
//!   when the ring wraps onto an in-flight writer).
//! * [`SpanWriter`] — renders each span as one JSONL line into any
//!   [`super::EventSink`] (a rotating [`super::JsonlLog`] in
//!   production, [`super::MemorySink`] in tests).
//!
//! Parsing a wire context is *lenient by design*: any malformed
//! `trace` value decodes to `None` and the receiver starts a fresh
//! root span — tracing must never turn a valid request into an error.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use super::{jsonl_event, EventSink, FieldValue};

/// The propagated identity of a span: enough for a remote callee to
/// attach its own spans under the caller's. Wire form is
/// `"<trace:016x>-<span:016x>"` (see [`TraceContext::encode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit trace id shared by every span of the trace.
    pub trace: u64,
    /// The sender's span id — the parent of whatever the receiver
    /// opens.
    pub span: u64,
}

impl TraceContext {
    /// Renders the wire form: two 16-digit lowercase hex words joined
    /// by `-`.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}", self.trace, self.span)
    }

    /// Parses the wire form. Returns `None` — never an error — for
    /// anything malformed: wrong shape, bad hex, or a zero id (0 is
    /// the in-band "no parent" marker).
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (trace, span) = s.split_once('-')?;
        if trace.len() != 16 || span.len() != 16 {
            return None;
        }
        let trace = u64::from_str_radix(trace, 16).ok()?;
        let span = u64::from_str_radix(span, 16).ok()?;
        if trace == 0 || span == 0 {
            return None;
        }
        Some(TraceContext { trace, span })
    }
}

/// What role a span plays in the request path, mirroring the usual
/// tracing vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An outbound request as seen by its originator.
    Client,
    /// An inbound request as seen by its server.
    Server,
    /// Work inside one process (engine phases, cache lookups).
    Internal,
}

impl SpanKind {
    /// The JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Client => "client",
            SpanKind::Server => "server",
            SpanKind::Internal => "internal",
        }
    }
}

/// One attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// A static string (span vocabulary: kind names, outcome labels).
    /// Zero-allocation — the common case on the hot path.
    Static(&'static str),
    /// An owned string (node ids, request ids).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
}

impl From<&'static str> for Attr {
    fn from(v: &'static str) -> Attr {
        Attr::Static(v)
    }
}

impl From<String> for Attr {
    fn from(v: String) -> Attr {
        Attr::Str(v)
    }
}

impl From<u64> for Attr {
    fn from(v: u64) -> Attr {
        Attr::U64(v)
    }
}

impl From<bool> for Attr {
    fn from(v: bool) -> Attr {
        Attr::Bool(v)
    }
}

/// A finished span, ready for a sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace id shared by the whole tree.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Span name — the flamegraph frame label.
    pub name: &'static str,
    /// Role in the request path.
    pub kind: SpanKind,
    /// Wall-clock start (nanoseconds since the UNIX epoch). Only used
    /// for cross-node ordering; durations come from a monotonic clock.
    pub start_unix_ns: u64,
    /// Monotonic duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value attributes, in insertion order. Keys must not collide
    /// with the fixed JSONL fields (`trace`, `span`, `parent`, `name`,
    /// `kind`, `start_ns`, `dur_ns`).
    pub attrs: Vec<(&'static str, Attr)>,
}

impl SpanRecord {
    /// Renders the span as one flat JSONL line (no trailing newline):
    /// the fixed fields first, then every attribute as its own member.
    pub fn to_jsonl(&self) -> String {
        let trace = format!("{:016x}", self.trace);
        let span = format!("{:016x}", self.span);
        let parent = format!("{:016x}", self.parent);
        let mut fields: Vec<(&str, FieldValue<'_>)> = vec![
            ("trace", FieldValue::Str(&trace)),
            ("span", FieldValue::Str(&span)),
            ("parent", FieldValue::Str(&parent)),
            ("name", FieldValue::Str(self.name)),
            ("kind", FieldValue::Str(self.kind.name())),
            ("start_ns", FieldValue::U64(self.start_unix_ns)),
            ("dur_ns", FieldValue::U64(self.dur_ns)),
        ];
        for (key, value) in &self.attrs {
            fields.push((
                key,
                match value {
                    Attr::Static(s) => FieldValue::Str(s),
                    Attr::Str(s) => FieldValue::Str(s),
                    Attr::U64(n) => FieldValue::U64(*n),
                    Attr::Bool(b) => FieldValue::Bool(*b),
                },
            ));
        }
        jsonl_event(&fields)
    }
}

/// A destination for finished spans. Implementations must be cheap and
/// infallible on the hot path — tracing never takes a request down.
pub trait SpanSink: Send + Sync + fmt::Debug {
    /// Records one finished span.
    fn record_span(&self, span: SpanRecord);
}

/// Process-unique nonzero ids: a monotone counter mixed through
/// SplitMix64 with a per-process seed (start time ⊕ pid), so ids are
/// unique across the cluster without coordination or an RNG
/// dependency.
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32) | 1
    });
    let mut z = seed.wrapping_add(
        COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    z | 1 // nonzero: 0 is the "no parent" marker
}

fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// A span being timed: created at its start, finished into a sink.
/// Creation is a handful of word writes plus one `Instant::now()`; the
/// attribute vector only allocates when attributes are added.
#[derive(Debug)]
pub struct ActiveSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    kind: SpanKind,
    start_unix_ns: u64,
    started: Instant,
    attrs: Vec<(&'static str, Attr)>,
}

impl ActiveSpan {
    fn start(trace: u64, parent: u64, name: &'static str, kind: SpanKind) -> ActiveSpan {
        ActiveSpan {
            trace,
            span: next_id(),
            parent,
            name,
            kind,
            start_unix_ns: unix_now_ns(),
            started: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Opens a root span of a brand-new trace.
    pub fn root(name: &'static str, kind: SpanKind) -> ActiveSpan {
        ActiveSpan::start(next_id(), 0, name, kind)
    }

    /// Opens a span under a propagated remote context.
    pub fn continue_trace(ctx: TraceContext, name: &'static str, kind: SpanKind) -> ActiveSpan {
        ActiveSpan::start(ctx.trace, ctx.span, name, kind)
    }

    /// Opens a child of this span (same trace).
    pub fn child(&self, name: &'static str, kind: SpanKind) -> ActiveSpan {
        ActiveSpan::start(self.trace, self.span, name, kind)
    }

    /// The context a callee should parent its spans under.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: self.span,
        }
    }

    /// This span's id.
    pub fn id(&self) -> u64 {
        self.span
    }

    /// Adds one attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<Attr>) {
        self.attrs.push((key, value.into()));
    }

    /// Stamps the duration and hands the finished record to `sink`.
    pub fn finish(self, sink: &dyn SpanSink) {
        let record = self.into_record();
        sink.record_span(record);
    }

    /// Stamps the duration and returns the record without recording it
    /// (for callers that batch or decorate records themselves).
    pub fn into_record(self) -> SpanRecord {
        SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            kind: self.kind,
            start_unix_ns: self.start_unix_ns,
            dur_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            attrs: self.attrs,
        }
    }

    /// Builds an already-finished child span with an explicit duration —
    /// how measured sub-phases (e.g. the engine's closure/settle timers)
    /// are attached to a live parent after the fact.
    pub fn synthetic_child(
        &self,
        name: &'static str,
        dur_ns: u64,
        attrs: Vec<(&'static str, Attr)>,
    ) -> SpanRecord {
        SpanRecord {
            trace: self.trace,
            span: next_id(),
            parent: self.span,
            name,
            kind: SpanKind::Internal,
            start_unix_ns: self.start_unix_ns,
            dur_ns,
            attrs,
        }
    }
}

/// A lock-free-cursor ring buffer of the most recent spans. Recording
/// claims a slot with one atomic `fetch_add` and takes only that
/// slot's lock; the ring keeps the last `capacity` spans and counts
/// everything older as overwritten.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` (≥ 1) spans.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Spans recorded over the ring's lifetime (including overwritten
    /// ones).
    pub fn recorded(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let end = self.cursor.load(Ordering::Acquire);
        let len = self.slots.len();
        let first = end.saturating_sub(len);
        (first..end)
            .filter_map(|i| self.slots[i % len].lock().expect("ring poisoned").clone())
            .collect()
    }
}

impl SpanSink for TraceRing {
    fn record_span(&self, span: SpanRecord) {
        let slot = self.cursor.fetch_add(1, Ordering::AcqRel) % self.slots.len();
        *self.slots[slot].lock().expect("ring poisoned") = Some(span);
    }
}

/// Adapts any [`EventSink`] into a [`SpanSink`] by rendering each span
/// as one JSONL line — the production exporter over a rotating
/// [`super::JsonlLog`].
#[derive(Debug)]
pub struct SpanWriter {
    sink: std::sync::Arc<dyn EventSink>,
}

impl SpanWriter {
    /// Wraps `sink`; the `Arc` lets tests keep a reading handle.
    pub fn new(sink: std::sync::Arc<dyn EventSink>) -> SpanWriter {
        SpanWriter { sink }
    }
}

impl SpanSink for SpanWriter {
    fn record_span(&self, span: SpanRecord) {
        self.sink.emit(&span.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MemorySink;
    use std::sync::Arc;

    #[test]
    fn context_round_trips_and_rejects_garbage() {
        let ctx = TraceContext {
            trace: 0x1234_5678_9abc_def0,
            span: 0x0fed_cba9_8765_4321,
        };
        assert_eq!(TraceContext::parse(&ctx.encode()), Some(ctx));
        for bad in [
            "",
            "zzz",
            "1234",
            "123-456",
            "123456789abcdef0-nothexnothexnoth",
            "0000000000000000-0000000000000001",
            "0000000000000001-0000000000000000",
            "123456789abcdef0123456789abcdef0",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:x}");
        }
    }

    #[test]
    fn spans_nest_and_serialize() {
        let ring = TraceRing::new(8);
        let mut root = ActiveSpan::root("client", SpanKind::Client);
        root.attr("req", "enumerate");
        let ctx = root.context();
        let server = ActiveSpan::continue_trace(ctx, "server", SpanKind::Server);
        let child = server.child("enumerate", SpanKind::Internal);
        let phase = server.synthetic_child("phase:closure", 120, vec![("rounds", Attr::U64(3))]);
        assert_eq!(phase.parent, server.id());
        assert_eq!(phase.dur_ns, 120);
        child.finish(&ring);
        ring.record_span(phase);
        server.finish(&ring);
        root.finish(&ring);

        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        let trace = spans[0].trace;
        assert!(spans.iter().all(|s| s.trace == trace), "one trace");
        let root_rec = spans.iter().find(|s| s.name == "client").unwrap();
        assert_eq!(root_rec.parent, 0);
        let server_rec = spans.iter().find(|s| s.name == "server").unwrap();
        assert_eq!(server_rec.parent, root_rec.span);
        let child_rec = spans.iter().find(|s| s.name == "enumerate").unwrap();
        assert_eq!(child_rec.parent, server_rec.span);

        let line = root_rec.to_jsonl();
        assert!(line.contains("\"name\":\"client\""));
        assert!(line.contains("\"kind\":\"client\""));
        assert!(line.contains("\"req\":\"enumerate\""));
        assert!(line.contains("\"parent\":\"0000000000000000\""));
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            let mut span = ActiveSpan::root("s", SpanKind::Internal);
            span.attr("i", i);
            span.finish(&ring);
        }
        assert_eq!(ring.recorded(), 10);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        let kept: Vec<u64> = spans
            .iter()
            .map(|s| match &s.attrs[0].1 {
                Attr::U64(n) => *n,
                other => panic!("unexpected attr {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn span_writer_emits_jsonl() {
        let sink = Arc::new(MemorySink::new());
        let writer = SpanWriter::new(Arc::clone(&sink) as Arc<dyn EventSink>);
        ActiveSpan::root("server", SpanKind::Server).finish(&writer);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"trace\":\""));
        assert!(lines[0].contains("\"dur_ns\":"));
    }
}
