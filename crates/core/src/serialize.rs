//! Serializability of executions (paper section 3.1).
//!
//! A *serialization* of an execution is a total order `<` on all Load and
//! Store operations such that
//!
//! 1. `A ≺ B ⇒ A < B` — local instruction ordering is respected;
//! 2. `source(L) < L` — a load executes after the store it observes;
//! 3. `¬∃ S =ₐ L. source(L) < S < L` — no intervening overwriting store.
//!
//! Conditions 2 and 3 together say a serialization is exactly an
//! interleaving that *replays* correctly on a single atomic memory. This
//! module searches for witnesses by backtracking over topological orders of
//! the **base** ordering (local `≺` edges plus observation edges — Store
//! Atomicity edges deliberately excluded) while simulating the atomic
//! memory, so that the central theorem of the paper — an execution closed
//! under Store Atomicity without cycles is serializable, and vice versa —
//! can be *tested* rather than assumed (see the property tests in
//! `tests/`).
//!
//! TSO-bypassed loads observe their source before it is globally visible;
//! such executions genuinely violate memory atomicity and correctly report
//! "not serializable" here (the paper's Figure 10).

use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;

use crate::closure::Closure;
use crate::exec::Behavior;
use crate::graph::EdgeKind;
use crate::ids::{Addr, NodeId};

/// Why a proposed serialization is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SerializationError {
    /// The order does not contain exactly the memory operations of the
    /// execution.
    WrongOperations,
    /// Local ordering violated: `first ≺ second` but `second` was placed
    /// earlier.
    LocalOrderViolated {
        /// The `≺`-earlier operation.
        first: NodeId,
        /// The `≺`-later operation.
        second: NodeId,
    },
    /// A load was placed when the most recent same-address store was not
    /// its source (violates condition 2 or 3).
    SourceNotMostRecent {
        /// The offending load.
        load: NodeId,
    },
}

impl fmt::Display for SerializationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializationError::WrongOperations => {
                write!(f, "order must contain each memory operation exactly once")
            }
            SerializationError::LocalOrderViolated { first, second } => {
                write!(f, "local ordering violated: {first} must precede {second}")
            }
            SerializationError::SourceNotMostRecent { load } => write!(
                f,
                "{load} does not observe the most recent store to its address"
            ),
        }
    }
}

impl StdError for SerializationError {}

/// The base ordering of an execution: every recorded edge except the
/// derived Store Atomicity edges and the non-`@` bypass edges, closed
/// transitively.
fn base_closure(behavior: &Behavior) -> Option<Closure> {
    let graph = behavior.graph();
    let mut closure = Closure::new();
    for _ in 0..graph.len() {
        closure.add_node();
    }
    for edge in graph.edges() {
        match edge.kind {
            EdgeKind::Atomicity | EdgeKind::Bypass => {}
            EdgeKind::Program
            | EdgeKind::Data
            | EdgeKind::AddrResolve
            | EdgeKind::Alias
            | EdgeKind::Source
            | EdgeKind::Init => {
                if closure.add_edge(edge.from, edge.to).is_err() {
                    return None;
                }
            }
        }
    }
    Some(closure)
}

/// State for the backtracking search over serializations.
struct Search<'a> {
    behavior: &'a Behavior,
    base: Closure,
    mem_ops: Vec<NodeId>,
    /// Remaining budget of search steps; guards against pathological
    /// graphs.
    budget: usize,
}

impl Search<'_> {
    /// Depth-first search: extend `prefix` with every currently legal
    /// operation. Returns `true` to stop early (used by `find`).
    fn dfs(
        &mut self,
        placed: &mut Vec<NodeId>,
        placed_mask: &mut Vec<bool>,
        last_store: &mut HashMap<Addr, NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) -> bool {
        if self.budget == 0 {
            return true;
        }
        self.budget -= 1;
        if placed.len() == self.mem_ops.len() {
            out.push(placed.clone());
            return out.len() >= limit;
        }
        for i in 0..self.mem_ops.len() {
            let op = self.mem_ops[i];
            if placed_mask[i] {
                continue;
            }
            // All base-order predecessors among memory ops must be placed.
            let ready = self
                .base
                .predecessors(op)
                .iter()
                .map(NodeId::new)
                .filter(|p| self.behavior.graph().node(*p).is_memory())
                .all(|p| {
                    let idx = self
                        .mem_ops
                        .iter()
                        .position(|&m| m == p)
                        .expect("memory op");
                    placed_mask[idx]
                });
            if !ready {
                continue;
            }
            let node = self.behavior.graph().node(op);
            let addr = node.addr().expect("complete execution has addresses");
            // Replay on an atomic memory. A node may have a load facet
            // (the most recent store must be its source), a store facet
            // (it becomes the most recent store), or — for successful
            // RMWs — both, atomically.
            if node.is_load() && last_store.get(&addr).copied() != node.source() {
                continue;
            }
            let writes = node.is_store();
            let prev = if writes {
                last_store.insert(addr, op)
            } else {
                None
            };
            placed.push(op);
            placed_mask[i] = true;
            if self.dfs(placed, placed_mask, last_store, out, limit) {
                return true;
            }
            placed.pop();
            placed_mask[i] = false;
            if writes {
                match prev {
                    Some(p) => last_store.insert(addr, p),
                    None => last_store.remove(&addr),
                };
            }
        }
        false
    }
}

/// Enumerates serializations of a complete behaviour, up to `limit`.
///
/// Returns orders over the memory operations (loads and stores, including
/// initial stores). An empty result means the execution is not serializable
/// (e.g. a genuine TSO bypass execution) or the search budget was
/// exhausted.
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn serializations(behavior: &Behavior, limit: usize) -> Vec<Vec<NodeId>> {
    assert!(
        behavior.is_complete(),
        "serializations need a complete behaviour"
    );
    let Some(base) = base_closure(behavior) else {
        return Vec::new();
    };
    let mem_ops: Vec<NodeId> = behavior.graph().memory_ops().collect();
    let n = mem_ops.len();
    let mut search = Search {
        behavior,
        base,
        mem_ops,
        budget: 2_000_000,
    };
    let mut out = Vec::new();
    search.dfs(
        &mut Vec::with_capacity(n),
        &mut vec![false; n],
        &mut HashMap::new(),
        &mut out,
        limit,
    );
    out
}

/// Finds one serialization, if any exists.
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn find_serialization(behavior: &Behavior) -> Option<Vec<NodeId>> {
    serializations(behavior, 1).into_iter().next()
}

/// Whether the execution has at least one serialization.
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn is_serializable(behavior: &Behavior) -> bool {
    find_serialization(behavior).is_some()
}

/// Validates a proposed serialization against the three conditions of
/// section 3.1.
///
/// # Errors
///
/// Returns the first violated condition.
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn validate_serialization(
    behavior: &Behavior,
    order: &[NodeId],
) -> Result<(), SerializationError> {
    assert!(
        behavior.is_complete(),
        "validation needs a complete behaviour"
    );
    let graph = behavior.graph();
    let mut expected: Vec<NodeId> = graph.memory_ops().collect();
    expected.sort();
    let mut given: Vec<NodeId> = order.to_vec();
    given.sort();
    given.dedup();
    if expected != given {
        return Err(SerializationError::WrongOperations);
    }

    // Condition 1 (and 2): the base order must be respected.
    let base = base_closure(behavior).ok_or(SerializationError::WrongOperations)?;
    let position: HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &op)| (op, i)).collect();
    for &op in order {
        for p in base.predecessors(op).iter().map(NodeId::new) {
            if graph.node(p).is_memory() && position[&p] > position[&op] {
                return Err(SerializationError::LocalOrderViolated {
                    first: p,
                    second: op,
                });
            }
        }
    }

    // Conditions 2 + 3 via atomic-memory replay (RMWs check their load
    // facet and apply their store facet at the same position).
    let mut last_store: HashMap<Addr, NodeId> = HashMap::new();
    for &op in order {
        let node = graph.node(op);
        let addr = node.addr().expect("complete execution has addresses");
        if node.is_load() && last_store.get(&addr).copied() != node.source() {
            return Err(SerializationError::SourceNotMostRecent { load: op });
        }
        if node.is_store() {
            last_store.insert(addr, op);
        }
    }
    Ok(())
}

// --- TSO witnesses ------------------------------------------------------
//
// A TSO execution that uses the store-buffer bypass has no serialization
// in the strict sense above (that is Figure 10's point). It does have a
// *TSO witness*: a total memory order in which every load reads the most
// recent same-address store — except that a load may instead forward from
// the newest same-thread program-order-earlier store that has not yet
// reached memory (i.e. is placed later in the order). This is the
// standard x86-TSO/SPARC-TSO axiomatization, implemented as a replay with
// the forwarding exception.

/// State for the TSO-witness backtracking search.
struct TsoSearch<'a> {
    behavior: &'a Behavior,
    base: Closure,
    mem_ops: Vec<NodeId>,
    budget: usize,
}

impl TsoSearch<'_> {
    /// The newest same-thread, same-address store program-order-before
    /// `load` that has not been placed yet (still "in the buffer").
    fn pending_local_store(
        &self,
        load: NodeId,
        addr: Addr,
        placed_mask: &[bool],
    ) -> Option<NodeId> {
        let graph = self.behavior.graph();
        let l = graph.node(load);
        let mut best: Option<(u32, NodeId)> = None;
        for (i, &op) in self.mem_ops.iter().enumerate() {
            if placed_mask[i] {
                continue;
            }
            let n = graph.node(op);
            if n.is_store()
                && n.thread() == l.thread()
                && n.addr() == Some(addr)
                && n.index_in_thread() < l.index_in_thread()
                && best.is_none_or(|(idx, _)| n.index_in_thread() > idx)
            {
                best = Some((n.index_in_thread(), op));
            }
        }
        best.map(|(_, op)| op)
    }

    fn dfs(
        &mut self,
        placed: &mut Vec<NodeId>,
        placed_mask: &mut Vec<bool>,
        last_store: &mut HashMap<Addr, NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) -> bool {
        if self.budget == 0 {
            return true;
        }
        self.budget -= 1;
        if placed.len() == self.mem_ops.len() {
            out.push(placed.clone());
            return out.len() >= limit;
        }
        for i in 0..self.mem_ops.len() {
            let op = self.mem_ops[i];
            if placed_mask[i] {
                continue;
            }
            let ready = self
                .base
                .predecessors(op)
                .iter()
                .map(NodeId::new)
                .filter(|p| self.behavior.graph().node(*p).is_memory())
                .all(|p| {
                    let idx = self
                        .mem_ops
                        .iter()
                        .position(|&m| m == p)
                        .expect("memory op");
                    placed_mask[idx]
                });
            if !ready {
                continue;
            }
            let node = self.behavior.graph().node(op);
            let addr = node.addr().expect("complete execution has addresses");
            if node.is_load() {
                let expected = match self.pending_local_store(op, addr, placed_mask) {
                    // Forwarding is mandatory while a local same-address
                    // store is pending. RMWs never forward: they wait for
                    // the same-address entry to drain, so a pending store
                    // blocks placing the RMW here at all.
                    Some(pending) if node.is_rmw() => {
                        let _ = pending;
                        continue;
                    }
                    Some(pending) => Some(pending),
                    None => last_store.get(&addr).copied(),
                };
                if expected != node.source() {
                    continue;
                }
            }
            let writes = node.is_store();
            let prev = if writes {
                last_store.insert(addr, op)
            } else {
                None
            };
            placed.push(op);
            placed_mask[i] = true;
            if self.dfs(placed, placed_mask, last_store, out, limit) {
                return true;
            }
            placed.pop();
            placed_mask[i] = false;
            if writes {
                match prev {
                    Some(p) => last_store.insert(addr, p),
                    None => last_store.remove(&addr),
                };
            }
        }
        false
    }
}

/// Enumerates TSO witnesses of a complete behaviour produced under
/// [`Policy::tso`](crate::policy::Policy::tso) (or any stronger model), up
/// to `limit`.
///
/// The base ordering is taken from the execution's own local edges, so
/// this is only meaningful for executions enumerated under TSO-or-stronger
/// policies; weak-model executions lack the load→load edges TSO requires.
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn tso_serializations(behavior: &Behavior, limit: usize) -> Vec<Vec<NodeId>> {
    assert!(
        behavior.is_complete(),
        "TSO witnesses need a complete behaviour"
    );
    let Some(base) = base_closure(behavior) else {
        return Vec::new();
    };
    let mem_ops: Vec<NodeId> = behavior.graph().memory_ops().collect();
    let n = mem_ops.len();
    let mut search = TsoSearch {
        behavior,
        base,
        mem_ops,
        budget: 2_000_000,
    };
    let mut out = Vec::new();
    search.dfs(
        &mut Vec::with_capacity(n),
        &mut vec![false; n],
        &mut HashMap::new(),
        &mut out,
        limit,
    );
    out
}

/// Whether a TSO-model execution has a TSO witness (it always should; see
/// the integration tests).
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn is_tso_serializable(behavior: &Behavior) -> bool {
    !tso_serializations(behavior, 1).is_empty()
}

/// Validates a proposed TSO witness: the base order must be respected and
/// the order must replay on an atomic memory *with the store-buffer
/// forwarding exception* — a load whose same-thread, same-address,
/// program-earlier store appears later in the order forwards from that
/// (newest such) pending store instead of memory; forwarding is mandatory
/// while such a store is pending, and RMWs never forward.
///
/// # Errors
///
/// Returns the first violated condition, mirroring
/// [`validate_serialization`].
///
/// # Panics
///
/// Panics if the behaviour is not complete.
pub fn validate_tso_serialization(
    behavior: &Behavior,
    order: &[NodeId],
) -> Result<(), SerializationError> {
    assert!(
        behavior.is_complete(),
        "validation needs a complete behaviour"
    );
    let graph = behavior.graph();
    let mut expected: Vec<NodeId> = graph.memory_ops().collect();
    expected.sort();
    let mut given: Vec<NodeId> = order.to_vec();
    given.sort();
    given.dedup();
    if expected != given {
        return Err(SerializationError::WrongOperations);
    }

    let base = base_closure(behavior).ok_or(SerializationError::WrongOperations)?;
    let position: HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &op)| (op, i)).collect();
    for &op in order {
        for p in base.predecessors(op).iter().map(NodeId::new) {
            if graph.node(p).is_memory() && position[&p] > position[&op] {
                return Err(SerializationError::LocalOrderViolated {
                    first: p,
                    second: op,
                });
            }
        }
    }

    // Replay with the forwarding exception: the newest same-thread,
    // same-address, program-earlier store placed *later* in the order is
    // still "in the buffer" and must be the load's source.
    let mut last_store: HashMap<Addr, NodeId> = HashMap::new();
    for (i, &op) in order.iter().enumerate() {
        let node = graph.node(op);
        let addr = node.addr().expect("complete execution has addresses");
        if node.is_load() {
            let pending = order[i + 1..]
                .iter()
                .map(|&later| (later, graph.node(later)))
                .filter(|(_, n)| {
                    n.is_store()
                        && n.thread() == node.thread()
                        && n.addr() == Some(addr)
                        && n.index_in_thread() < node.index_in_thread()
                })
                .max_by_key(|(_, n)| n.index_in_thread())
                .map(|(later, _)| later);
            let expected = match pending {
                // RMWs never forward: a pending same-address local store
                // makes this placement illegal outright.
                Some(_) if node.is_rmw() => {
                    return Err(SerializationError::SourceNotMostRecent { load: op })
                }
                Some(pending) => Some(pending),
                None => last_store.get(&addr).copied(),
            };
            if expected != node.source() {
                return Err(SerializationError::SourceNotMostRecent { load: op });
            }
        }
        if node.is_store() {
            last_store.insert(addr, op);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumConfig};
    use crate::ids::Reg;
    use crate::instr::{Instr, Program, ThreadProgram};
    use crate::policy::Policy;

    const X: u64 = 0;
    const Y: u64 = 1;
    const Z: u64 = 2;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    fn sb() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ])
    }

    #[test]
    fn every_weak_execution_is_serializable() {
        let r = enumerate(&sb(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(!r.executions.is_empty());
        for exec in &r.executions {
            let order =
                find_serialization(exec).expect("store-atomic executions must be serializable");
            validate_serialization(exec, &order).expect("witness must validate");
        }
    }

    #[test]
    fn every_sc_execution_is_serializable() {
        let r = enumerate(
            &sb(),
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
        )
        .unwrap();
        for exec in &r.executions {
            let order = find_serialization(exec).expect("SC executions are serializable");
            validate_serialization(exec, &order).unwrap();
        }
    }

    #[test]
    fn tso_bypass_execution_is_not_serializable() {
        // A Figure-10-style program: each thread stores a flag, reads it
        // back (bypass), then reads the other thread's variable. The
        // "both flags forwarded, both remote reads stale" execution obeys
        // TSO but violates memory atomicity.
        let w = 3; // flag address
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), st(w, 3), ld(0, w), ld(1, Y)]),
            ThreadProgram::new(vec![st(Y, 5), st(w, 8), ld(0, w), ld(1, X)]),
        ]);
        let r = enumerate(&prog, &Policy::tso(), &EnumConfig::default()).unwrap();
        let mut saw_double_bypass_stale = false;
        for exec in &r.executions {
            let has_bypass = exec.graph().iter().any(|(_, n)| n.is_bypass_source());
            if !has_bypass {
                assert!(
                    is_serializable(exec),
                    "store-atomic TSO executions must serialize"
                );
                continue;
            }
            let o = exec.outcome();
            let both_forwarded = o.reg(0, Reg::new(0)) == crate::ids::Value::new(3)
                && o.reg(1, Reg::new(0)) == crate::ids::Value::new(8);
            let both_stale = o.reg(0, Reg::new(1)) == crate::ids::Value::ZERO
                && o.reg(1, Reg::new(1)) == crate::ids::Value::ZERO;
            if both_forwarded && both_stale {
                saw_double_bypass_stale = true;
                assert!(
                    !is_serializable(exec),
                    "the double-bypass execution violates memory atomicity (Figure 10)"
                );
            }
        }
        assert!(
            saw_double_bypass_stale,
            "TSO must allow the Figure-10 execution"
        );
    }

    #[test]
    fn every_tso_execution_has_a_tso_witness() {
        // Including the bypassing ones that have no strict serialization.
        let w = 3;
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), st(w, 3), ld(0, w), ld(1, Y)]),
            ThreadProgram::new(vec![st(Y, 5), st(w, 8), ld(0, w), ld(1, X)]),
        ]);
        let r = enumerate(&prog, &Policy::tso(), &EnumConfig::default()).unwrap();
        let mut bypassing = 0;
        for exec in &r.executions {
            assert!(
                is_tso_serializable(exec),
                "TSO execution without a TSO witness: {}",
                exec.outcome()
            );
            if exec.graph().iter().any(|(_, n)| n.is_bypass_source()) {
                bypassing += 1;
            }
        }
        assert!(bypassing > 0, "the program must exercise the bypass");
    }

    #[test]
    fn sc_executions_are_also_tso_serializable() {
        let r = enumerate(
            &sb(),
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
        )
        .unwrap();
        for exec in &r.executions {
            assert!(is_tso_serializable(exec));
        }
    }

    #[test]
    fn tso_witness_respects_forwarding_of_newest_store() {
        // S x,1 ; S x,2 ; L x — the load forwards 2; a witness exists and
        // any witness places the load's observation consistently.
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 1), st(X, 2), ld(0, X)])]);
        let r = enumerate(&prog, &Policy::tso(), &EnumConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        for exec in &r.executions {
            let witnesses = tso_serializations(exec, 100);
            assert!(!witnesses.is_empty());
        }
    }

    #[test]
    fn one_graph_represents_many_serializations() {
        // Three independent single-store threads: one execution graph, but
        // with loads absent the three stores interleave freely.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1)]),
            ThreadProgram::new(vec![st(Y, 1)]),
            ThreadProgram::new(vec![st(Z, 1)]),
        ]);
        let r = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(r.executions.len(), 1, "no loads, so one execution");
        let orders = serializations(&r.executions[0], 1000);
        // 3 program stores interleave in 3! ways; init stores add more,
        // but at minimum the 6 program-store orders must appear.
        assert!(orders.len() >= 6, "found {}", orders.len());
        for order in &orders {
            validate_serialization(&r.executions[0], order).unwrap();
        }
    }

    #[test]
    fn validation_rejects_local_order_violation() {
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 1), st(X, 2), ld(0, X)])]);
        let r = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        let exec = &r.executions[0];
        let good = find_serialization(exec).unwrap();
        validate_serialization(exec, &good).unwrap();
        // Swap the two program stores: violates the same-address edge.
        let mut bad = good.clone();
        let stores: Vec<usize> = bad
            .iter()
            .enumerate()
            .filter(|(_, &id)| {
                let n = exec.graph().node(id);
                n.is_store() && !n.is_init()
            })
            .map(|(i, _)| i)
            .collect();
        bad.swap(stores[0], stores[1]);
        assert!(validate_serialization(exec, &bad).is_err());
    }

    #[test]
    fn validation_rejects_wrong_operation_sets() {
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 1)])]);
        let r = enumerate(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        let exec = &r.executions[0];
        assert_eq!(
            validate_serialization(exec, &[]),
            Err(SerializationError::WrongOperations)
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SerializationError::SourceNotMostRecent {
            load: crate::ids::NodeId::new(3),
        };
        assert!(e.to_string().contains("n3"));
        let e2 = SerializationError::LocalOrderViolated {
            first: crate::ids::NodeId::new(1),
            second: crate::ids::NodeId::new(2),
        };
        assert!(e2.to_string().contains("n1"));
    }
}
