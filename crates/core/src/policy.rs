//! Instruction-reordering axioms: memory models as constraint tables.
//!
//! Paper section 2: a memory model in this framework is parameterized by a
//! table (Figure 1) saying, for every ordered pair of instruction classes in
//! one thread, whether the later instruction may be reordered before the
//! earlier one. The table entries are:
//!
//! * blank — the pair may always be reordered ([`Constraint::Free`]);
//! * `indep` — ordered only by data dependence ([`Constraint::DataOnly`];
//!   operationally identical to `Free` because dataflow execution always
//!   respects data dependencies, but kept distinct so the printed table
//!   matches the paper);
//! * `never` — the pair may never be reordered ([`Constraint::Never`]);
//! * `x ≠ y` — reorderable only when the two memory addresses differ
//!   ([`Constraint::SameAddr`]); the paper has exactly three such entries,
//!   (Load, Store), (Store, Load) and (Store, Store), which keep
//!   single-threaded execution deterministic;
//! * [`Constraint::Bypass`] — the TSO extension of section 6: a later Load
//!   may pass an earlier same-address Store *by observing it early from the
//!   store pipeline*; the resulting "gray" edge does not participate in `@`.
//!
//! The table rows/columns are indexed by [`OpClass`]. A [`Policy`] bundles a
//! table with a name and an address-speculation flag (section 5).

use std::fmt;

/// The five instruction classes of the paper's reordering table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Arithmetic and logic ("+, etc.").
    Compute,
    /// Conditional branch.
    Branch,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Memory fence.
    Fence,
}

impl OpClass {
    /// All classes, in table order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Compute,
        OpClass::Branch,
        OpClass::Load,
        OpClass::Store,
        OpClass::Fence,
    ];

    /// Dense index of this class within [`OpClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::Compute => 0,
            OpClass::Branch => 1,
            OpClass::Load => 2,
            OpClass::Store => 3,
            OpClass::Fence => 4,
        }
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Compute => "+, etc.",
            OpClass::Branch => "Branch",
            OpClass::Load => "L",
            OpClass::Store => "S",
            OpClass::Fence => "Fence",
        };
        f.write_str(s)
    }
}

/// One entry of the reordering table: may instruction pair `(first, second)`
/// (in program order) be reordered?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// Blank entry: always reorderable.
    Free,
    /// "indep": ordered only through data dependencies.
    DataOnly,
    /// "never": a local `≺` edge is always inserted.
    Never,
    /// "x ≠ y": a `≺` edge is inserted when the two addresses are equal;
    /// additionally, in a non-speculative execution the later operation
    /// depends on the producer of the earlier operation's address
    /// (section 5.1).
    SameAddr,
    /// TSO store→load: same-address pairs may be satisfied by bypass; the
    /// ordering decision is deferred to load resolution (section 6).
    Bypass,
}

impl Constraint {
    /// Returns `true` when this entry involves address comparison
    /// (`SameAddr` or `Bypass`).
    #[inline]
    pub fn is_address_sensitive(self) -> bool {
        matches!(self, Constraint::SameAddr | Constraint::Bypass)
    }

    /// Syntactic strictness used by [`Policy::combined_constraint`]:
    /// `Never (3) > SameAddr (2) > Bypass (1) > DataOnly/Free (0)`.
    ///
    /// This is the order in which constraints *merge* when an operation
    /// carries several facets; it is not an observational comparison (see
    /// [`Constraint::observational_strength`]).
    #[inline]
    pub fn strength(self) -> u8 {
        match self {
            Constraint::Free | Constraint::DataOnly => 0,
            Constraint::Bypass => 1,
            Constraint::SameAddr => 2,
            Constraint::Never => 3,
        }
    }

    /// Observational strictness for strength-containment comparisons:
    /// `Never (2) > SameAddr = Bypass (1) > DataOnly = Free (0)`.
    ///
    /// `SameAddr` and `Bypass` share a level: both forbid reordering of
    /// different-address pairs never and same-address pairs always in
    /// terms of *observed values* — a bypassed load reads the very value
    /// the ordered load would. (They are not equivalent in general — the
    /// paper's Figure 11 separates real TSO from the naive `x ≠ y`
    /// variant via the store *pipeline* — so this comparison is a
    /// necessary condition checked by the linter, while the dynamic
    /// bracketing tests remain the semantic ground truth.)
    #[inline]
    pub fn observational_strength(self) -> u8 {
        match self {
            Constraint::Free | Constraint::DataOnly => 0,
            Constraint::Bypass | Constraint::SameAddr => 1,
            Constraint::Never => 2,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Constraint::Free => "",
            Constraint::DataOnly => "indep",
            Constraint::Never => "never",
            Constraint::SameAddr => "x != y",
            Constraint::Bypass => "bypass",
        };
        f.write_str(s)
    }
}

/// A full 5×5 reordering table: `entry(first, second)` constrains a pair
/// where `first` comes earlier in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintTable {
    entries: [[Constraint; 5]; 5],
}

impl ConstraintTable {
    /// Builds a table from explicit rows (row = earlier instruction class,
    /// in [`OpClass::ALL`] order).
    pub fn from_rows(entries: [[Constraint; 5]; 5]) -> Self {
        ConstraintTable { entries }
    }

    /// The constraint for the ordered pair `(first, second)`.
    #[inline]
    pub fn entry(&self, first: OpClass, second: OpClass) -> Constraint {
        self.entries[first.index()][second.index()]
    }

    /// Returns a copy with one entry replaced — convenient for building
    /// model variants.
    #[must_use]
    pub fn with_entry(mut self, first: OpClass, second: OpClass, c: Constraint) -> Self {
        self.entries[first.index()][second.index()] = c;
        self
    }

    /// Iterates over every `(first, second, constraint)` cell in
    /// [`OpClass::ALL`] order — row-major, 25 entries.
    pub fn cells(&self) -> impl Iterator<Item = (OpClass, OpClass, Constraint)> + '_ {
        OpClass::ALL.into_iter().flat_map(move |first| {
            OpClass::ALL
                .into_iter()
                .map(move |second| (first, second, self.entry(first, second)))
        })
    }

    /// Entry-wise observational containment over the memory-relevant
    /// cells (both classes among Load/Store/Fence): `true` when this
    /// table forbids at least as much reordering as `weaker` on every
    /// such cell, per [`Constraint::observational_strength`].
    ///
    /// Branch and compute cells are excluded — they govern speculation
    /// depth, not memory ordering, and differ benignly across the shipped
    /// chain (e.g. TSO frees `(Store, Branch)` so buffered stores can
    /// drain past branches).
    pub fn at_least_as_strong(&self, weaker: &ConstraintTable) -> bool {
        self.cells().all(|(first, second, mine)| {
            let memory_cell = matches!(first, OpClass::Load | OpClass::Store | OpClass::Fence)
                && matches!(second, OpClass::Load | OpClass::Store | OpClass::Fence);
            !memory_cell
                || mine.observational_strength()
                    >= weaker.entry(first, second).observational_strength()
        })
    }
}

impl fmt::Display for ConstraintTable {
    /// Renders the table in the layout of the paper's Figure 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<10}", "1st\\2nd")?;
        for c in OpClass::ALL {
            write!(f, "|{:^9}", c.to_string())?;
        }
        writeln!(f)?;
        for first in OpClass::ALL {
            write!(f, "{:<10}", first.to_string())?;
            for second in OpClass::ALL {
                write!(f, "|{:^9}", self.entry(first, second).to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A complete memory-model definition: a reordering table plus the
/// speculation mode.
///
/// Use the provided constructors for the models studied in the paper, or
/// [`Policy::custom`] to experiment ("it is easy to experiment with a broad
/// range of memory models simply by changing the requirements for
/// instruction reordering", section 8).
///
/// # Examples
///
/// ```
/// use samm_core::policy::{Constraint, OpClass, Policy};
///
/// let weak = Policy::weak();
/// assert_eq!(
///     weak.constraint(OpClass::Store, OpClass::Store),
///     Constraint::SameAddr
/// );
/// let spec = weak.with_alias_speculation(true);
/// assert!(spec.alias_speculation());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    name: String,
    table: ConstraintTable,
    alias_speculation: bool,
}

impl Policy {
    /// The paper's running example: the weak model of Figure 1, similar in
    /// spirit to PowerPC / SPARC RMO.
    ///
    /// Table notes (the published figure is reconstructed faithfully):
    /// exactly three `x ≠ y` entries — (L,S), (S,L), (S,S); `never` between
    /// every load/store and a fence in both directions; and `never` between
    /// stores and branches in both directions, so stores never cross an
    /// unresolved branch ("Stores after a speculative branch are not made
    /// visible until the speculation is resolved").
    pub fn weak() -> Self {
        use Constraint::{DataOnly as D, Free as F, Never as N, SameAddr as A};
        Policy {
            name: "Weak".to_owned(),
            table: ConstraintTable::from_rows([
                // second:  +  Branch  L  S  Fence      first:
                [D, D, D, D, F], // +, etc.
                [F, F, F, N, F], // Branch
                [D, D, F, A, N], // L y
                [D, N, A, A, N], // S y,w
                [F, F, N, N, F], // Fence
            ]),
            alias_speculation: false,
        }
    }

    /// Sequential Consistency: serializations respect full program order
    /// (Lamport). Every pair of branch/load/store/fence instructions is
    /// `never`-reorderable; compute instructions are ordered by data only.
    pub fn sequential_consistency() -> Self {
        use Constraint::{DataOnly as D, Never as N};
        let mut rows = [[N; 5]; 5];
        for (i, row) in rows.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i == OpClass::Compute.index() || j == OpClass::Compute.index() {
                    *cell = D;
                }
            }
        }
        Policy {
            name: "SC".to_owned(),
            table: ConstraintTable::from_rows(rows),
            alias_speculation: false,
        }
    }

    /// Total Store Order with the correct store-buffer bypass of section 6:
    /// the only relaxation over SC is that a later load may pass an earlier
    /// store; a same-address store→load pair is resolved by bypass (gray
    /// edge, excluded from `@`).
    ///
    /// A buffered store also passes later *branches* (the store drains
    /// whenever the bus allows, regardless of control flow), so
    /// `(Store, Branch)` is unconstrained — otherwise the chain
    /// `S ≺ branch ≺ L` would smuggle a store→load ordering back in.
    /// Branches still never pass stores the other way (no speculative
    /// stores).
    pub fn tso() -> Self {
        let mut p = Policy::sequential_consistency();
        p.name = "TSO".to_owned();
        p.table = p
            .table
            .with_entry(OpClass::Store, OpClass::Load, Constraint::Bypass)
            .with_entry(OpClass::Store, OpClass::Branch, Constraint::Free);
        p
    }

    /// The *incorrect* TSO variant of Figure 11 (center): store→load
    /// reordering is simply allowed, with an ordinary `x ≠ y` same-address
    /// edge and no bypass. This model forbids executions real TSO allows —
    /// it is included to reproduce the paper's demonstration that "simple
    /// globally-applicable reordering rules cannot precisely capture" TSO.
    pub fn naive_tso() -> Self {
        let mut p = Policy::sequential_consistency();
        p.name = "NaiveTSO".to_owned();
        p.table = p
            .table
            .with_entry(OpClass::Store, OpClass::Load, Constraint::SameAddr)
            .with_entry(OpClass::Store, OpClass::Branch, Constraint::Free);
        p
    }

    /// Partial Store Order: TSO plus store→store reordering to different
    /// addresses (per-address store FIFOs). An extension model used to
    /// bracket TSO between SC and the weak model.
    pub fn pso() -> Self {
        let mut p = Policy::tso();
        p.name = "PSO".to_owned();
        p.table = p
            .table
            .with_entry(OpClass::Store, OpClass::Store, Constraint::SameAddr);
        p
    }

    /// A custom model from an explicit table.
    pub fn custom(name: impl Into<String>, table: ConstraintTable) -> Self {
        Policy {
            name: name.into(),
            table,
            alias_speculation: false,
        }
    }

    /// Returns a copy with address-aliasing speculation switched on or off
    /// (paper section 5).
    ///
    /// Non-speculative executions insert the subtle ordering dependency from
    /// the producer of each earlier potentially-aliasing operation's address
    /// (the `L6 ≺ L8` edge of Figure 9); speculative executions omit it and
    /// instead roll back forks that turn out to violate Store Atomicity.
    #[must_use]
    pub fn with_alias_speculation(mut self, enabled: bool) -> Self {
        self.alias_speculation = enabled;
        if enabled && !self.name.ends_with("+spec") {
            self.name.push_str("+spec");
        }
        self
    }

    /// The model's display name ("SC", "TSO", "Weak", "Weak+spec", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reordering table.
    pub fn table(&self) -> &ConstraintTable {
        &self.table
    }

    /// The constraint for a program-ordered pair of instruction classes.
    #[inline]
    pub fn constraint(&self, first: OpClass, second: OpClass) -> Constraint {
        self.table.entry(first, second)
    }

    /// Whether address-aliasing speculation is enabled.
    #[inline]
    pub fn alias_speculation(&self) -> bool {
        self.alias_speculation
    }

    /// The strongest constraint over all facet combinations of two
    /// (possibly composite) operations — e.g. an atomic RMW carries both
    /// `[Load, Store]` facets. Strictness order:
    /// `Never > SameAddr > Bypass > DataOnly/Free`.
    pub fn combined_constraint(&self, first: &[OpClass], second: &[OpClass]) -> Constraint {
        let mut strongest = Constraint::Free;
        for &a in first {
            for &b in second {
                let c = self.constraint(a, b);
                strongest = match (strongest, c) {
                    (_, Constraint::Never) | (Constraint::Never, _) => Constraint::Never,
                    (_, Constraint::SameAddr) | (Constraint::SameAddr, _) => Constraint::SameAddr,
                    (_, Constraint::Bypass) | (Constraint::Bypass, _) => Constraint::Bypass,
                    _ => strongest,
                };
            }
        }
        strongest
    }

    /// Whether this model's table is observationally at least as strong
    /// as `weaker`'s on every memory-relevant cell; see
    /// [`ConstraintTable::at_least_as_strong`]. The shipped chain
    /// satisfies `SC ⊒ TSO ⊒ PSO ⊒ Weak`.
    pub fn at_least_as_strong(&self, weaker: &Policy) -> bool {
        self.table.at_least_as_strong(&weaker.table)
    }

    /// Whether the table contains any [`Constraint::Bypass`] entry (i.e. the
    /// model is non-atomic in the TSO sense).
    pub fn has_bypass(&self) -> bool {
        OpClass::ALL.iter().any(|&a| {
            OpClass::ALL
                .iter()
                .any(|&b| self.constraint(a, b) == Constraint::Bypass)
        })
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Constraint::*;

    #[test]
    fn weak_table_matches_figure_1() {
        let p = Policy::weak();
        use OpClass::*;
        // The three x != y entries.
        assert_eq!(p.constraint(Load, Store), SameAddr);
        assert_eq!(p.constraint(Store, Load), SameAddr);
        assert_eq!(p.constraint(Store, Store), SameAddr);
        // Load-load to the same address is NOT constrained in the figure.
        assert_eq!(p.constraint(Load, Load), Free);
        // Fences order against all loads and stores, both directions.
        assert_eq!(p.constraint(Load, Fence), Never);
        assert_eq!(p.constraint(Store, Fence), Never);
        assert_eq!(p.constraint(Fence, Load), Never);
        assert_eq!(p.constraint(Fence, Store), Never);
        // Fence-fence is unconstrained (ordered transitively in practice).
        assert_eq!(p.constraint(Fence, Fence), Free);
        // Stores may not cross branches in either direction.
        assert_eq!(p.constraint(Branch, Store), Never);
        assert_eq!(p.constraint(Store, Branch), Never);
        // Loads speculate past branches.
        assert_eq!(p.constraint(Branch, Load), Free);
        // Compute rows are data-only.
        assert_eq!(p.constraint(Compute, Store), DataOnly);
        assert_eq!(p.constraint(Load, Compute), DataOnly);
    }

    #[test]
    fn weak_has_exactly_three_same_addr_entries() {
        let p = Policy::weak();
        let mut count = 0;
        for &a in &OpClass::ALL {
            for &b in &OpClass::ALL {
                if p.constraint(a, b) == SameAddr {
                    count += 1;
                }
            }
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn sc_orders_all_memory_pairs() {
        let p = Policy::sequential_consistency();
        use OpClass::*;
        for a in [Branch, Load, Store, Fence] {
            for b in [Branch, Load, Store, Fence] {
                assert_eq!(p.constraint(a, b), Never, "{a} then {b}");
            }
        }
        assert_eq!(p.constraint(Compute, Load), DataOnly);
        assert_eq!(p.constraint(Store, Compute), DataOnly);
        assert!(!p.has_bypass());
    }

    #[test]
    fn tso_relaxes_only_store_load() {
        let p = Policy::tso();
        use OpClass::*;
        assert_eq!(p.constraint(Store, Load), Bypass);
        assert_eq!(p.constraint(Load, Store), Never);
        assert_eq!(p.constraint(Store, Store), Never);
        assert_eq!(p.constraint(Load, Load), Never);
        // Buffered stores pass later branches; branches never pass stores.
        assert_eq!(p.constraint(Store, Branch), Free);
        assert_eq!(p.constraint(Branch, Store), Never);
        assert!(p.has_bypass());
    }

    #[test]
    fn naive_tso_uses_plain_same_addr_edge() {
        let p = Policy::naive_tso();
        assert_eq!(p.constraint(OpClass::Store, OpClass::Load), SameAddr);
        assert!(!p.has_bypass());
    }

    #[test]
    fn pso_also_relaxes_store_store() {
        let p = Policy::pso();
        assert_eq!(p.constraint(OpClass::Store, OpClass::Store), SameAddr);
        assert_eq!(p.constraint(OpClass::Store, OpClass::Load), Bypass);
    }

    #[test]
    fn speculation_flag_renames_model() {
        let p = Policy::weak().with_alias_speculation(true);
        assert!(p.alias_speculation());
        assert_eq!(p.name(), "Weak+spec");
        // Toggling twice does not double the suffix.
        let p2 = p.clone().with_alias_speculation(true);
        assert_eq!(p2.name(), "Weak+spec");
    }

    #[test]
    fn table_display_resembles_figure_1() {
        let s = Policy::weak().table().to_string();
        assert!(s.contains("never"));
        assert!(s.contains("x != y"));
        assert!(s.contains("+, etc."));
        // Five data rows plus the header.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn with_entry_replaces_single_cell() {
        let t = Policy::weak()
            .table()
            .with_entry(OpClass::Load, OpClass::Load, Never);
        assert_eq!(t.entry(OpClass::Load, OpClass::Load), Never);
        // Everything else untouched.
        assert_eq!(t.entry(OpClass::Load, OpClass::Store), SameAddr);
    }

    #[test]
    fn op_class_index_round_trips() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Fence.is_memory());
    }

    #[test]
    fn constraint_address_sensitivity() {
        assert!(SameAddr.is_address_sensitive());
        assert!(Bypass.is_address_sensitive());
        assert!(!Never.is_address_sensitive());
        assert!(!Free.is_address_sensitive());
    }

    #[test]
    fn cells_visits_all_25_entries_in_row_major_order() {
        let t = *Policy::weak().table();
        let cells: Vec<_> = t.cells().collect();
        assert_eq!(cells.len(), 25);
        assert_eq!(cells[0], (OpClass::Compute, OpClass::Compute, DataOnly));
        assert_eq!(
            cells[OpClass::Store.index() * 5 + OpClass::Load.index()],
            (OpClass::Store, OpClass::Load, SameAddr)
        );
    }

    #[test]
    fn shipped_chain_is_monotonically_strong() {
        let chain = [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
            Policy::weak(),
        ];
        for pair in chain.windows(2) {
            assert!(
                pair[0].at_least_as_strong(&pair[1]),
                "{} should be at least as strong as {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        // The weak model is strictly weaker than SC, not just incomparable.
        assert!(!Policy::weak().at_least_as_strong(&Policy::sequential_consistency()));
    }

    #[test]
    fn strength_orders_match_combined_constraint_merge() {
        assert!(Never.strength() > SameAddr.strength());
        assert!(SameAddr.strength() > Bypass.strength());
        assert!(Bypass.strength() > Free.strength());
        assert_eq!(Free.strength(), DataOnly.strength());
        // Observationally, bypass and the x != y edge coincide.
        assert_eq!(
            Bypass.observational_strength(),
            SameAddr.observational_strength()
        );
    }

    #[test]
    fn custom_policy_keeps_name_and_table() {
        let t = ConstraintTable::from_rows([[Free; 5]; 5]);
        let p = Policy::custom("anything-goes", t);
        assert_eq!(p.name(), "anything-goes");
        assert_eq!(p.constraint(OpClass::Store, OpClass::Store), Free);
    }
}
