//! The well-synchronized programming discipline (paper section 8).
//!
//! "We can say a program is *well synchronized* if for every load of a
//! non-synchronization variable there is exactly one eligible store which
//! can provide its value according to Store Atomicity." This generalizes
//! Adve & Hill's Proper Synchronization to arbitrary synchronization
//! mechanisms: when a program obeys the discipline, it behaves identically
//! under much weaker memory models.
//!
//! [`check_well_synchronized`] replays the enumeration of
//! [`mod@crate::enumerate`] and records, for every *static* load site, the
//! maximum number of candidate stores any of its dynamic instances ever
//! had. Loads of designated synchronization addresses are exempt.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::enumerate::EnumConfig;
use crate::error::EnumError;
use crate::exec::{Behavior, StepError};
use crate::ids::Addr;
use crate::instr::Program;
use crate::policy::Policy;

/// A static load site: `(thread, issue index within the thread)`.
pub type LoadSite = (usize, u32);

/// Result of the well-synchronized check.
#[derive(Debug, Clone, Default)]
pub struct SyncReport {
    /// Per load site: the maximum candidate count observed across all
    /// enumerated behaviours (sync-variable loads excluded).
    pub max_candidates: BTreeMap<LoadSite, usize>,
    /// Load sites that had more than one eligible store at some resolution
    /// point — the discipline violations.
    pub racy_loads: Vec<LoadSite>,
    /// Behaviours explored.
    pub explored: usize,
}

impl SyncReport {
    /// Whether the program satisfies the discipline.
    pub fn is_well_synchronized(&self) -> bool {
        self.racy_loads.is_empty()
    }
}

/// Checks the well-synchronized discipline for `program` under `policy`.
///
/// `sync_addrs` lists the synchronization variables (flags, locks); loads
/// of those addresses may legitimately race and are not reported.
///
/// # Errors
///
/// Propagates the same failures as [`crate::enumerate::enumerate`].
pub fn check_well_synchronized(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    sync_addrs: &BTreeSet<Addr>,
) -> Result<SyncReport, EnumError> {
    let may_roll_back = policy.alias_speculation() || policy.has_bypass() || program.uses_rmw();
    let mut report = SyncReport::default();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut frontier: Vec<Behavior> = Vec::new();

    let mut root = Behavior::new(program);
    match root.settle(program, policy, config.max_nodes_per_thread) {
        Ok(()) => {}
        Err(StepError::NodeLimit { thread, limit }) => {
            return Err(EnumError::NodeLimit { thread, limit })
        }
        Err(StepError::Inconsistent(e)) => return Err(EnumError::UnexpectedCycle(e)),
    }
    seen.insert(root.canonical_key());
    frontier.push(root);

    let mut racy: BTreeSet<LoadSite> = BTreeSet::new();

    while let Some(behavior) = frontier.pop() {
        report.explored += 1;
        if report.explored > config.max_behaviors {
            return Err(EnumError::BehaviorLimit {
                limit: config.max_behaviors,
            });
        }
        if behavior.is_complete() {
            continue;
        }
        let loads = behavior.resolvable_loads();
        if loads.is_empty() {
            return Err(EnumError::Stuck);
        }
        for load in loads {
            let node = behavior.graph().node(load);
            let site: LoadSite = (node.thread().index(), node.index_in_thread());
            let addr = node.addr().expect("resolvable load has an address");
            let candidates = behavior.candidates(load);
            if !sync_addrs.contains(&addr) {
                let entry = report.max_candidates.entry(site).or_insert(0);
                *entry = (*entry).max(candidates.len());
                if candidates.len() > 1 {
                    racy.insert(site);
                }
            }
            for store in candidates {
                let mut fork = behavior.clone();
                let step = fork
                    .resolve_load(load, store)
                    .and_then(|()| fork.settle(program, policy, config.max_nodes_per_thread));
                match step {
                    Ok(()) => {
                        if seen.insert(fork.canonical_key()) {
                            frontier.push(fork);
                        }
                    }
                    Err(StepError::Inconsistent(e)) => {
                        if !may_roll_back {
                            return Err(EnumError::UnexpectedCycle(e));
                        }
                    }
                    Err(StepError::NodeLimit { thread, limit }) => {
                        return Err(EnumError::NodeLimit { thread, limit })
                    }
                }
            }
        }
    }

    report.racy_loads = racy.into_iter().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, Value};
    use crate::instr::{Instr, Operand, ThreadProgram};

    const DATA: u64 = 0;
    const FLAG: u64 = 1;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    /// Producer/consumer with a spin-free flag handshake: the consumer
    /// branches on the flag and only reads data when it is set.
    fn message_passing_guarded() -> Program {
        let producer = ThreadProgram::new(vec![st(DATA, 42), Instr::Fence, st(FLAG, 1)]);
        // if flag == 0 skip the data read
        let consumer = ThreadProgram::new(vec![
            ld(0, FLAG),
            Instr::Binop {
                dst: Reg::new(1),
                op: crate::instr::BinOp::Eq,
                lhs: Operand::Reg(Reg::new(0)),
                rhs: 0u64.into(),
            },
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(1)),
                target: 5,
            },
            Instr::Fence,
            ld(2, DATA),
        ]);
        Program::new(vec![producer, consumer])
    }

    #[test]
    fn guarded_mp_is_well_synchronized() {
        let sync: BTreeSet<Addr> = [Addr::new(FLAG)].into_iter().collect();
        let report = check_well_synchronized(
            &message_passing_guarded(),
            &Policy::weak(),
            &EnumConfig::default(),
            &sync,
        )
        .unwrap();
        assert!(
            report.is_well_synchronized(),
            "racy loads: {:?}",
            report.racy_loads
        );
        // The data load appears with exactly one candidate whenever it runs.
        assert!(report.max_candidates.iter().all(|(_, &max)| max <= 1));
    }

    #[test]
    fn unguarded_mp_is_racy() {
        let producer = ThreadProgram::new(vec![st(DATA, 42), Instr::Fence, st(FLAG, 1)]);
        let consumer = ThreadProgram::new(vec![ld(0, FLAG), Instr::Fence, ld(2, DATA)]);
        let prog = Program::new(vec![producer, consumer]);
        let sync: BTreeSet<Addr> = [Addr::new(FLAG)].into_iter().collect();
        let report =
            check_well_synchronized(&prog, &Policy::weak(), &EnumConfig::default(), &sync).unwrap();
        assert!(!report.is_well_synchronized());
        assert_eq!(report.racy_loads, vec![(1, 2)], "the data load races");
    }

    #[test]
    fn sync_exemption_silences_flag_races() {
        // Without the exemption the flag load itself is racy.
        let prog = message_passing_guarded();
        let report = check_well_synchronized(
            &prog,
            &Policy::weak(),
            &EnumConfig::default(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(!report.is_well_synchronized());
        assert!(
            report.racy_loads.contains(&(1, 0)),
            "flag load races without exemption"
        );
    }

    #[test]
    fn single_threaded_code_is_trivially_well_synchronized() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            st(DATA, 1),
            ld(0, DATA),
            st(DATA, 2),
            ld(1, DATA),
        ])]);
        let report = check_well_synchronized(
            &prog,
            &Policy::weak(),
            &EnumConfig::default(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(report.is_well_synchronized());
        let _ = Value::ZERO;
    }
}
