//! Address-aliasing speculation analysis (paper section 5).
//!
//! Speculation differs from mere reordering in that it can *go wrong*. The
//! framework captures aliasing speculation by dropping the subtle
//! address-disambiguation dependencies of a non-speculative machine (the
//! [`EdgeKind::AddrResolve`](crate::graph::EdgeKind) edges) and rolling
//! back any fork whose late-inserted alias edge violates Store Atomicity.
//!
//! The paper's headline observation — reproduced by [`compare`] and by the
//! Figure 8/9 experiment — is that speculation admits *new* behaviours that
//! no non-speculative execution can produce, even though those behaviours
//! are consistent with the reordering table. "Memory models therefore ought
//! to permit this form of speculation."

use crate::enumerate::{enumerate, EnumConfig, EnumResult};
use crate::error::EnumError;
use crate::instr::Program;
use crate::outcome::{Outcome, OutcomeSet};
use crate::policy::Policy;

/// Side-by-side enumeration of a program with and without address-aliasing
/// speculation.
#[derive(Debug, Clone)]
pub struct SpeculationReport {
    /// Enumeration under the plain (non-speculative) policy.
    pub base: EnumResult,
    /// Enumeration with aliasing speculation enabled.
    pub speculative: EnumResult,
}

impl SpeculationReport {
    /// Outcomes only reachable speculatively — the "new behaviours" of
    /// section 5.2.
    pub fn new_outcomes(&self) -> OutcomeSet {
        self.speculative
            .outcomes
            .difference(&self.base.outcomes)
            .cloned()
            .collect()
    }

    /// The paper's safety direction: every non-speculative behaviour
    /// remains valid under speculation ("the original non-speculative
    /// behavior remains valid in a speculative setting").
    pub fn base_is_subset(&self) -> bool {
        self.base.outcomes.is_subset(&self.speculative.outcomes)
    }

    /// Whether speculation strictly enlarged the behaviour set.
    pub fn speculation_adds_behaviors(&self) -> bool {
        !self.new_outcomes().is_empty()
    }

    /// Outcomes of the speculative run that were rolled back at least once
    /// on some path are not directly observable; this returns the rollback
    /// count as a proxy for wasted speculative work.
    pub fn rollbacks(&self) -> usize {
        self.speculative.stats.rolled_back
    }
}

/// Enumerates `program` under `policy` with speculation off and on.
///
/// The supplied policy's speculation flag is overridden in both directions,
/// so any base policy works.
///
/// # Errors
///
/// Propagates enumeration failures from either run.
///
/// # Examples
///
/// ```
/// use samm_core::speculation::compare;
/// use samm_core::enumerate::EnumConfig;
/// use samm_core::instr::{Instr, Program, ThreadProgram};
/// use samm_core::ids::Reg;
/// use samm_core::policy::Policy;
///
/// let prog = Program::new(vec![ThreadProgram::new(vec![
///     Instr::Store { addr: 0u64.into(), val: 1u64.into() },
///     Instr::Load { dst: Reg::new(0), addr: 0u64.into() },
/// ])]);
/// let report = compare(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
/// assert!(report.base_is_subset());
/// ```
pub fn compare(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
) -> Result<SpeculationReport, EnumError> {
    let base_policy = policy.clone().with_alias_speculation(false);
    let spec_policy = policy.clone().with_alias_speculation(true);
    let base = enumerate(program, &base_policy, config)?;
    let speculative = enumerate(program, &spec_policy, config)?;
    Ok(SpeculationReport { base, speculative })
}

/// Convenience predicate: does `outcome` require speculation under
/// `policy`?
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn outcome_requires_speculation(
    program: &Program,
    policy: &Policy,
    config: &EnumConfig,
    outcome: &Outcome,
) -> Result<bool, EnumError> {
    let report = compare(program, policy, config)?;
    Ok(report.speculative.outcomes.contains(outcome) && !report.base.outcomes.contains(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, Value};
    use crate::instr::{Instr, Operand, ThreadProgram};

    // Addresses for the Figure 8 pointer scenario. `x` holds a pointer.
    const X: u64 = 100;
    const Y: u64 = 200;
    const W: u64 = 300;
    const Z: u64 = 400;

    /// The program of Figure 8.
    ///
    /// Thread A: S1 x,w; fence; S2 y,2; S4 y,4; fence; S5 x,z.
    /// Thread B: L3 y; fence; r6 = L6 x; S7 [r6],7; r8 = L8 y.
    fn figure_8() -> Program {
        let a = ThreadProgram::new(vec![
            Instr::Store {
                addr: X.into(),
                val: W.into(),
            },
            Instr::Fence,
            Instr::Store {
                addr: Y.into(),
                val: 2u64.into(),
            },
            Instr::Store {
                addr: Y.into(),
                val: 4u64.into(),
            },
            Instr::Fence,
            Instr::Store {
                addr: X.into(),
                val: Z.into(),
            },
        ]);
        let b = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(3),
                addr: Y.into(),
            },
            Instr::Fence,
            Instr::Load {
                dst: Reg::new(6),
                addr: X.into(),
            },
            Instr::Store {
                addr: Operand::Reg(Reg::new(6)),
                val: 7u64.into(),
            },
            Instr::Load {
                dst: Reg::new(8),
                addr: Y.into(),
            },
        ]);
        Program::new(vec![a, b])
    }

    /// The outcome of Figure 9 (right): L3 y = 2, L6 x = z, L8 y = 2.
    fn new_speculative_outcome(o: &Outcome) -> bool {
        o.reg(1, Reg::new(3)) == Value::new(2)
            && o.reg(1, Reg::new(6)) == Value::new(Z)
            && o.reg(1, Reg::new(8)) == Value::new(2)
    }

    #[test]
    fn figure_8_speculation_admits_new_behavior() {
        let report = compare(&figure_8(), &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(
            report.base_is_subset(),
            "speculation must not lose behaviours"
        );
        assert!(
            report.speculative.outcomes.any(new_speculative_outcome),
            "the speculative model must allow L8 y = 2 when L6 x = z"
        );
        assert!(
            !report.base.outcomes.any(new_speculative_outcome),
            "non-speculative execution forbids L8 y = 2 with L6 x = z (L6 ≺ L8)"
        );
        assert!(report.speculation_adds_behaviors());
    }

    #[test]
    fn straight_line_program_gains_nothing() {
        // Constant addresses leave nothing to disambiguate.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: X.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: Y.into(),
                },
            ]),
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: Y.into(),
                    val: 1u64.into(),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: X.into(),
                },
            ]),
        ]);
        let report = compare(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(report.base.outcomes, report.speculative.outcomes);
        assert!(!report.speculation_adds_behaviors());
    }

    #[test]
    fn aliasing_forks_are_rolled_back() {
        // A pointer that *does* alias: speculation explores the miss and
        // rolls it back. Thread A publishes a pointer to y in x; thread B
        // stores through it and reloads y.
        let mut prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: X.into(),
            },
            Instr::Store {
                addr: Operand::Reg(Reg::new(0)),
                val: 7u64.into(),
            },
            Instr::Load {
                dst: Reg::new(1),
                addr: Y.into(),
            },
        ])]);
        prog.set_init(crate::ids::Addr::new(X), Value::new(Y));
        let report = compare(&prog, &Policy::weak(), &EnumConfig::default()).unwrap();
        // Single-threaded determinism must survive speculation: the final
        // load sees the store through the pointer.
        assert_eq!(report.base.outcomes, report.speculative.outcomes);
        assert_eq!(report.speculative.outcomes.len(), 1);
        let o = report.speculative.outcomes.iter().next().unwrap();
        assert_eq!(o.reg(0, Reg::new(1)), Value::new(7));
        assert!(
            report.rollbacks() > 0,
            "the speculative enumeration must have explored and rolled back the no-alias guess"
        );
    }

    #[test]
    fn outcome_requires_speculation_predicate() {
        let report = compare(&figure_8(), &Policy::weak(), &EnumConfig::default()).unwrap();
        let new_outcome = report
            .speculative
            .outcomes
            .iter()
            .find(|o| new_speculative_outcome(o))
            .cloned()
            .unwrap();
        assert!(outcome_requires_speculation(
            &figure_8(),
            &Policy::weak(),
            &EnumConfig::default(),
            &new_outcome
        )
        .unwrap());
    }
}
