//! A compact growable bit set used by the incremental transitive closure.
//!
//! The closure maintains one successor and one predecessor set per graph
//! node; execution graphs of litmus programs stay small (tens to a few
//! hundred nodes), so `Vec<u64>` rows give both simplicity and speed. This
//! module is deliberately minimal — it implements exactly the operations the
//! closure algebra in [`crate::closure`] needs.

use std::fmt;

const WORD_BITS: usize = 64;

/// A growable set of small `usize` values backed by a vector of 64-bit words.
///
/// # Examples
///
/// ```
/// use samm_core::bitset::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates an empty set with room for values below `bits` without
    /// reallocation.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
        }
    }

    /// Returns `true` when `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        match self.words.get(word) {
            Some(w) => (w >> (bit % WORD_BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Inserts `bit`; returns `true` if the set changed.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % WORD_BITS);
        let changed = self.words[word] & mask == 0;
        self.words[word] |= mask;
        changed
    }

    /// Removes `bit`; returns `true` if the set changed.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        match self.words.get_mut(word) {
            Some(w) => {
                let mask = 1u64 << (bit % WORD_BITS);
                let changed = *w & mask != 0;
                *w &= !mask;
                changed
            }
            None => false,
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds every element of `other` to `self`; returns `true` if `self`
    /// changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        // Accumulate newly-set bits word-wise instead of branching per
        // word: the loop body is a straight or/and/xor chain the compiler
        // can vectorize across the row.
        let mut added = 0u64;
        for (dst, &src) in self.words.iter_mut().zip(other.words.iter()) {
            added |= src & !*dst;
            *dst |= src;
        }
        added != 0
    }

    /// Returns `true` when every element of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Keeps only elements also present in `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, dst) in self.words.iter_mut().enumerate() {
            *dst &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns the intersection of two sets as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Writes the intersection of two sets into `out`, reusing its
    /// storage (for hot loops that intersect many pairs).
    pub fn intersection_into(&self, other: &BitSet, out: &mut BitSet) {
        out.words.clear();
        out.words.extend(
            self.words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b),
        );
    }

    /// Makes `self` an exact copy of `other`, reusing its storage.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Makes `self` the set encoded by `words`, reusing its storage.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        self.words.clear();
        self.words.extend_from_slice(words);
    }

    /// Returns `true` when `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Returns the backing words, least-significant word first. Trailing
    /// zero words may or may not be present; callers must not read
    /// meaning into the slice length.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// A borrowed, read-only view of a bit set backed by a word slice —
/// the row type of the arena-layout [`crate::closure::Closure`], where
/// per-node rows are slices of one flat matrix rather than owned
/// allocations. Mirrors the read-only half of [`BitSet`]'s API.
#[derive(Clone, Copy)]
pub struct BitSetRef<'a> {
    words: &'a [u64],
}

impl<'a> BitSetRef<'a> {
    /// Wraps a word slice (least-significant word first).
    pub fn from_words(words: &'a [u64]) -> Self {
        BitSetRef { words }
    }

    /// The backing words. Like [`BitSet::words`], trailing zero words
    /// carry no meaning.
    pub fn words(self) -> &'a [u64] {
        self.words
    }

    /// Returns `true` when `bit` is in the set.
    #[inline]
    pub fn contains(self, bit: usize) -> bool {
        self.words
            .get(bit / WORD_BITS)
            .is_some_and(|w| w >> (bit % WORD_BITS) & 1 != 0)
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements in the set.
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Writes the intersection with `other` into `out`, reusing its
    /// storage.
    pub fn intersection_into(self, other: BitSetRef<'_>, out: &mut BitSet) {
        out.words.clear();
        out.words.extend(
            self.words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b),
        );
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(self) -> Iter<'a> {
        Iter {
            words: self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for BitSetRef<'a> {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for bit in iter {
            s.insert(bit);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for bit in iter {
            self.insert(bit);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new();
        for bit in [0, 63, 64, 65, 127, 128, 1000] {
            assert!(s.insert(bit));
        }
        for bit in [0, 63, 64, 65, 127, 128, 1000] {
            assert!(s.contains(bit));
        }
        assert_eq!(s.len(), 7);
        assert!(!s.contains(999));
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let s: BitSet = [700usize, 3, 64, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 700]);
    }

    #[test]
    fn union_reports_change() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize, 300].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 300]);
    }

    #[test]
    fn intersection_and_intersects() {
        let a: BitSet = [1usize, 2, 65].into_iter().collect();
        let b: BitSet = [2usize, 65, 66].into_iter().collect();
        let c: BitSet = [400usize].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 65]);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn intersect_with_shorter_set_clears_tail() {
        let mut a: BitSet = [1usize, 600].into_iter().collect();
        let b: BitSet = [1usize].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn debug_is_nonempty() {
        let s: BitSet = [1usize].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        assert_eq!(format!("{:?}", BitSet::new()), "{}");
    }

    /// Exhaustive oracle over a small universe: every pair of subsets of
    /// `{0..6}` (placed at a word-straddling offset) must agree with the
    /// reference `BTreeSet` semantics for union, intersection, and subset.
    #[test]
    fn exhaustive_small_universe_matches_btreeset_oracle() {
        use std::collections::BTreeSet;
        // Offset 61 puts the universe across the first word boundary, so
        // the word-wise fast paths see mixed word counts.
        for offset in [0usize, 61] {
            for a_bits in 0u32..64 {
                for b_bits in 0u32..64 {
                    let expand = |bits: u32| -> BTreeSet<usize> {
                        (0..6)
                            .filter(|i| bits >> i & 1 == 1)
                            .map(|i| i + offset)
                            .collect()
                    };
                    let oa = expand(a_bits);
                    let ob = expand(b_bits);
                    let a: BitSet = oa.iter().copied().collect();
                    let b: BitSet = ob.iter().copied().collect();

                    let mut u = a.clone();
                    let changed = u.union_with(&b);
                    let ou: BTreeSet<usize> = oa.union(&ob).copied().collect();
                    assert_eq!(u.iter().collect::<BTreeSet<_>>(), ou);
                    assert_eq!(changed, ou != oa, "union change flag ({a_bits},{b_bits})");

                    let oi: BTreeSet<usize> = oa.intersection(&ob).copied().collect();
                    assert_eq!(a.intersection(&b).iter().collect::<BTreeSet<_>>(), oi);
                    assert_eq!(a.intersects(&b), !oi.is_empty());

                    assert_eq!(
                        a.is_subset(&b),
                        oa.is_subset(&ob),
                        "subset ({a_bits},{b_bits})"
                    );
                    assert_eq!(a.len(), oa.len());
                }
            }
        }
    }

    #[test]
    fn is_subset_handles_length_mismatch() {
        let small: BitSet = [1usize].into_iter().collect();
        let large: BitSet = [1usize, 700].into_iter().collect();
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(BitSet::new().is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn words_exposes_backing_storage() {
        let s: BitSet = [0usize, 64].into_iter().collect();
        assert_eq!(s.words(), &[1u64, 1u64]);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        // Two sets with the same elements should compare equal even if one
        // allocated more words at some point.
        let mut a = BitSet::new();
        a.insert(500);
        a.remove(500);
        a.insert(1);
        let b: BitSet = [1usize].into_iter().collect();
        // Note: representation with trailing zeros differs, so we compare via
        // membership rather than Eq here; Eq is word-wise.
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
