//! A compact growable bit set used by the incremental transitive closure.
//!
//! The closure maintains one successor and one predecessor set per graph
//! node; execution graphs of litmus programs stay small (tens to a few
//! hundred nodes), so `Vec<u64>` rows give both simplicity and speed. This
//! module is deliberately minimal — it implements exactly the operations the
//! closure algebra in [`crate::closure`] needs.

use std::fmt;

const WORD_BITS: usize = 64;

/// A growable set of small `usize` values backed by a vector of 64-bit words.
///
/// # Examples
///
/// ```
/// use samm_core::bitset::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates an empty set with room for values below `bits` without
    /// reallocation.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
        }
    }

    /// Returns `true` when `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        match self.words.get(word) {
            Some(w) => (w >> (bit % WORD_BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Inserts `bit`; returns `true` if the set changed.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % WORD_BITS);
        let changed = self.words[word] & mask == 0;
        self.words[word] |= mask;
        changed
    }

    /// Removes `bit`; returns `true` if the set changed.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        let word = bit / WORD_BITS;
        match self.words.get_mut(word) {
            Some(w) => {
                let mask = 1u64 << (bit % WORD_BITS);
                let changed = *w & mask != 0;
                *w &= !mask;
                changed
            }
            None => false,
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds every element of `other` to `self`; returns `true` if `self`
    /// changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, &src) in self.words.iter_mut().zip(other.words.iter()) {
            let before = *dst;
            *dst |= src;
            changed |= *dst != before;
        }
        changed
    }

    /// Keeps only elements also present in `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, dst) in self.words.iter_mut().enumerate() {
            *dst &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns the intersection of two sets as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `true` when `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for bit in iter {
            s.insert(bit);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for bit in iter {
            self.insert(bit);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new();
        for bit in [0, 63, 64, 65, 127, 128, 1000] {
            assert!(s.insert(bit));
        }
        for bit in [0, 63, 64, 65, 127, 128, 1000] {
            assert!(s.contains(bit));
        }
        assert_eq!(s.len(), 7);
        assert!(!s.contains(999));
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let s: BitSet = [700usize, 3, 64, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 700]);
    }

    #[test]
    fn union_reports_change() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize, 300].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 300]);
    }

    #[test]
    fn intersection_and_intersects() {
        let a: BitSet = [1usize, 2, 65].into_iter().collect();
        let b: BitSet = [2usize, 65, 66].into_iter().collect();
        let c: BitSet = [400usize].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 65]);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn intersect_with_shorter_set_clears_tail() {
        let mut a: BitSet = [1usize, 600].into_iter().collect();
        let b: BitSet = [1usize].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn debug_is_nonempty() {
        let s: BitSet = [1usize].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        assert_eq!(format!("{:?}", BitSet::new()), "{}");
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        // Two sets with the same elements should compare equal even if one
        // allocated more words at some point.
        let mut a = BitSet::new();
        a.insert(500);
        a.remove(500);
        a.insert(1);
        let b: BitSet = [1usize].into_iter().collect();
        // Note: representation with trailing zeros differs, so we compare via
        // membership rather than Eq here; Eq is word-wise.
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
