//! Readiness polling for the event-loop core: a zero-dependency
//! `epoll(7)` wrapper on Linux with a portable `poll(2)` fallback.
//!
//! The crate vendors nothing, so the two syscall surfaces are declared
//! directly with `extern "C"`. Both backends are level-triggered and
//! expose the same tiny [`Poller`] API: register a file descriptor with
//! a caller-chosen `u64` token, then [`Poller::wait`] reports which
//! tokens are readable/writable. The backend is selectable at runtime
//! (`samm-serve --poller poll`) so the fallback path stays tested on
//! Linux too.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness backend drives the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux `epoll(7)`. Construction fails on other platforms.
    Epoll,
    /// POSIX `poll(2)`. Works on every unix; O(n) per wait.
    Poll,
}

impl PollerKind {
    /// The preferred backend for the build target.
    pub fn default_for_platform() -> PollerKind {
        if cfg!(target_os = "linux") {
            PollerKind::Epoll
        } else {
            PollerKind::Poll
        }
    }

    /// Parses a CLI spelling (`epoll` / `poll`).
    pub fn parse(text: &str) -> Option<PollerKind> {
        match text {
            "epoll" => Some(PollerKind::Epoll),
            "poll" => Some(PollerKind::Poll),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        }
    }
}

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Neither — the descriptor stays registered but silent (hangups
    /// are still reported; they cannot be masked).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// The descriptor is readable (or at EOF).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// Peer hangup or descriptor error; the owner should drain reads
    /// and close.
    pub hangup: bool,
}

/// A readiness poller: epoll-backed or poll-backed per [`PollerKind`].
#[derive(Debug)]
pub enum Poller {
    /// Linux epoll backend.
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    /// Portable poll backend.
    Poll(pollset::PollSet),
}

impl Poller {
    /// Constructs the requested backend.
    ///
    /// # Errors
    ///
    /// Fails when the backend is unavailable on this platform or the
    /// kernel refuses the epoll instance.
    pub fn new(kind: PollerKind) -> io::Result<Poller> {
        match kind {
            #[cfg(target_os = "linux")]
            PollerKind::Epoll => Ok(Poller::Epoll(epoll::Epoll::new()?)),
            #[cfg(not(target_os = "linux"))]
            PollerKind::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is Linux-only; use --poller poll",
            )),
            PollerKind::Poll => Ok(Poller::Poll(pollset::PollSet::new())),
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> PollerKind {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => PollerKind::Epoll,
            Poller::Poll(_) => PollerKind::Poll,
        }
    }

    /// Starts watching `fd`, reporting events with `token`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `epoll_ctl` failure; the poll backend
    /// only fails on a duplicate registration.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes what an already-registered `fd` is watched for.
    ///
    /// # Errors
    ///
    /// Fails when `fd` was never registered.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.modify(fd, token, interest),
            Poller::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Removing an unknown descriptor is a no-op —
    /// close paths call this unconditionally.
    pub fn deregister(&mut self, fd: RawFd) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until readiness or `timeout`, appending reports to
    /// `events` (cleared first). A `None` timeout blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures other than `EINTR` (which retries).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

/// The Linux `epoll(7)` backend.
#[cfg(target_os = "linux")]
pub mod epoll {
    use super::{Event, Interest};
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (12
    /// bytes, no padding after `events`); other architectures use the
    /// natural C layout. Fields are read by value only — a reference
    /// into a packed struct would be unaligned UB.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// An owned epoll instance plus its reusable event buffer.
    #[derive(Debug)]
    pub struct Epoll {
        epfd: c_int,
        buf: Vec<u64>, // raw storage; cast to EpollEvent at the FFI boundary
    }

    impl Epoll {
        const CAPACITY: usize = 256;

        /// Creates the instance with `EPOLL_CLOEXEC`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: no pointer arguments; the returned fd is owned
            // here and closed on drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // Each EpollEvent is at most 16 bytes; two u64 slots per
            // possible event keep the buffer aligned for either layout.
            Ok(Epoll {
                epfd,
                buf: vec![0u64; Self::CAPACITY * 2],
            })
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live
            // EpollEvent on our stack for the duration of the call.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Adds `fd` with `token`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl(ADD)` failure (e.g. already added).
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Rewrites the interest set for `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl(MOD)` failure (e.g. never added).
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Removes `fd`; unknown descriptors are ignored.
        pub fn deregister(&mut self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, None);
        }

        /// One `epoll_wait` round; `EINTR` retries.
        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let events_ptr = self.buf.as_mut_ptr().cast::<EpollEvent>();
            let n = loop {
                // SAFETY: `events_ptr` points at owned storage large
                // enough for CAPACITY EpollEvents and stays alive
                // across the call; maxevents matches that capacity.
                let n = unsafe {
                    epoll_wait(self.epfd, events_ptr, Self::CAPACITY as c_int, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for i in 0..n {
                // SAFETY: epoll_wait initialized the first `n` slots.
                let ev = unsafe { std::ptr::read_unaligned(events_ptr.add(i)) };
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: the fd was returned by epoll_create1 and is
            // closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

/// The portable `poll(2)` backend: a registration table rebuilt into a
/// `pollfd` array on every wait.
pub mod pollset {
    use super::{Event, Interest};
    use std::ffi::{c_int, c_short};
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_os = "linux")]
    type NFds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::ffi::c_uint;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    /// The registration table.
    #[derive(Debug, Default)]
    pub struct PollSet {
        entries: Vec<(RawFd, u64, Interest)>,
    }

    impl PollSet {
        /// An empty set.
        pub fn new() -> PollSet {
            PollSet::default()
        }

        /// Adds `fd` with `token`.
        ///
        /// # Errors
        ///
        /// Fails when `fd` is already registered.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        /// Rewrites the interest set for `fd`.
        ///
        /// # Errors
        ///
        /// Fails when `fd` was never registered.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Removes `fd`; unknown descriptors are ignored.
        pub fn deregister(&mut self, fd: RawFd) {
            self.entries.retain(|(f, _, _)| *f != fd);
        }

        /// One `poll` round; `EINTR` retries.
        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|(fd, _, interest)| {
                    let mut events: c_short = 0;
                    if interest.read {
                        events |= POLLIN;
                    }
                    if interest.write {
                        events |= POLLOUT;
                    }
                    PollFd {
                        fd: *fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            let n = loop {
                // SAFETY: `fds` is a live, correctly-sized pollfd
                // array for the duration of the call.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (slot, (_, token, _)) in fds.iter().zip(&self.entries) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    hangup: slot.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn kinds() -> Vec<PollerKind> {
        let mut kinds = vec![PollerKind::Poll];
        if cfg!(target_os = "linux") {
            kinds.push(PollerKind::Epoll);
        }
        kinds
    }

    #[test]
    fn readiness_round_trip_on_every_backend() {
        for kind in kinds() {
            let mut poller = Poller::new(kind).unwrap();
            assert_eq!(poller.kind(), kind);
            let (mut a, mut b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            // Nothing to read yet: a short wait reports no events.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: spurious event", kind.name());

            a.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}: expected one event", kind.name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 1);

            // Write interest on an empty socket buffer fires at once.
            poller.modify(b.as_raw_fd(), 7, Interest::WRITE).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.writable),
                "{}: expected writable",
                kind.name()
            );

            // Peer hangup surfaces as readable EOF and/or hangup.
            poller.modify(b.as_raw_fd(), 7, Interest::READ).unwrap();
            drop(a);
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.readable || e.hangup),
                "{}: expected EOF readiness",
                kind.name()
            );
            poller.deregister(b.as_raw_fd());
            poller.deregister(b.as_raw_fd()); // double-remove is a no-op
        }
    }

    #[test]
    fn poll_backend_rejects_duplicate_registration() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new(PollerKind::Poll).unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(poller.register(b.as_raw_fd(), 2, Interest::READ).is_err());
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in [PollerKind::Epoll, PollerKind::Poll] {
            assert_eq!(PollerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PollerKind::parse("io_uring"), None);
        assert!(matches!(
            PollerKind::default_for_platform(),
            PollerKind::Epoll | PollerKind::Poll
        ));
    }
}
