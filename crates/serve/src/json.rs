//! A minimal JSON value type, parser, and writer.
//!
//! The repository policy is no external dependencies (serde is not
//! available offline), and the wire protocol needs only a small JSON
//! subset: objects, arrays, strings, numbers, booleans and null. This
//! module implements exactly that, plus a [`Json::Raw`] escape hatch for
//! splicing pre-rendered JSON (the witness/refutation artifacts of
//! `samm_core::explain` and the hand-rolled `to_json` outputs of the
//! stats types) into a tree without re-parsing them.
//!
//! Numbers are kept as `f64` on parse — wire payloads carry counts and
//! small ids, all well inside the 2^53 exact-integer range — and
//! rendered without a trailing `.0` when integral.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see the module docs on integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are ordered for deterministic rendering.
    Obj(BTreeMap<String, Json>),
    /// Pre-rendered JSON spliced verbatim on write. Never produced by
    /// the parser.
    Raw(String),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Field lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|n| {
            (n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n)).then_some(n as u64)
        })
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
            Json::Raw(s) => f.write_str(s),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    // Strings are overwhelmingly escape-free; write the maximal clean
    // run as one slice instead of going through the formatter per char.
    f.write_str("\"")?;
    let mut rest = s;
    while let Some(i) = rest
        .bytes()
        .position(|b| b == b'"' || b == b'\\' || b < 0x20)
    {
        f.write_str(&rest[..i])?;
        match rest.as_bytes()[i] {
            b'"' => f.write_str("\\\"")?,
            b'\\' => f.write_str("\\\\")?,
            b'\n' => f.write_str("\\n")?,
            b'\r' => f.write_str("\\r")?,
            b'\t' => f.write_str("\\t")?,
            b => write!(f, "\\u{b:04x}")?,
        }
        rest = &rest[i + 1..];
    }
    f.write_str(rest)?;
    f.write_str("\"")
}

/// A JSON parse failure: a message plus the byte offset it was noticed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth bound: malformed deeply-nested input must not blow the
/// stack of a service worker.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            // Consume the maximal run free of delimiters and escapes as
            // one slice. The run can only end at an ASCII byte (`"`,
            // `\`, or a control byte), which never occurs inside a
            // multi-byte UTF-8 sequence, so the run is a complete,
            // checkable chunk — validating per run instead of per
            // character keeps parsing linear in the input size.
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                // The run above stops only at `"`, `\`, or a control
                // byte, so anything else here is a control character.
                Some(_) => return Err(self.error("control character in string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round trip of {text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""line\nquote\"tab\tslash\\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nquote\"tab\tslash\\");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        let u = parse(r#""éA""#).unwrap();
        assert_eq!(u.as_str().unwrap(), "éA");
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{'single':1}",
            "nan",
        ] {
            assert!(parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"kind":"enumerate","n":3,"flag":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("enumerate"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::obj([("stats", Json::Raw("{\"explored\":4}".into()))]);
        assert_eq!(v.to_string(), "{\"stats\":{\"explored\":4}}");
    }

    #[test]
    fn builders() {
        let v = Json::obj([
            ("name", Json::str("SB")),
            ("count", Json::num(4u32)),
            ("none", Json::Null),
        ]);
        assert_eq!(v.to_string(), "{\"count\":4,\"name\":\"SB\",\"none\":null}");
    }
}
