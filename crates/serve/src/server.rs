//! The threaded TCP server: bounded accept queue, worker pool, and
//! graceful drain.
//!
//! Architecture (std-only — no async runtime is vendored):
//!
//! ```text
//! acceptor thread ──► bounded VecDeque<TcpStream> ──► N worker threads
//!        │                    (Mutex + Condvar)             │
//!        │ queue full: reply "overloaded" + close           │ newline-delimited
//!        ▼                                                  ▼ JSON per connection
//!   TcpListener                                      handler::handle()
//! ```
//!
//! A worker owns one connection at a time and serves requests on it
//! until EOF, a read timeout, or a `shutdown` request. Shutdown raises
//! a flag, wakes every worker, and unblocks the acceptor with a
//! loopback self-connection; workers drain the queue before exiting, so
//! accepted connections are always answered.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use samm_core::cache::EnumCache;
use samm_core::telemetry::trace::SpanWriter;
use samm_core::telemetry::JsonlLog;

use crate::handler::{self, ServerState};
use crate::json::Json;
use crate::protocol::{parse_envelope, ErrorKind, Request, ServiceError};
use crate::telemetry::Telemetry;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS choose.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accepted connections waiting for a worker before new ones are
    /// rejected with an `overloaded` error.
    pub queue_capacity: usize,
    /// Idle-connection read timeout; an idle connection is closed when
    /// it elapses.
    pub read_timeout: Duration,
    /// Default per-request fork budget (requests may override).
    pub budget: Option<u64>,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Cache capacity per shard.
    pub cache_capacity: usize,
    /// When set, the cache is loaded from this file on start and saved
    /// back on drain.
    pub persist_path: Option<PathBuf>,
    /// Run enumerations instrumented, feeding the aggregated
    /// closure-rule counters in the exposition (≈ noise-level cost, see
    /// EXPERIMENTS E19/E22).
    pub observe: bool,
    /// When set, bind a plain-HTTP listener on this address serving the
    /// Prometheus exposition (`GET /metrics`).
    pub prom_addr: Option<String>,
    /// When set, append slow-query JSONL records to this file.
    pub slow_log: Option<PathBuf>,
    /// Requests at or over this duration are logged as slow.
    pub slow_threshold: Duration,
    /// Rotate the slow log after roughly this many bytes.
    pub slow_log_max_bytes: u64,
    /// When set, append one JSONL span record per finished trace span
    /// to this file (distributed tracing export; see
    /// docs/OBSERVABILITY.md).
    pub trace_log: Option<PathBuf>,
    /// Rotate the trace log after roughly this many bytes.
    pub trace_log_max_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            budget: None,
            cache_shards: 16,
            cache_capacity: 256,
            persist_path: None,
            observe: true,
            prom_addr: None,
            slow_log: None,
            slow_threshold: Duration::from_millis(100),
            slow_log_max_bytes: 16 * 1024 * 1024,
            trace_log: None,
            trace_log_max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// State shared between the acceptor, the workers, and the Prometheus
/// listener.
struct Shared {
    state: ServerState,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_capacity: usize,
    read_timeout: Duration,
    retry_after_ms: u64,
    prom_addr: Mutex<Option<SocketAddr>>,
}

impl Shared {
    /// Raises the shutdown flag and wakes everyone blocked on the
    /// queue, plus the Prometheus listener when one is running.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The lock round-trip orders the flag store against workers
        // about to sleep on the condvar.
        drop(self.queue.lock().expect("queue poisoned"));
        self.available.notify_all();
        if let Some(addr) = *self.prom_addr.lock().expect("prom addr poisoned") {
            wake_acceptor(addr);
        }
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`] or send a `shutdown` request and
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    prom_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    prom: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    persist_path: Option<PathBuf>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus HTTP address, when `prom_addr` was
    /// configured.
    pub fn prom_addr(&self) -> Option<SocketAddr> {
        self.prom_addr
    }

    /// Initiates a graceful drain (as if a `shutdown` request arrived)
    /// and waits for every thread to exit.
    ///
    /// # Errors
    ///
    /// Propagates cache persistence failures; thread panics surface as
    /// [`std::io::ErrorKind::Other`].
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shared.begin_shutdown();
        wake_acceptor(self.addr);
        self.join_inner()
    }

    /// Waits for the server to drain after an external `shutdown`
    /// request, then persists the cache when configured.
    ///
    /// # Errors
    ///
    /// As for [`ServerHandle::shutdown`].
    pub fn join(mut self) -> std::io::Result<()> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> std::io::Result<()> {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor
                .join()
                .map_err(|_| std::io::Error::other("acceptor thread panicked"))?;
        }
        if let Some(prom) = self.prom.take() {
            // The begin_shutdown wake-up may have raced the flag; nudge
            // the listener again now that shutdown is certainly set.
            if let Some(addr) = self.prom_addr {
                wake_acceptor(addr);
            }
            prom.join()
                .map_err(|_| std::io::Error::other("prom thread panicked"))?;
        }
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| std::io::Error::other("worker thread panicked"))?;
        }
        if let Some(path) = &self.persist_path {
            self.shared.state.cache.save_to(path)?;
        }
        Ok(())
    }
}

/// Unblocks a `TcpListener::accept` by completing one loopback
/// connection; the acceptor rechecks the shutdown flag afterwards.
pub(crate) fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// Wires the trace-log span exporter into `telemetry` when the config
/// asks for one: every finished span appends one JSONL line to a
/// rotating log (shared by the threaded and event cores).
pub(crate) fn attach_trace_log(
    telemetry: &mut Telemetry,
    config: &ServerConfig,
) -> std::io::Result<()> {
    if let Some(path) = &config.trace_log {
        let log = JsonlLog::open(path.clone(), config.trace_log_max_bytes)?;
        telemetry.spans = Some(Box::new(SpanWriter::new(Arc::new(log))));
    }
    Ok(())
}

/// Binds the listener and spawns the acceptor plus worker threads.
///
/// # Errors
///
/// Propagates bind failures. A configured persistence file that does
/// not exist yet is not an error (first run).
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = EnumCache::with_shards(config.cache_shards.max(1), config.cache_capacity.max(1));
    if let Some(path) = &config.persist_path {
        if path.exists() {
            cache.load_from(path)?;
        }
    }
    let mut telemetry = match &config.slow_log {
        Some(path) => Telemetry::with_slow_log(
            path.clone(),
            config.slow_threshold,
            config.slow_log_max_bytes,
        )?,
        None => Telemetry::default(),
    };
    attach_trace_log(&mut telemetry, &config)?;
    let prom_listener = config
        .prom_addr
        .as_deref()
        .map(TcpListener::bind)
        .transpose()?;
    let prom_addr = prom_listener
        .as_ref()
        .map(TcpListener::local_addr)
        .transpose()?;
    let shared = Arc::new(Shared {
        state: ServerState::with_telemetry(cache, config.budget, telemetry, config.observe),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_capacity: config.queue_capacity.max(1),
        read_timeout: config.read_timeout,
        retry_after_ms: 50,
        prom_addr: Mutex::new(prom_addr),
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("samm-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, addr))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("samm-serve-acceptor".to_owned())
            .spawn(move || acceptor_loop(&listener, &shared))?
    };

    let prom = prom_listener
        .map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("samm-serve-prom".to_owned())
                .spawn(move || prom_loop(&listener, &shared))
        })
        .transpose()?;

    Ok(ServerHandle {
        addr,
        prom_addr,
        shared,
        acceptor: Some(acceptor),
        prom,
        workers,
        persist_path: config.persist_path,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client); drop it and
            // stop accepting. Workers drain whatever is queued.
            return;
        }
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.queue_capacity {
            drop(queue);
            shared
                .state
                .counters
                .overloaded
                .fetch_add(1, Ordering::Relaxed);
            reject_overloaded(stream, shared.retry_after_ms);
        } else {
            queue.push_back(stream);
            let depth = queue.len() as u64;
            drop(queue);
            shared
                .state
                .telemetry
                .queue_depth
                .store(depth, Ordering::Relaxed);
            shared.available.notify_one();
        }
    }
}

/// Serves the Prometheus text exposition over bare HTTP/1.0: reads one
/// request head, answers `GET /metrics` (and `GET /`) with the current
/// exposition, anything else with 404, then closes. One connection at a
/// time — scrapes are rare and the render is cheap.
fn prom_loop(listener: &TcpListener, shared: &Shared) {
    prom_loop_shared(listener, &shared.state, || {
        shared.shutdown.load(Ordering::SeqCst)
    });
}

/// The same accept-and-serve loop over any server core's state; the
/// event-loop core reuses it with its own shutdown flag.
pub(crate) fn prom_loop_shared(
    listener: &TcpListener,
    state: &ServerState,
    is_shutdown: impl Fn() -> bool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if is_shutdown() {
            return;
        }
        serve_prom_http(state, stream);
    }
}

pub(crate) fn serve_prom_http(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        ("200 OK", state.render_prom())
    } else {
        ("404 Not Found", "not found\n".to_owned())
    };
    let _ = write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// Answers an over-capacity connection with a structured `overloaded`
/// error (including the retry hint) and closes it.
pub(crate) fn reject_overloaded(mut stream: TcpStream, retry_after_ms: u64) {
    let mut err = ServiceError::new(
        ErrorKind::Overloaded,
        "connection queue full; retry after the hinted delay",
    );
    err.retry_after_ms = Some(retry_after_ms);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = writeln!(stream, "{}", err.to_response());
}

fn worker_loop(shared: &Shared, addr: SocketAddr) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    shared
                        .state
                        .telemetry
                        .queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(shared, stream, addr);
    }
}

/// Serves one connection until EOF, timeout, fatal I/O error, or a
/// `shutdown` request.
fn serve_connection(shared: &Shared, stream: TcpStream, addr: SocketAddr) {
    // One-line responses must leave immediately; Nagle + delayed ACK
    // otherwise adds ~40 ms per round trip on loopback.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(_) => return, // timeout or reset: close
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match parse_envelope(trimmed) {
            Ok(envelope) => {
                // handle_envelope honours the fwd marker and propagates
                // the trace context, so the threaded core traces (and
                // clusters) identically to the event core.
                let response = handler::handle_envelope(&shared.state, &envelope);
                if envelope.request == Request::Shutdown {
                    let _ = write_response(&mut writer, &response);
                    shared.begin_shutdown();
                    wake_acceptor(addr);
                    return;
                }
                response
            }
            Err(err) => {
                // Count the attempt too: `requests` tracks lines seen.
                shared
                    .state
                    .counters
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                handler::error_response(&shared.state, &err)
            }
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    writeln!(writer, "{response}")?;
    writer.flush()
}
